#!/usr/bin/env python3
"""Regenerates BENCH_micro.json from the dynreg_micro google-benchmark binary.

The checked-in BENCH_micro.json is the repo's performance trajectory: a
"baseline" section (numbers recorded on the substrate of a previous PR) plus
a "current" section (this tree), with items/sec speedups computed for every
benchmark present in both. Numbers are only meaningful under the `release`
CMake preset (O2 + NDEBUG); see docs/PERFORMANCE.md.

Typical regeneration:

    cmake --preset release && cmake --build --preset release -j
    python3 scripts/record_bench.py \
        --bench build/release/bench_micro \
        --exp build/release/dynreg_exp \
        --out BENCH_micro.json

The existing file's "baseline" section is preserved so the before/after
comparison survives regeneration. Pass --rebaseline to promote the freshly
measured numbers to the new baseline (e.g. at the start of a new perf PR).
"""

import argparse
import json
import os
import subprocess
import sys
import time


def run_google_benchmark(bench, min_time, repetitions):
    cmd = [
        bench,
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    if repetitions > 1:
        cmd += [
            f"--benchmark_repetitions={repetitions}",
            "--benchmark_report_aggregates_only=true",
        ]
    out = subprocess.run(cmd, check=True, capture_output=True, text=True).stdout
    raw = json.loads(out)
    results = {}
    for b in raw.get("benchmarks", []):
        name = b["name"]
        # With aggregate reporting keep only the median rows, stripped back
        # to the plain benchmark name.
        if repetitions > 1:
            if b.get("aggregate_name") != "median":
                continue
            name = name.rsplit("_median", 1)[0]
        entry = {
            "real_time": b["real_time"],
            "cpu_time": b["cpu_time"],
            "time_unit": b["time_unit"],
        }
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        results[name] = entry
    return results, raw.get("context", {})


def time_end_to_end(exp):
    """Wall-clock of the full sweep the PR-3 engine parallelizes."""
    argv = [exp, "run", "sync_churn_sweep", "--seeds=8", "--jobs=8", "--format=json"]
    start = time.monotonic()
    subprocess.run(argv, check=True, stdout=subprocess.DEVNULL)
    seconds = time.monotonic() - start
    return {"command": " ".join(argv[1:]), "wall_seconds": round(seconds, 2)}


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--bench", required=True, help="path to the bench_micro binary")
    ap.add_argument("--exp", help="path to dynreg_exp; adds an end-to-end sweep timing")
    ap.add_argument("--out", default="BENCH_micro.json")
    ap.add_argument("--min-time", default="0.2",
                    help="google-benchmark --benchmark_min_time value")
    ap.add_argument("--repetitions", type=int, default=3,
                    help="repetitions per benchmark; the median is recorded")
    ap.add_argument("--label", default="", help="label for the current numbers")
    ap.add_argument("--rebaseline", action="store_true",
                    help="also record the new numbers as the baseline")
    args = ap.parse_args()

    # Validate the existing trajectory file BEFORE the (slow) benchmark run:
    # refuse to merge into (and silently clobber) a file this script does not
    # own — a wrong --out would otherwise destroy it and fabricate a bogus
    # baseline from its carcass.
    doc = {"schema": "dynreg-bench-v1"}
    if os.path.exists(args.out):
        with open(args.out) as f:
            try:
                doc = json.load(f)
            except json.JSONDecodeError:
                sys.exit(f"error: {args.out} exists but is not valid JSON — "
                         f"refusing to overwrite it. Delete the file first if "
                         f"it is expendable.")
        if doc.get("schema") != "dynreg-bench-v1":
            sys.exit(
                f"error: {args.out} exists but its schema is "
                f"{doc.get('schema')!r}, not 'dynreg-bench-v1' — refusing to "
                f"overwrite a file this script did not write. Point --out at "
                f"the bench trajectory file or delete the existing file first."
            )

    current, context = run_google_benchmark(args.bench, args.min_time, args.repetitions)

    doc["schema"] = "dynreg-bench-v1"
    doc["current"] = {
        "label": args.label or "working tree",
        "benchmarks": current,
    }
    doc["context"] = {
        "num_cpus": context.get("num_cpus"),
        "mhz_per_cpu": context.get("mhz_per_cpu"),
        "library_build_type": context.get("library_build_type"),
    }
    if args.exp:
        doc["current"]["end_to_end"] = time_end_to_end(args.exp)

    if args.rebaseline or "baseline" not in doc:
        doc["baseline"] = json.loads(json.dumps(doc["current"]))
        if args.label:
            doc["baseline"]["label"] = args.label

    speedups = {}
    base = doc["baseline"]["benchmarks"]
    for name, cur in current.items():
        if name in base and "items_per_second" in cur and "items_per_second" in base[name]:
            speedups[name] = round(
                cur["items_per_second"] / base[name]["items_per_second"], 2)
        elif name in base:
            speedups[name] = round(base[name]["real_time"] / cur["real_time"], 2)
    base_e2e = doc["baseline"].get("end_to_end")
    cur_e2e = doc["current"].get("end_to_end")
    if base_e2e and cur_e2e:
        speedups["end_to_end_sweep"] = round(
            base_e2e["wall_seconds"] / cur_e2e["wall_seconds"], 2)
    doc["speedup_vs_baseline"] = speedups

    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"wrote {args.out} ({len(current)} benchmarks)")


if __name__ == "__main__":
    main()
