#include "shard/keyed_workload.h"

#include <algorithm>
#include <utility>

#include "shard/keyspace.h"

namespace dynreg::shard {

KeyedGenerator::KeyedGenerator(Env env)
    : env_(std::move(env)),
      picker_(env_.config.key_count, env_.config.zipf_s,
              mix64(env_.sim.seed() ^ kKeyedWorkloadSalt)) {
  if (env_.config.op_deadline > 0) options_.deadline = env_.config.op_deadline;
  options_.retry.max_attempts = env_.config.retry_max_attempts;
  options_.retry.backoff = env_.config.retry_backoff;
  options_.retry.exponential = env_.config.retry_exponential;
}

void KeyedGenerator::start() {
  for (std::size_t s = 0; s < env_.config.clients; ++s) issue(s);
}

sim::Duration KeyedGenerator::think() const {
  return std::max<sim::Duration>(1, env_.config.think_time);
}

Key KeyedGenerator::pick_key(sim::Time now) {
  // Storm phase: every session hammers key 0. The sampler draw is skipped
  // entirely (the stream is private, so skipping draws is replay-safe).
  if (env_.config.storm_every > 0 && now % env_.config.storm_every < env_.config.storm_len) {
    return 0;
  }
  return static_cast<Key>(picker_.next());
}

void KeyedGenerator::issue(std::size_t session) {
  const sim::Time now = env_.sim.now();
  if (now >= env_.horizon) return;
  const Key key = pick_key(now);
  const bool is_read = picker_.uniform01() < env_.config.read_frac;
  auto done = [this, session](const client::OpHandle&) {
    resume_after(session, think());
  };
  const client::OpHandle h =
      is_read ? env_.router.read(key, options_, std::move(done))
              : env_.router.write(key, options_, std::move(done));
  // Nothing issued (shard momentarily memberless / writer absent): back off
  // one think time and try again — the session never dies.
  if (!h.valid()) resume_after(session, think());
}

void KeyedGenerator::resume_after(std::size_t session, sim::Duration pause) {
  const sim::Time next = env_.sim.now() + pause;
  if (next >= env_.horizon) return;
  env_.sim.schedule_at(next, [this, session] { issue(session); });
}

}  // namespace dynreg::shard
