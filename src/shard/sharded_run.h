// The sharded run pipeline: one sim::Simulation hosting shard_count
// independent worlds (network + membership group + register deployment +
// client + history each), a ShardMap/ShardedClient routing layer over them,
// and the keyed closed-loop workload driving it. Entered from
// harness::run_experiment when cfg.shard_count > 0; the single-register
// path never gets here and stays byte-identical to pre-shard builds.
#pragma once

#include "harness/experiment.h"
#include "harness/metrics.h"

namespace dynreg::replay {
struct RunHooks;
}  // namespace dynreg::replay

namespace dynreg::shard {

/// Runs one sharded replica to completion and harvests the combined
/// MetricsReport (global + per-shard slices). Honors the same record/replay
/// hooks as the single-register pipeline: recording interleaves every
/// shard's decisions into the one Trace in execution order; replay routes
/// them back through shared-cursor delay/pick models and shard-filtered
/// churn models (format v4). Fault plans are ignored.
harness::MetricsReport run_sharded(const harness::ExperimentConfig& cfg,
                                   const replay::RunHooks& hooks);

}  // namespace dynreg::shard
