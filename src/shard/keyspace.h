// The sharded keyspace: a deterministic hash partition of keys over a fixed
// number of shards, and the ShardMap directory resolving each shard to the
// live objects that serve it — its own churn::System membership group (one
// independent instance of the paper's protocol), its own Client/History,
// and its designated writer.
//
// The mapping is pure arithmetic (splitmix64 finalizer of the key, mod the
// shard count): no state, no rng, identical on every run and every worker —
// key routing is configuration, not a recorded decision.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event_queue.h"

namespace dynreg::churn {
class System;
}  // namespace dynreg::churn
namespace dynreg::client {
class Client;
}  // namespace dynreg::client
namespace dynreg::consistency {
class History;
}  // namespace dynreg::consistency
namespace dynreg::net {
class Network;
}  // namespace dynreg::net

namespace dynreg::shard {

using Key = std::uint64_t;
using ShardId = std::uint32_t;

/// splitmix64 finalizer — the repo's standard mixing step, duplicated here
/// (like client.cpp does) because the shard layer must not depend on the
/// replay layer for a hash.
inline std::uint64_t mix64(std::uint64_t v) {
  std::uint64_t z = v + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// The owning shard of `key`: hash-partitioned so consecutive keys spread
/// across shards (a zipfian head still concentrates *traffic*, which is the
/// point of E20, but the assignment itself is unbiased).
inline ShardId shard_of(Key key, std::size_t shard_count) {
  return shard_count <= 1
             ? 0
             : static_cast<ShardId>(mix64(key) % static_cast<std::uint64_t>(shard_count));
}

/// One shard's serving stack. All pointers are non-owning references into
/// the run's per-shard worlds (owned by shard::run_sharded); process ids are
/// per-System (every shard numbers its members from 0).
struct ShardRef {
  churn::System* system = nullptr;
  client::Client* client = nullptr;
  consistency::History* history = nullptr;
  net::Network* net = nullptr;
  /// The shard's designated writer (the paper's writer, pinned; process 0
  /// of this shard's id space).
  sim::ProcessId writer = 0;
  /// This shard's slice of the total population n.
  std::size_t n = 0;
};

/// Directory from shard id to its serving stack.
class ShardMap {
 public:
  explicit ShardMap(std::size_t count) : shards_(count == 0 ? 1 : count) {}

  [[nodiscard]] std::size_t size() const { return shards_.size(); }
  [[nodiscard]] ShardRef& shard(ShardId s) { return shards_[s]; }
  [[nodiscard]] const ShardRef& shard(ShardId s) const { return shards_[s]; }

  [[nodiscard]] ShardId owner_of(Key key) const {
    return shard_of(key, shards_.size());
  }

 private:
  std::vector<ShardRef> shards_;
};

}  // namespace dynreg::shard
