#include "shard/router.h"

#include <algorithm>
#include <vector>

#include "churn/system.h"
#include "consistency/history.h"
#include "harness/aggregate.h"
#include "harness/experiment.h"
#include "net/network.h"

namespace dynreg::shard {

client::OpHandle ShardedClient::read(Key key, client::OpOptions options,
                                     client::OpHook done) {
  ShardRef& ref = map_.shard(owner_of(key));
  const auto target = ref.client->random_active();
  if (!target) return client::OpHandle{};
  return ref.client->session_read(*target, std::move(options), std::move(done));
}

client::OpHandle ShardedClient::write(Key key, client::OpOptions options,
                                      client::OpHook done) {
  ShardRef& ref = map_.shard(owner_of(key));
  if (ref.client->node(ref.writer) == nullptr) return client::OpHandle{};
  return ref.client->session_write(ref.writer, ref.client->next_value(),
                                   std::move(options), std::move(done));
}

void ShardedClient::harvest(const harness::ExperimentConfig& cfg,
                            harness::MetricsReport& report) const {
  std::vector<double> all_reads;
  std::vector<double> all_writes;
  std::uint64_t join_latency_total = 0;
  double min_active_3delta = static_cast<double>(cfg.n) + 1.0;

  for (ShardId s = 0; s < map_.size(); ++s) {
    const ShardRef& ref = map_.shard(s);
    const client::OpStats& ops = ref.client->stats();
    report.reads_issued += ops.reads_issued;
    report.reads_completed += ops.reads_completed;
    report.reads_of_bottom += ops.reads_of_bottom;
    report.writes_issued += ops.writes_issued;
    report.writes_completed += ops.writes_completed;
    report.reads_dropped += ops.reads_dropped;
    report.writes_dropped += ops.writes_dropped;
    report.reads_timed_out += ops.reads_timed_out;
    report.writes_timed_out += ops.writes_timed_out;
    report.op_retries += ops.retries;

    report.joins_started += ref.system->joins_started();
    report.joins_completed += ref.system->joins_completed();
    report.joins_abandoned += ref.system->joins_abandoned();
    join_latency_total += ref.system->join_latency_total();

    // Global latencies merge the per-shard samples in shard order (sorted
    // below), so percentile identity is independent of scheduling.
    all_reads.insert(all_reads.end(), ops.read_latencies.begin(),
                     ops.read_latencies.end());
    all_writes.insert(all_writes.end(), ops.write_latencies.begin(),
                      ops.write_latencies.end());

    harness::ShardMetrics sm;
    sm.reads_completed = ops.reads_completed;
    sm.writes_completed = ops.writes_completed;
    sm.ops_completed = ops.reads_completed + ops.writes_completed;
    std::vector<double> shard_lat = ops.read_latencies;
    shard_lat.insert(shard_lat.end(), ops.write_latencies.begin(),
                     ops.write_latencies.end());
    if (!shard_lat.empty()) {
      std::sort(shard_lat.begin(), shard_lat.end());
      sm.latency_p50 = harness::percentile(shard_lat, 0.50);
      sm.latency_p99 = harness::percentile(shard_lat, 0.99);
    }
    report.shards.push_back(sm);

    // Ground truth per shard: the majority/Lemma-2 properties must hold in
    // every membership group, so the report ANDs / mins across shards.
    const churn::Chronicle& chron = ref.system->chronicle();
    report.majority_active_always =
        report.majority_active_always && chron.min_active_at(cfg.duration) * 2 > ref.n;
    min_active_3delta =
        std::min(min_active_3delta,
                 static_cast<double>(
                     chron.min_active_through_window(3 * cfg.delta, cfg.duration)));

    // Consistency is per shard history (registers are independent); the
    // combined report sums the checked populations and appends violations.
    const consistency::RegularityReport reg =
        consistency::RegularityChecker{}.check(*ref.history);
    report.regularity.reads_checked += reg.reads_checked;
    report.regularity.concurrent_write_pairs += reg.concurrent_write_pairs;
    report.regularity.violations.insert(report.regularity.violations.end(),
                                        reg.violations.begin(), reg.violations.end());
    const consistency::InversionReport inv =
        consistency::AtomicityChecker{}.check(*ref.history);
    report.atomicity.reads_checked += inv.reads_checked;
    report.atomicity.inversion_count += inv.inversion_count;

    for (const auto& [type, count] : ref.net->delivered_by_type()) {
      report.msgs_by_type[type] += count;
    }
  }

  report.min_active_3delta = min_active_3delta;
  report.join_latency_mean =
      report.joins_completed == 0
          ? 0.0
          : static_cast<double>(join_latency_total) /
                static_cast<double>(report.joins_completed);

  if (!all_reads.empty()) {
    double total = 0.0;
    for (const double l : all_reads) total += l;
    report.read_latency_mean = total / static_cast<double>(all_reads.size());
    std::sort(all_reads.begin(), all_reads.end());
    report.read_latency_p50 = harness::percentile(all_reads, 0.50);
    report.read_latency_p99 = harness::percentile(all_reads, 0.99);
  }
  if (!all_writes.empty()) {
    double total = 0.0;
    for (const double l : all_writes) total += l;
    // Divide by writes_completed — the legacy harvest's formula, kept
    // bit-for-bit (completed == sample count; see harness/experiment.cpp).
    report.write_latency_mean = total / static_cast<double>(report.writes_completed);
    std::sort(all_writes.begin(), all_writes.end());
    report.write_latency_p50 = harness::percentile(all_writes, 0.50);
    report.write_latency_p99 = harness::percentile(all_writes, 0.99);
  }

  // Shard-level tail/skew summary over shards that completed anything.
  double hot = 0.0;
  double cold = 0.0;
  bool any = false;
  std::uint64_t total_ops = 0;
  std::uint64_t max_ops = 0;
  for (const harness::ShardMetrics& sm : report.shards) {
    total_ops += sm.ops_completed;
    max_ops = std::max(max_ops, sm.ops_completed);
    if (sm.ops_completed == 0) continue;
    if (!any) {
      hot = cold = sm.latency_p99;
      any = true;
    } else {
      hot = std::max(hot, sm.latency_p99);
      cold = std::min(cold, sm.latency_p99);
    }
  }
  report.shard_hot_p99 = hot;
  report.shard_cold_p99 = cold;
  const double mean_ops =
      report.shards.empty()
          ? 0.0
          : static_cast<double>(total_ops) / static_cast<double>(report.shards.size());
  report.shard_skew = mean_ops == 0.0 ? 0.0 : static_cast<double>(max_ops) / mean_ops;
  report.ops_per_tick = cfg.duration == 0
                            ? 0.0
                            : static_cast<double>(total_ops) /
                                  static_cast<double>(cfg.duration);
}

}  // namespace dynreg::shard
