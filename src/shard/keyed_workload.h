// The keyed workload engine: `clients` closed-loop sessions issuing keyed
// reads/writes through the ShardedClient. Each session draws a key from a
// deterministic zipfian sampler, flips the read/write-mix coin, routes the
// op to the owning shard, waits for it to resolve, thinks, repeats — the
// closed loop self-throttles, which is what makes 1e5-session cells
// tractable.
//
// Hot-key storm phases: while `now % storm_every < storm_len` (when
// configured) every session hammers key 0 instead of drawing from the
// sampler, concentrating the whole population on one shard.
//
// Determinism: key choices and the mix coin come from ONE private
// hash-seeded stream (workload::ZipfianPicker) — zero run-Rng draws, so the
// engine adds nothing to the record/replay decision streams and is
// byte-identical at any --jobs.
#pragma once

#include <cstddef>
#include <vector>

#include "client/client.h"
#include "harness/workload_config.h"
#include "harness/zipfian.h"
#include "shard/router.h"
#include "sim/simulation.h"

namespace dynreg::shard {

/// Salt folding the run seed into the keyed engine's private stream
/// ("keyedwrk"), keeping it disjoint from every other derived stream.
inline constexpr std::uint64_t kKeyedWorkloadSalt = 0x6b6579656477726bULL;  // "keyedwrk"

class KeyedGenerator {
 public:
  /// Everything the engine drives. References must outlive the generator;
  /// `config` supplies clients/think_time plus the keyed block
  /// (key_count/zipf_s/read_frac/storm_*).
  struct Env {
    sim::Simulation& sim;
    ShardedClient& router;
    workload::Config config;
    sim::Time horizon = 0;
  };

  explicit KeyedGenerator(Env env);

  KeyedGenerator(const KeyedGenerator&) = delete;
  KeyedGenerator& operator=(const KeyedGenerator&) = delete;

  /// Call once, after every shard's bootstrap and before the run. All
  /// sessions issue their first op at the current time (t=0), mirroring the
  /// unsharded closed-loop engine.
  void start();

 private:
  void issue(std::size_t session);
  void resume_after(std::size_t session, sim::Duration pause);
  [[nodiscard]] Key pick_key(sim::Time now);
  [[nodiscard]] sim::Duration think() const;

  Env env_;
  workload::ZipfianPicker picker_;
  client::OpOptions options_;
};

}  // namespace dynreg::shard
