// The ShardedClient: keyed read(key)/write(key, v) routed to the owning
// shard's Client behind the existing Client/OpHandle seam — the protocols
// never learn that a keyspace exists. Reads go to a uniformly random active
// process of the owning shard (one shared-chooser rng draw, recorded in the
// picks stream like every target selection); writes funnel to the shard's
// designated writer and serialize through its session FIFO, which is
// exactly why aggregate write throughput scales with shard count.
//
// The router also owns the sharded harvest: per-shard ops/latency slices
// (ShardMetrics), hot/cold-shard tail percentiles, hot-shard skew, and
// aggregate throughput, merged with the global counters into one
// MetricsReport.
#pragma once

#include "client/client.h"
#include "harness/metrics.h"
#include "shard/keyspace.h"

namespace dynreg::harness {
struct ExperimentConfig;
}  // namespace dynreg::harness

namespace dynreg::shard {

class ShardedClient {
 public:
  /// `map` must be fully populated (every ShardRef wired) and outlive the
  /// router.
  explicit ShardedClient(ShardMap& map) : map_(map) {}

  ShardedClient(const ShardedClient&) = delete;
  ShardedClient& operator=(const ShardedClient&) = delete;

  /// Session read of `key` against a random active process of its owning
  /// shard. Invalid handle when the shard has no active member (caller
  /// backs off and retries — nothing was issued).
  client::OpHandle read(Key key, client::OpOptions options = {},
                        client::OpHook done = {});

  /// Session write to `key`'s owning shard through its designated writer;
  /// the written value is the shard's own sequence (1, 2, 3, ...). Invalid
  /// handle when the writer is not in the shard (nothing was issued).
  client::OpHandle write(Key key, client::OpOptions options = {},
                         client::OpHook done = {});

  [[nodiscard]] ShardId owner_of(Key key) const { return map_.owner_of(key); }
  [[nodiscard]] ShardMap& map() { return map_; }
  [[nodiscard]] const ShardMap& map() const { return map_; }

  /// Aggregates every shard's counters, latencies, join/chronicle
  /// accounting, and consistency checks into `report` (global fields plus
  /// the per-shard ShardMetrics slices). `cfg` supplies duration/delta/n
  /// for the chronicle queries and throughput. trace_hash is the caller's.
  void harvest(const harness::ExperimentConfig& cfg,
               harness::MetricsReport& report) const;

 private:
  ShardMap& map_;
};

}  // namespace dynreg::shard
