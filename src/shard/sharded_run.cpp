#include "shard/sharded_run.h"

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "churn/churn_model.h"
#include "churn/system.h"
#include "client/client.h"
#include "consistency/history.h"
#include "harness/builders.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "replay/hooks.h"
#include "replay/recorder.h"
#include "replay/replayer.h"
#include "shard/keyed_workload.h"
#include "shard/keyspace.h"
#include "shard/router.h"
#include "sim/simulation.h"

namespace dynreg::shard {

namespace {

/// One shard's owned world. Construction order inside a shard (network,
/// history, system, client) matches the single-register pipeline; shards
/// are built in shard order, so the whole assembly is deterministic.
struct World {
  std::unique_ptr<net::Network> net;
  std::unique_ptr<consistency::History> history;
  std::unique_ptr<churn::System> system;
  std::unique_ptr<client::Client> client;
  std::unique_ptr<replay::ShardChurnRecorder> churn_recorder;
  std::size_t n = 0;
};

}  // namespace

harness::MetricsReport run_sharded(const harness::ExperimentConfig& cfg,
                                   const replay::RunHooks& hooks) {
  sim::Simulation sim(cfg.seed);
  const std::size_t shard_count = cfg.shard_count == 0 ? 1 : cfg.shard_count;

  // Replay components must outlive the run; the shared delay cursor in
  // particular is referenced by every shard Network's forwarding view.
  std::unique_ptr<replay::TraceReplayer> replayer;
  if (hooks.replay != nullptr) {
    // Aliasing ctor: the caller guarantees *hooks.replay outlives this call.
    replayer = std::make_unique<replay::TraceReplayer>(
        std::shared_ptr<const replay::Trace>(std::shared_ptr<const replay::Trace>(),
                                             hooks.replay));
  }
  std::optional<replay::TraceRecorder> pick_recorder;  // picks only; shared
  if (hooks.record != nullptr) {
    hooks.record->churn_loop =
        cfg.churn_kind == harness::ChurnKind::kConstant && cfg.churn_rate > 0.0;
    pick_recorder.emplace(*hooks.record);
  }

  // The keyed engine's mix coin decides whether writes exist at all;
  // reads-only configs pin (and exempt) nobody, mirroring writes_enabled in
  // the single-register path.
  const bool writes = cfg.workload.read_frac < 1.0;

  std::vector<World> worlds(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    World& w = worlds[s];
    // Population slice: n/S each, remainder spread over the first shards —
    // pure arithmetic on the config, identical on every run and worker.
    w.n = cfg.n / shard_count + (s < cfg.n % shard_count ? 1 : 0);

    std::unique_ptr<net::DelayModel> delays =
        replayer ? replayer->make_delay_model_view() : harness::build_delays(cfg);
    if (hooks.record != nullptr) {
      delays = std::make_unique<replay::RecordingDelayModel>(std::move(delays),
                                                             *hooks.record);
    }
    w.net = std::make_unique<net::Network>(sim, std::move(delays));
    w.net->set_loss_rate(cfg.loss_rate);
    if (cfg.dissemination == harness::Dissemination::kTree) {
      w.net->set_disseminator(
          std::make_unique<net::TreeDisseminator>(cfg.tree_fanout));
    }

    w.history = std::make_unique<consistency::History>(harness::kInitialValue);

    churn::SystemConfig sys_cfg;
    sys_cfg.initial_size = w.n;
    sys_cfg.leave_policy = cfg.leave_policy;
    if (writes) sys_cfg.exempt = {0};  // the shard's designated writer
    sys_cfg.chronicle = {cfg.chronicle_aggregate, 3 * cfg.delta, cfg.duration};

    std::unique_ptr<churn::ChurnModel> churn_model;
    if (replayer) {
      churn_model = replayer->make_churn_model(static_cast<std::uint32_t>(s));
    } else if (cfg.churn_kind == harness::ChurnKind::kNone ||
               cfg.churn_rate <= 0.0) {
      churn_model = std::make_unique<churn::NoChurn>();
    } else {
      churn_model = std::make_unique<churn::ConstantChurn>(cfg.churn_rate);
    }

    w.system = std::make_unique<churn::System>(
        sim, *w.net, sys_cfg, std::move(churn_model),
        harness::build_node_factory(cfg, w.n));
    w.client =
        std::make_unique<client::Client>(sim, *w.system, *w.history, cfg.duration);

    if (hooks.record != nullptr) {
      w.churn_recorder = std::make_unique<replay::ShardChurnRecorder>(
          *hooks.record, static_cast<std::uint32_t>(s));
      w.system->set_churn_observer(w.churn_recorder.get());
      w.client->set_target_observer(&*pick_recorder);
    }
    if (replayer) w.client->set_target_chooser(replayer->target_chooser());
  }

  ShardMap map(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    World& w = worlds[s];
    map.shard(static_cast<ShardId>(s)) =
        ShardRef{w.system.get(), w.client.get(), w.history.get(), w.net.get(),
                 /*writer=*/0, w.n};
  }
  ShardedClient router(map);
  KeyedGenerator generator(
      KeyedGenerator::Env{sim, router, cfg.workload, cfg.duration});

  // Bootstrap every shard in shard order, then open the traffic — the same
  // relative order (members first, workload second) as the legacy pipeline.
  for (World& w : worlds) w.system->bootstrap();
  generator.start();
  sim.run_until(cfg.duration);

  harness::MetricsReport report;
  router.harvest(cfg, report);
  report.trace_hash = sim.trace_hash();
  return report;
}

}  // namespace dynreg::shard
