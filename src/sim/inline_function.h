// InlineFunction<R(Args...)>: a move-only type-erased callable with fixed
// in-place storage — the generalized form of the scheduler's InlineTask
// (which is now just InlineFunction<void()>).
//
// The simulation schedules millions of small lambdas per run and, since the
// client/operation API redesign, every register operation carries a typed
// completion callable (void(OpOutcome, Value) for reads, void(OpOutcome)
// for writes) through the protocol's pending-operation tables. std::function
// heap-allocates any capture larger than its (implementation-defined,
// typically 16-byte) small buffer, which made every scheduled message
// delivery — and every pending operation — an allocation. InlineFunction
// stores captures up to kInlineCapacity bytes directly inside the object and
// only falls back to the heap for oversized captures; none of the library's
// own lambdas need the fallback (a static_assert on the per-message delivery
// closure in Network::transmit guards the hottest one, and the InlineTask
// tests pin the boundary).
//
// The type is deliberately minimal: construct from a callable, move, invoke,
// destroy. No copy, no target introspection, no allocator awareness — it
// exists purely to keep the event and operation hot paths allocation-free.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace dynreg::sim {

template <typename Sig>
class InlineFunction;  // only the R(Args...) specialization exists

template <typename R, typename... Args>
class InlineFunction<R(Args...)> {
 public:
  /// In-place capture budget, chosen so sizeof(InlineFunction) is exactly
  /// one 64-byte cache line (vtable pointer + storage). 48 bytes fits every
  /// scheduler and completion lambda in the library.
  static constexpr std::size_t kInlineCapacity = 48;

  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    init(std::forward<F>(fn));
  }

  /// Replaces the current callable, constructing the new one in place (the
  /// pool's hot path: no temporary InlineFunction, no relocate call).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  void assign(F&& fn) {
    reset();
    init(std::forward<F>(fn));
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      relocate_from(other);
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        relocate_from(other);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True when the callable lives in the in-place buffer (exposed so tests
  /// can pin the no-allocation property of the library's own lambdas).
  [[nodiscard]] bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  void reset() {
    if (ops_ != nullptr) {
      if (!ops_->trivial) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  template <typename F>
  void init(F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(fn));
      ops_ = &heap_ops<Fn>;
    }
  }

  // Per-callable-type operation table: one static instance per Fn, so the
  // function object itself is just {vtable pointer, storage}.
  struct Ops {
    R (*invoke)(unsigned char* storage, Args... args);
    // Move-constructs into dst from src, then destroys src's callable.
    void (*relocate)(unsigned char* dst, unsigned char* src);
    void (*destroy)(unsigned char* storage);
    bool inline_storage;
    // Trivially copyable + destructible capture: relocation is a memcpy of
    // the capture's own bytes and destruction a no-op, with no indirect
    // calls. True for the bulk of scheduler lambdas (captures of ints,
    // pointers, references).
    bool trivial;
    // Bytes the stored representation actually occupies (sizeof the capture
    // inline, sizeof a pointer for the heap fallback, 0 for captureless
    // lambdas whose placement-new writes nothing) — the trivial-relocate
    // memcpy copies exactly this much, never an uninitialized byte.
    std::size_t size;
  };

  void relocate_from(InlineFunction& other) {
    if (ops_->trivial) {
      std::memcpy(storage_, other.storage_, ops_->size);
    } else {
      ops_->relocate(storage_, other.storage_);
    }
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](unsigned char* s, Args... args) -> R {
        return (*std::launder(reinterpret_cast<Fn*>(s)))(std::forward<Args>(args)...);
      },
      [](unsigned char* dst, unsigned char* src) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (static_cast<void*>(dst)) Fn(std::move(*from));
        from->~Fn();
      },
      [](unsigned char* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
      true,
      std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>,
      std::is_empty_v<Fn> ? 0 : sizeof(Fn),
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](unsigned char* s, Args... args) -> R {
        return (**std::launder(reinterpret_cast<Fn**>(s)))(std::forward<Args>(args)...);
      },
      [](unsigned char* dst, unsigned char* src) {
        *reinterpret_cast<Fn**>(dst) = *std::launder(reinterpret_cast<Fn**>(src));
      },
      [](unsigned char* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); },
      false,
      false,
      sizeof(Fn*),
  };

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
};

}  // namespace dynreg::sim
