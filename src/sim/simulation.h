// Deterministic discrete-event simulation: a virtual clock, a stable event
// queue, and a seeded RNG. Every source of randomness in a run draws from the
// one Rng owned here, so a (seed, config) pair fully determines the run.
#pragma once

#include <algorithm>
#include <optional>
#include <utility>

#include "sim/event_queue.h"
#include "sim/rng.h"

namespace dynreg::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed) : rng_(seed) {}

  Time now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedules fn at absolute time t (clamped to now if in the past).
  /// Accepts any `void()` callable; small captures are stored without
  /// allocating (see InlineTask).
  template <typename F>
  void schedule_at(Time t, F&& fn) {
    queue_.push(std::max(t, now_), std::forward<F>(fn));
  }

  template <typename F>
  void schedule_after(Duration d, F&& fn) {
    queue_.push(now_ + d, std::forward<F>(fn));
  }

  /// Time of the next pending event, if any.
  std::optional<Time> next_event_time() const;

  /// Executes the earliest event, advancing the clock to its time.
  /// Returns false if the queue was empty.
  bool step();

  /// Runs until the event queue drains.
  void run();

  /// Runs every event scheduled at or before `t`, then advances the clock
  /// to exactly `t` (events an executed event schedules within the horizon
  /// are executed too).
  void run_until(Time t);

 private:
  Time now_ = 0;
  EventQueue queue_;
  Rng rng_;
};

}  // namespace dynreg::sim
