// Deterministic discrete-event simulation: a virtual clock, a stable event
// queue, and a seeded RNG. Every source of randomness in a run draws from the
// one Rng owned here, so a (seed, config) pair fully determines the run.
//
// Builds with DYNREG_AUDIT defined additionally accumulate an event-stream
// hash: every dispatched event folds its (time, dispatch sequence number)
// into a running splitmix64-style digest, and instrumented layers fold in
// payload type ids via audit_note(). Two runs with the same (config, seed)
// must produce the same trace_hash() — any divergence (a stray wall-clock
// read, an address-dependent container order, a jobs-dependent code path)
// shows up as a hash mismatch at the first diverging event rather than as a
// subtly wrong result. See docs/ANALYSIS.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>

#include "sim/arena.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace dynreg::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed) : rng_(seed), seed_(seed) {}

  [[nodiscard]] Time now() const { return now_; }
  Rng& rng() { return rng_; }

  /// The seed the run was constructed with. For *pure-hash* derivations
  /// (e.g. the client's deterministic retry jitter), which must vary per
  /// seed without consuming an Rng draw — never for seeding new streams on
  /// an event path.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Epoch-reclaimed arena for payloads and pending-op records. step()
  /// advances its epoch whenever the simulated clock advances, so storage
  /// freed at tick T is never recycled before the clock moves past T.
  Arena& arena() { return arena_; }

  /// Whether this build carries the event-stream determinism auditor.
  static constexpr bool audit_enabled() {
#ifdef DYNREG_AUDIT
    return true;
#else
    return false;
#endif
  }

  /// Folds `v` into the event-stream hash (no-op without DYNREG_AUDIT).
  /// Instrumented layers call this with values that characterize the event
  /// stream — the network folds in each delivered payload's type id.
  void audit_note(std::uint64_t v) {
#ifdef DYNREG_AUDIT
    // splitmix64 finalizer over (previous digest ^ value): cheap, and every
    // input bit diffuses into the whole digest, so the first diverging event
    // changes the final hash with overwhelming probability.
    std::uint64_t z = trace_hash_ ^ v;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    trace_hash_ = z ^ (z >> 31);
#else
    (void)v;
#endif
  }

  /// The event-stream digest so far: a function of every dispatched event's
  /// (time, sequence number) plus everything audit_note()d. Equal across
  /// same-(config, seed) runs by the determinism contract; 0 when the build
  /// has no auditor.
  std::uint64_t trace_hash() const {
#ifdef DYNREG_AUDIT
    return trace_hash_;
#else
    return 0;
#endif
  }

  /// Schedules fn at absolute time t (clamped to now if in the past).
  /// Accepts any `void()` callable; small captures are stored without
  /// allocating (see InlineTask).
  template <typename F>
  void schedule_at(Time t, F&& fn) {
    queue_.push(std::max(t, now_), std::forward<F>(fn));
  }

  template <typename F>
  void schedule_after(Duration d, F&& fn) {
    queue_.push(now_ + d, std::forward<F>(fn));
  }

  /// Time of the next pending event, if any.
  std::optional<Time> next_event_time() const;

  /// Executes the earliest event, advancing the clock to its time.
  /// Returns false if the queue was empty.
  bool step();

  /// Runs until the event queue drains.
  void run();

  /// Runs every event scheduled at or before `t`, then advances the clock
  /// to exactly `t` (events an executed event schedules within the horizon
  /// are executed too).
  void run_until(Time t);

 private:
  Time now_ = 0;
  // The arena outlives the queue: queued tasks may own arena-backed payloads
  // whose destruction (at queue teardown) deallocates into the arena.
  Arena arena_;
  EventQueue queue_;
  Rng rng_;
  std::uint64_t seed_ = 0;
#ifdef DYNREG_AUDIT
  std::uint64_t trace_hash_ = 0x9e3779b97f4a7c15ULL;  // non-zero: "audited, empty"
  std::uint64_t audit_seq_ = 0;
#endif
};

}  // namespace dynreg::sim
