#include "sim/simulation.h"

#include <algorithm>
#include <utility>

namespace dynreg::sim {

void Simulation::schedule_at(Time t, std::function<void()> fn) {
  queue_.push(std::max(t, now_), std::move(fn));
}

void Simulation::schedule_after(Duration d, std::function<void()> fn) {
  queue_.push(now_ + d, std::move(fn));
}

std::optional<Time> Simulation::next_event_time() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.next_time();
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  Event e = queue_.pop();
  now_ = e.time;
  e.fn();
  return true;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(Time t) {
  while (!queue_.empty() && queue_.next_time() <= t) step();
  now_ = std::max(now_, t);
}

}  // namespace dynreg::sim
