#include "sim/simulation.h"

namespace dynreg::sim {

std::optional<Time> Simulation::next_event_time() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.next_time();
}

bool Simulation::step() {
  if (queue_.empty()) return false;
#ifdef DYNREG_AUDIT
  audit_note(queue_.next_time());
  audit_note(++audit_seq_);
#endif
  const Time before = now_;
  queue_.run_top(&now_);  // advances the clock, then executes in place
  // One arena epoch per simulated-clock advance: anything freed at `before`
  // stays byte-stable through the tick that freed it.
  if (now_ != before) arena_.advance_epoch();
  return true;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(Time t) {
  while (!queue_.empty() && queue_.next_time() <= t) step();
  now_ = std::max(now_, t);
}

}  // namespace dynreg::sim
