// Time-ordered event queue with stable FIFO ordering among events scheduled
// for the same instant. Stability is load-bearing: several benches (e.g. the
// Figure 3 adversary) rely on "an event scheduled earlier runs first" to pin
// down races exactly at window boundaries.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace dynreg::sim {

using Time = std::uint64_t;
using Duration = std::uint64_t;
using ProcessId = std::uint32_t;

struct Event {
  Time time = 0;
  std::uint64_t seq = 0;  // insertion order; breaks same-time ties FIFO
  std::function<void()> fn;
};

class EventQueue {
 public:
  void push(Time time, std::function<void()> fn);

  /// Removes and returns the earliest event (FIFO among equal times).
  /// Precondition: !empty().
  Event pop();

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Precondition: !empty().
  Time next_time() const { return heap_.top().time; }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // priority_queue does not expose a mutable top(), so pop() goes through a
  // small wrapper that moves the element out.
  struct Heap : std::priority_queue<Event, std::vector<Event>, Later> {
    Event take() {
      std::pop_heap(c.begin(), c.end(), comp);
      Event e = std::move(c.back());
      c.pop_back();
      return e;
    }
  };

  Heap heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dynreg::sim
