// Time-ordered event queue with stable FIFO ordering among events scheduled
// for the same instant. Stability is load-bearing: several benches (e.g. the
// Figure 3 adversary) rely on "an event scheduled earlier runs first" to pin
// down races exactly at window boundaries.
//
// Hot-path layout (see docs/PERFORMANCE.md). Two tiers, one total order:
//
//  - Near tier: a timing-wheel ring of kWindow per-tick FIFO buckets
//    covering [base_time, base_time + kWindow). Push appends to an intrusive
//    list, pop follows a two-level bitmap to the next non-empty tick —
//    both O(1), no comparisons at all. Virtually every event a simulation
//    schedules (delays are small, clocks move forward) lands here.
//  - Far tier: an implicit 4-ary min-heap of small POD entries keyed on a
//    packed (time, seq) 128-bit key, so sift comparisons are single
//    wide-integer compares. It holds the rare events outside the ring
//    window (far future, or scheduled into the past of the wheel base).
//
// The callables themselves never move through either structure: they live
// in InlineTask slots (no per-event heap allocation for captures up to
// InlineTask::kInlineCapacity) inside a free-list slab pool with stable
// addresses, referenced by 32-bit slot index.
//
// FIFO correctness across tiers: a far-tier event at time t is always older
// than any ring event at t (a push lands in the ring only while t is inside
// the window, and the window never moves backwards past a live ring time),
// so on equal times the far tier pops first; within a bucket the intrusive
// list is FIFO; within the far tier the seq half of the key is FIFO. This
// reproduces the old (time, seq) priority-queue order bit for bit.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/inline_task.h"

namespace dynreg::sim {

using Time = std::uint64_t;
using Duration = std::uint64_t;
using ProcessId = std::uint32_t;

// Packed (time, seq) ordering key for the far tier. With 128-bit integers
// available the comparison in the sift loops is a single wide-integer
// compare; the fallback is an equivalent two-field lexicographic compare.
#if defined(__SIZEOF_INT128__)
using EventKey = unsigned __int128;
constexpr EventKey make_event_key(Time time, std::uint64_t seq) {
  return (static_cast<EventKey>(time) << 64) | seq;
}
constexpr Time event_key_time(EventKey key) { return static_cast<Time>(key >> 64); }
#else
struct EventKey {
  Time time = 0;
  std::uint64_t seq = 0;
  friend constexpr bool operator<(const EventKey& a, const EventKey& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }
};
constexpr EventKey make_event_key(Time time, std::uint64_t seq) {
  return EventKey{time, seq};
}
constexpr Time event_key_time(EventKey key) { return key.time; }
#endif

struct Event {
  Time time = 0;
  InlineTask fn;
};

class EventQueue {
 public:
  /// Ring span in ticks. Every delay model in the library produces delays
  /// far below this, so out-of-window events are the exception, not the
  /// rule. Must be a power of two.
  static constexpr std::uint32_t kWindow = 2048;

  EventQueue() { ring_.fill(Bucket{}); }

  /// Accepts any `void()` callable; captures up to InlineTask::kInlineCapacity
  /// bytes are stored without allocating.
  template <typename F>
  void push(Time time, F&& fn) {
    const std::uint32_t slot = pool_.acquire(std::forward<F>(fn));
    if (slot == next_.size()) next_.push_back(kNil);
    else next_[slot] = kNil;
    insert(time, slot);
    ++size_;
  }

  /// Removes and returns the earliest event (FIFO among equal times).
  /// Precondition: !empty().
  Event pop();

  /// Removes the earliest event and invokes its callable in place — the
  /// simulation-loop fast path. Pool slots have stable addresses, so the
  /// callable runs where it sits (no move-out, no temporary Event) even if
  /// it pushes new events while executing. If `now_out` is non-null it is
  /// set to the event's time *before* the callable runs, so a caller
  /// owning a clock advances it without a second queue scan and the
  /// running event observes the new time. Precondition: !empty().
  void run_top(Time* now_out = nullptr);

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Time of the earliest pending event. Precondition: !empty().
  Time next_time() const;

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::uint32_t kWords = kWindow / 64;

  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  struct FarEntry {
    EventKey key;
    std::uint32_t slot;
  };

  // Fixed-capacity slabs of recycled InlineTask slots. Slab granularity
  // keeps slot addresses stable (no mass relocation on growth) and the free
  // list makes steady-state push/pop allocation-free.
  class TaskPool {
   public:
    template <typename F>
    std::uint32_t acquire(F&& fn) {
      std::uint32_t slot;
      if (!free_.empty()) {
        slot = free_.back();
        free_.pop_back();
      } else {
        if (size_ == slabs_.size() * kSlabSize) {
          slabs_.push_back(std::make_unique<InlineTask[]>(kSlabSize));
        }
        slot = size_++;
      }
      task(slot).assign(std::forward<F>(fn));
      return slot;
    }

    /// Moves the callable out and returns the slot to the free list.
    InlineTask release(std::uint32_t slot) {
      InlineTask fn = std::move(task(slot));
      free_.push_back(slot);
      return fn;
    }

    /// Stable reference into the slab (valid across pool growth).
    InlineTask& task(std::uint32_t slot) {
      return slabs_[slot / kSlabSize][slot % kSlabSize];
    }

    /// Destroys the callable and recycles the slot.
    void recycle(std::uint32_t slot) {
      task(slot).reset();
      free_.push_back(slot);
    }

   private:
    static constexpr std::uint32_t kSlabSize = 256;

    std::vector<std::unique_ptr<InlineTask[]>> slabs_;
    std::vector<std::uint32_t> free_;
    std::uint32_t size_ = 0;
  };

  void insert(Time time, std::uint32_t slot);
  /// Detaches the earliest event and returns (time, slot), advancing the
  /// wheel base. The caller consumes the slot.
  std::pair<Time, std::uint32_t> take_top();

  // --- ring tier ---
  std::uint32_t base_slot() const {
    return static_cast<std::uint32_t>(base_time_) & (kWindow - 1);
  }
  Time slot_to_time(std::uint32_t s) const {
    return base_time_ + ((s + kWindow - base_slot()) & (kWindow - 1));
  }
  void set_bit(std::uint32_t s) {
    bits_[s >> 6] |= 1ull << (s & 63);
    summary_ |= 1ull << (s >> 6);
  }
  void clear_bit(std::uint32_t s) {
    bits_[s >> 6] &= ~(1ull << (s & 63));
    if (bits_[s >> 6] == 0) summary_ &= ~(1ull << (s >> 6));
  }
  std::uint32_t find_next_bucket() const;  // precondition: ring_count_ > 0
  [[nodiscard]] Time ring_next_time() const { return slot_to_time(find_next_bucket()); }

  // --- far tier (4-ary implicit heap; children of i are 4i+1 .. 4i+4) ---
  void far_push(EventKey key, std::uint32_t slot);
  FarEntry far_take_top();
  [[nodiscard]] Time far_next_time() const { return event_key_time(far_.front().key); }

  std::array<Bucket, kWindow> ring_;
  std::array<std::uint64_t, kWords> bits_{};
  std::uint64_t summary_ = 0;
  Time base_time_ = 0;       // ring covers [base_time_, base_time_ + kWindow)
  std::size_t ring_count_ = 0;

  std::vector<FarEntry> far_;
  std::uint64_t next_seq_ = 0;  // FIFO stamp for far-tier entries

  TaskPool pool_;
  std::vector<std::uint32_t> next_;  // intrusive bucket links, indexed by slot
  std::size_t size_ = 0;
};

}  // namespace dynreg::sim
