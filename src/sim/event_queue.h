// Time-ordered event queue with stable FIFO ordering among events scheduled
// for the same instant. Stability is load-bearing: several benches (e.g. the
// Figure 3 adversary) rely on "an event scheduled earlier runs first" to pin
// down races exactly at window boundaries.
//
// Hot-path layout (see docs/PERFORMANCE.md). Two tiers, one total order:
//
//  - Near tier: a timing-wheel ring of kWindow per-tick FIFO buckets
//    covering [base_time, base_time + kWindow). Each bucket is an unrolled
//    list of cache-line-sized slot blocks with a consume cursor: push
//    appends, pop reads at the cursor and software-prefetches the tasks a
//    few slots ahead, and a two-level bitmap finds the next non-empty tick —
//    all O(1), no comparisons at all. (The previous per-slot intrusive list
//    serialized two dependent cache misses per pop; at 1e6 queued events
//    that pointer chase was the whole throughput cliff. Blocks preserve the
//    exact append order while letting prefetches run ahead.) Virtually every
//    event a simulation schedules (delays are small, clocks move forward)
//    lands here.
//  - Far tier: an implicit 4-ary min-heap of small POD entries keyed on a
//    packed (time, seq) 128-bit key, so sift comparisons are single
//    wide-integer compares. It holds the rare events outside the ring
//    window (far future, or scheduled into the past of the wheel base).
//
// The callables themselves never move through either structure: they live
// in InlineTask slots (no per-event heap allocation for captures up to
// InlineTask::kInlineCapacity) inside a free-list slab pool with stable,
// 64-byte-aligned addresses (one cache line per task), referenced by 32-bit
// slot index.
//
// FIFO correctness across tiers: a far-tier event at time t is always older
// than any ring event at t (a push lands in the ring only while t is inside
// the window, and the window never moves backwards past a live ring time),
// so on equal times the far tier pops first; within a bucket the slot array
// is consumed in append order, which is FIFO; within the far tier the seq
// half of the key is FIFO. This reproduces the old (time, seq)
// priority-queue order bit for bit.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "sim/inline_task.h"

namespace dynreg::sim {

using Time = std::uint64_t;
using Duration = std::uint64_t;
using ProcessId = std::uint32_t;

// Packed (time, seq) ordering key for the far tier. With 128-bit integers
// available the comparison in the sift loops is a single wide-integer
// compare; the fallback is an equivalent two-field lexicographic compare.
#if defined(__SIZEOF_INT128__)
using EventKey = unsigned __int128;
constexpr EventKey make_event_key(Time time, std::uint64_t seq) {
  return (static_cast<EventKey>(time) << 64) | seq;
}
constexpr Time event_key_time(EventKey key) { return static_cast<Time>(key >> 64); }
#else
struct EventKey {
  Time time = 0;
  std::uint64_t seq = 0;
  friend constexpr bool operator<(const EventKey& a, const EventKey& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }
};
constexpr EventKey make_event_key(Time time, std::uint64_t seq) {
  return EventKey{time, seq};
}
constexpr Time event_key_time(EventKey key) { return key.time; }
#endif

struct Event {
  Time time = 0;
  InlineTask fn;
};

class EventQueue {
 public:
  /// Ring span in ticks. Every delay model in the library produces delays
  /// far below this, so out-of-window events are the exception, not the
  /// rule. Must be a power of two.
  static constexpr std::uint32_t kWindow = 2048;

  EventQueue() = default;

  /// Destroys any still-pending callables by draining the queue. Task-slab
  /// storage is raw and recycled wholesale (see TaskPool::Slab), so live
  /// captures must be destroyed individually here, not by the pool.
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Accepts any `void()` callable; captures up to InlineTask::kInlineCapacity
  /// bytes are stored without allocating.
  template <typename F>
  void push(Time time, F&& fn) {
    const std::uint32_t slot = pool_.acquire(std::forward<F>(fn));
    insert(time, slot);
    ++size_;
  }

  /// Removes and returns the earliest event (FIFO among equal times).
  /// Precondition: !empty().
  Event pop();

  /// Removes the earliest event and invokes its callable in place — the
  /// simulation-loop fast path. Pool slots have stable addresses, so the
  /// callable runs where it sits (no move-out, no temporary Event) even if
  /// it pushes new events while executing. If `now_out` is non-null it is
  /// set to the event's time *before* the callable runs, so a caller
  /// owning a clock advances it without a second queue scan and the
  /// running event observes the new time. Precondition: !empty().
  void run_top(Time* now_out = nullptr);

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Time of the earliest pending event. Precondition: !empty().
  Time next_time() const;

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::uint32_t kWords = kWindow / 64;

  // One tick's events: an unrolled list of cache-line blocks from the shared
  // block pool, consumed in append order. Unlike a per-bucket std::vector
  // this never mallocs on the push path (blocks recycle through free_blocks_)
  // and unlike the old per-slot intrusive list it costs one pointer chase per
  // kBlockSlots pops instead of per pop, with the slots in between laid out
  // sequentially for prefetching.
  struct alignas(64) SlotBlock {
    SlotBlock() {}  // NOLINT(modernize-use-equals-default) — leaves `slots`
                    // uninitialized on purpose: alloc_block() sets `next`,
                    // and only slots[0..fill) are ever read.
    std::array<std::uint32_t, 15> slots;
    std::uint32_t next;  // block index in blocks_
  };
  static_assert(sizeof(SlotBlock) == 64, "one cache line per block");
  static constexpr std::uint32_t kBlockSlots = 15;

  struct Bucket {
    std::uint32_t head = kNil;  // block index being consumed
    std::uint32_t tail = kNil;  // block index being filled
    std::uint32_t take = 0;     // consume index within head block
    std::uint32_t fill = 0;     // append index within tail block
  };

  struct FarEntry {
    EventKey key;
    std::uint32_t slot;
  };

  // Fixed-capacity slabs of recycled InlineTask slots. Slab granularity
  // keeps slot addresses stable (no mass relocation on growth) and the free
  // list makes steady-state push/pop allocation-free. Each slab is one
  // 2 MiB-aligned region (64-byte lines for the tasks fall out of that), and
  // on Linux it is madvise(MADV_HUGEPAGE)d: popping a large bucket reads
  // tasks roughly one slab stride apart, and with 4 KiB pages every one of
  // those reads costs a TLB walk on this access pattern — the walks, not the
  // line fetches, were the 1e6-event throughput cliff. One huge page per
  // slab makes the software prefetches actually overlap.
  class TaskPool {
   public:
    template <typename F>
    std::uint32_t acquire(F&& fn) {
      if (!free_.empty()) {
        const std::uint32_t slot = free_.back();
        free_.pop_back();
        task(slot).assign(std::forward<F>(fn));
        return slot;
      }
      if (size_ == slabs_.size() * kSlabSize) {
        slabs_.push_back(std::make_unique<Slab>());
      }
      const std::uint32_t slot = size_++;
      // First use of this slot: begin the task's lifetime lazily. Slab
      // storage is raw — constructing 32k tasks eagerly would touch the
      // whole 2 MiB slab up front, which dwarfs small simulations.
      auto* t = new (&slabs_[slot / kSlabSize]->tasks[slot % kSlabSize]) InlineTask();
      t->assign(std::forward<F>(fn));
      return slot;
    }

    /// Moves the callable out and returns the slot to the free list.
    InlineTask release(std::uint32_t slot) {
      InlineTask fn = std::move(task(slot));
      free_.push_back(slot);
      return fn;
    }

    /// Stable reference into the slab (valid across pool growth).
    InlineTask& task(std::uint32_t slot) {
      return slabs_[slot / kSlabSize]->tasks[slot % kSlabSize];
    }

    /// Address for software prefetch only (never dereferenced by callers).
    [[nodiscard]] const void* task_addr(std::uint32_t slot) const {
      return &slabs_[slot / kSlabSize]->tasks[slot % kSlabSize];
    }

    /// Destroys the callable and recycles the slot.
    void recycle(std::uint32_t slot) {
      task(slot).reset();
      free_.push_back(slot);
    }

   private:
    static constexpr std::uint32_t kSlabSize = 32768;  // 2 MiB of tasks

    // One slab of RAW task storage. Tasks are constructed lazily in
    // acquire() (first use of each slot) and the queue drains itself on
    // destruction, so neither slab construction nor slab destruction ever
    // touches the 2 MiB region; retired regions go to a small thread-local
    // cache and fresh simulations reuse already-faulted pages.
    struct Slab {
      Slab();
      ~Slab();
      Slab(const Slab&) = delete;
      Slab& operator=(const Slab&) = delete;
      InlineTask* tasks = nullptr;
    };

    std::vector<std::unique_ptr<Slab>> slabs_;
    std::vector<std::uint32_t> free_;
    std::uint32_t size_ = 0;
  };

  std::uint32_t alloc_block();
  void insert(Time time, std::uint32_t slot);
  /// Detaches the earliest event and returns (time, slot), advancing the
  /// wheel base. The caller consumes the slot.
  std::pair<Time, std::uint32_t> take_top();

  // --- ring tier ---
  std::uint32_t base_slot() const {
    return static_cast<std::uint32_t>(base_time_) & (kWindow - 1);
  }
  Time slot_to_time(std::uint32_t s) const {
    return base_time_ + ((s + kWindow - base_slot()) & (kWindow - 1));
  }
  void set_bit(std::uint32_t s) {
    bits_[s >> 6] |= 1ull << (s & 63);
    summary_ |= 1ull << (s >> 6);
  }
  void clear_bit(std::uint32_t s) {
    bits_[s >> 6] &= ~(1ull << (s & 63));
    if (bits_[s >> 6] == 0) summary_ &= ~(1ull << (s >> 6));
  }
  std::uint32_t find_next_bucket() const;  // precondition: ring_count_ > 0
  [[nodiscard]] Time ring_next_time() const { return slot_to_time(find_next_bucket()); }

  // --- far tier (4-ary implicit heap; children of i are 4i+1 .. 4i+4) ---
  void far_push(EventKey key, std::uint32_t slot);
  FarEntry far_take_top();
  [[nodiscard]] Time far_next_time() const { return event_key_time(far_.front().key); }

  std::array<Bucket, kWindow> ring_{};
  std::vector<SlotBlock> blocks_;        // shared bucket-block pool
  std::vector<std::uint32_t> free_blocks_;
  std::array<std::uint64_t, kWords> bits_{};
  std::uint64_t summary_ = 0;
  Time base_time_ = 0;       // ring covers [base_time_, base_time_ + kWindow)
  std::size_t ring_count_ = 0;

  std::vector<FarEntry> far_;
  std::uint64_t next_seq_ = 0;  // FIFO stamp for far-tier entries

  TaskPool pool_;
  std::size_t size_ = 0;
};

}  // namespace dynreg::sim
