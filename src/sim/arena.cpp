#include "sim/arena.h"

#include <cstring>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define DYNREG_ASAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DYNREG_ASAN_ACTIVE 1
#endif
#endif

#ifdef DYNREG_ASAN_ACTIVE
#include <sanitizer/asan_interface.h>
#endif

namespace dynreg::sim {
namespace {

constexpr std::size_t align_up(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}

void poison_span(void* p, std::size_t n) {
#ifdef DYNREG_ASAN_ACTIVE
  ASAN_POISON_MEMORY_REGION(p, n);
#else
  (void)p;
  (void)n;
#endif
}

void unpoison_span(void* p, std::size_t n) {
#ifdef DYNREG_ASAN_ACTIVE
  ASAN_UNPOISON_MEMORY_REGION(p, n);
#else
  (void)p;
  (void)n;
#endif
}

}  // namespace

Arena::Arena(std::size_t chunk_bytes) : chunk_bytes_(chunk_bytes) {}

Arena::~Arena() {
  // ASan forbids returning poisoned memory to the system allocator; clear
  // every region before the unique_ptrs release the buffers.
  for (auto& c : chunks_) unpoison_span(c->bytes.get(), c->capacity);
}

Arena::Chunk* Arena::new_chunk(std::size_t capacity) {
  auto owned = std::make_unique<Chunk>();
  owned->bytes = std::make_unique<unsigned char[]>(capacity);
  owned->capacity = capacity;
  Chunk* c = owned.get();
  chunks_.push_back(std::move(owned));
  ++chunks_created_;
  bytes_reserved_ += capacity;
  poison_span(c->bytes.get(), c->capacity);
  return c;
}

void Arena::retire(Chunk* c) {
  c->retire_epoch = epoch_;
  retired_.push_back(c);
}

void Arena::open_chunk_for(std::size_t size, std::size_t align) {
  if (open_ != nullptr) {
    open_->open = false;
    if (open_->live == 0) retire(open_);
    open_ = nullptr;
  }
  const std::size_t needed = sizeof(Header) + size + align;
  if (needed <= chunk_bytes_) {
    if (!free_.empty()) {
      open_ = free_.back();
      free_.pop_back();
      open_->used = 0;
    } else {
      open_ = new_chunk(chunk_bytes_);
    }
    open_->open = true;
    return;
  }
  // Oversize request: dedicated chunk. It becomes the bump target like any
  // other; the next normal-size allocation will not fit and seals it.
  open_ = new_chunk(needed);
  open_->open = true;
}

void* Arena::allocate(std::size_t size, std::size_t align) {
  if (align < alignof(Header)) align = alignof(Header);
  if (open_ == nullptr ||
      align_up(open_->used + sizeof(Header), align) + size > open_->capacity) {
    open_chunk_for(size, align);
  }
  Chunk* c = open_;
  const std::size_t p_off = align_up(c->used + sizeof(Header), align);
  c->used = p_off + size;
  ++c->live;
  ++live_;
  unsigned char* p = c->bytes.get() + p_off;
  unpoison_span(p - sizeof(Header), sizeof(Header) + size);
  auto* h = reinterpret_cast<Header*>(p - sizeof(Header));
  h->chunk = c;
  h->size = size;
  return p;
}

void Arena::deallocate(void* p) noexcept {
  auto* h = reinterpret_cast<Header*>(static_cast<unsigned char*>(p) -
                                      sizeof(Header));
  Chunk* c = h->chunk;
  // Under ASan the span turns inaccessible immediately — the epoch delay
  // protects reuse, not reads of dead objects. Plain builds keep the bytes
  // intact until reclaim so same-tick danglers read stale-but-stable data.
  poison_span(h, sizeof(Header) + h->size);
  --c->live;
  --live_;
  if (c->live == 0 && !c->open) retire(c);
}

void Arena::advance_epoch() {
  ++epoch_;
  if (retired_.empty()) return;
  std::size_t kept = 0;
  for (Chunk* c : retired_) {
    if (c->retire_epoch < epoch_) {
#ifdef DYNREG_ASAN_ACTIVE
      poison_span(c->bytes.get(), c->capacity);
#else
      std::memset(c->bytes.get(), kPoisonByte, c->capacity);
#endif
      c->used = 0;
      free_.push_back(c);
      ++chunks_recycled_;
    } else {
      retired_[kept++] = c;
    }
  }
  retired_.resize(kept);
}

bool Arena::address_is_poisoned(const void* p) {
#ifdef DYNREG_ASAN_ACTIVE
  return __asan_address_is_poisoned(p) != 0;
#else
  (void)p;
  return false;
#endif
}

}  // namespace dynreg::sim
