// Epoch-reclaimed arena for per-tick simulation objects: message payloads
// and pending-operation records. Replaces per-message heap traffic with
// chunked bump allocation.
//
// Lifetime contract (see docs/ARCHITECTURE.md, "Arena ownership"):
//   * allocate() returns storage valid until deallocate() is called on it.
//   * Storage freed by deallocate() is NOT recycled immediately. A chunk
//     whose allocations are all freed is *retired*; it becomes reusable only
//     after advance_epoch() moves past the epoch in which it retired.
//     Simulation advances the epoch once per simulated-clock advance, so any
//     raw pointer that is dead-but-dangling within the tick that freed it
//     still points at intact (if logically dead) bytes until the clock moves.
//   * On reclaim, chunk bytes are poison-filled with kPoisonByte (plain
//     builds) so a use-after-reclaim read sees 0xDD garbage deterministically.
//     Under AddressSanitizer the allocation span is poisoned at deallocate()
//     time instead, so ASan traps the earliest possible misuse.
//
// Determinism: the arena draws no randomness and its behaviour depends only
// on the sequence of allocate/deallocate/advance_epoch calls, which is itself
// a pure function of the (config, seed) event stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dynreg::sim {

class Arena {
 public:
  static constexpr unsigned char kPoisonByte = 0xDD;
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `size` bytes aligned to `align`. Never returns nullptr
  /// (throws std::bad_alloc on OS exhaustion, like operator new).
  [[nodiscard]] void* allocate(std::size_t size, std::size_t align);

  /// Marks an allocation dead. The backing chunk is recycled only after the
  /// epoch advances past the current one.
  void deallocate(void* p) noexcept;

  /// Moves to the next epoch and recycles (poisons + reuses) every chunk
  /// that fully retired in an earlier epoch. O(1) when nothing retired.
  void advance_epoch();

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t live_allocations() const { return live_; }
  [[nodiscard]] std::size_t chunks_created() const { return chunks_created_; }
  [[nodiscard]] std::size_t chunks_recycled() const { return chunks_recycled_; }
  [[nodiscard]] std::size_t bytes_reserved() const { return bytes_reserved_; }

  /// True when `p` (an address previously returned by allocate) currently
  /// lies in poisoned (reclaimed) storage. Only meaningful under ASan; plain
  /// builds always return false. Test hook for the use-after-reclaim gate.
  [[nodiscard]] static bool address_is_poisoned(const void* p);

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> bytes;
    std::size_t capacity = 0;
    std::size_t used = 0;         // bump cursor
    std::size_t live = 0;         // outstanding allocations
    std::uint64_t retire_epoch = 0;
    bool open = false;            // currently the bump target
  };

  // 16-byte prelude in front of every allocation: owning chunk + span size.
  struct Header {
    Chunk* chunk;
    std::uint64_t size;
  };
  static_assert(sizeof(Header) == 16, "allocation prelude is two words");

  Chunk* new_chunk(std::size_t capacity);
  void open_chunk_for(std::size_t size, std::size_t align);
  void retire(Chunk* c);

  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<Chunk>> chunks_;  // ownership, append-only
  Chunk* open_ = nullptr;
  std::vector<Chunk*> retired_;  // live==0, waiting out their retire epoch
  std::vector<Chunk*> free_;     // poisoned, ready to reopen
  std::uint64_t epoch_ = 0;
  std::size_t live_ = 0;
  std::size_t chunks_created_ = 0;
  std::size_t chunks_recycled_ = 0;
  std::size_t bytes_reserved_ = 0;
};

/// Minimal std-allocator adapter over Arena. All instances over the same
/// Arena compare equal, so container moves/swaps are O(1). Used for
/// std::allocate_shared payloads and the ES pending-op node containers.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) noexcept : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept  // NOLINT(google-explicit-constructor)
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept { arena_->deallocate(p); }

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

 private:
  Arena* arena_;
};

template <typename T, typename U>
bool operator==(const ArenaAllocator<T>& a, const ArenaAllocator<U>& b) noexcept {
  return a.arena() == b.arena();
}
template <typename T, typename U>
bool operator!=(const ArenaAllocator<T>& a, const ArenaAllocator<U>& b) noexcept {
  return a.arena() != b.arena();
}

}  // namespace dynreg::sim
