#include "sim/event_queue.h"

#include <cstdlib>
#include <new>
#include <utility>

#if defined(__linux__)
#include <sys/mman.h>
#define DYNREG_SLAB_MMAP 1
#endif

namespace dynreg::sim {

namespace {

constexpr std::size_t kArity = 4;

// How many slots ahead of the consume cursor to prefetch inside a bucket.
// Large buckets hold slots ~1 slab stride apart in pop order (tens of KB),
// so without prefetch every dispatch eats a full demand miss; looking a few
// slots ahead keeps that many misses in flight instead of one.
constexpr std::uint32_t kBucketPrefetch = 12;

inline void prefetch_ro(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 3);
#else
  (void)p;
#endif
}

inline std::uint32_t ctz64(std::uint64_t x) {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<std::uint32_t>(__builtin_ctzll(x));
#else
  std::uint32_t n = 0;
  while ((x & 1) == 0) {
    x >>= 1;
    ++n;
  }
  return n;
#endif
}

constexpr std::size_t kSlabBytes = 2 * 1024 * 1024;  // == kSlabSize tasks

#ifdef DYNREG_SLAB_MMAP
void* map_slab_region() {
  // Over-map by one huge page so a 2 MiB-aligned span can be handed back;
  // transparent huge pages only back 2 MiB-aligned virtual ranges.
  const std::size_t over = kSlabBytes + kSlabBytes;
  void* raw = ::mmap(nullptr, over, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (raw == MAP_FAILED) throw std::bad_alloc{};
  const auto addr = reinterpret_cast<std::uintptr_t>(raw);
  const std::uintptr_t aligned = (addr + kSlabBytes - 1) & ~(kSlabBytes - 1);
  if (aligned != addr) ::munmap(raw, aligned - addr);
  const std::uintptr_t tail = aligned + kSlabBytes;
  if (addr + over != tail) {
    ::munmap(reinterpret_cast<void*>(tail), addr + over - tail);
  }
  void* p = reinterpret_cast<void*>(aligned);
  ::madvise(p, kSlabBytes, MADV_HUGEPAGE);  // advisory; harmless if ignored
  return p;
}

void unmap_slab_region(void* p) { ::munmap(p, kSlabBytes); }
#else
void* map_slab_region() {
  return ::operator new(kSlabBytes, std::align_val_t{64});
}

void unmap_slab_region(void* p) {
  ::operator delete(p, std::align_val_t{64});
}
#endif

// Thread-local cache of retired slab regions: a fresh EventQueue (one per
// Simulation; benchmarks and sweeps build thousands) reuses an
// already-faulted huge-page region instead of paying fault + zero-fill for
// 2 MiB per slab. Capped so an occasional huge simulation does not pin its
// high-water mark forever; owning the vector through a destructor returns
// the regions when the (pooled job) thread exits.
struct SlabCache {
  static constexpr std::size_t kMaxRegions = 32;  // 64 MiB per thread
  std::vector<void*> regions;
  ~SlabCache() {
    for (void* p : regions) unmap_slab_region(p);
  }
};

SlabCache& slab_cache() {
  thread_local SlabCache cache;
  return cache;
}

}  // namespace

EventQueue::TaskPool::Slab::Slab() {
  static_assert(std::size_t{kSlabSize} * sizeof(InlineTask) == kSlabBytes,
                "slab region holds exactly kSlabSize one-line tasks");
  auto& cache = slab_cache().regions;
  void* p;
  if (!cache.empty()) {
    p = cache.back();
    cache.pop_back();
  } else {
    p = map_slab_region();
  }
  tasks = static_cast<InlineTask*>(p);
}

EventQueue::TaskPool::Slab::~Slab() {
  // Every constructed task in the region is empty by now (the queue drains
  // itself first), so their no-op destructors are elided and the raw region
  // is recycled wholesale.
  auto& cache = slab_cache().regions;
  if (cache.size() < SlabCache::kMaxRegions) {
    cache.push_back(tasks);
  } else {
    unmap_slab_region(tasks);
  }
}

EventQueue::~EventQueue() {
  while (size_ != 0) {
    const auto [time, slot] = take_top();
    (void)time;
    pool_.recycle(slot);
  }
}

std::uint32_t EventQueue::alloc_block() {
  if (!free_blocks_.empty()) {
    const std::uint32_t b = free_blocks_.back();
    free_blocks_.pop_back();
    blocks_[b].next = kNil;
    return b;
  }
  blocks_.emplace_back();
  return static_cast<std::uint32_t>(blocks_.size() - 1);
}

void EventQueue::insert(Time time, std::uint32_t slot) {
  if (size_ == 0) {
    // Empty queue: the window can jump straight to the new event (in either
    // direction), keeping sparse far-apart schedules (e.g. one timer at a
    // time) on the O(1) ring path.
    base_time_ = time;
  }
  if (time >= base_time_ && time - base_time_ < kWindow) {
    const auto b = static_cast<std::uint32_t>(time & (kWindow - 1));
    Bucket& bucket = ring_[b];
    if (bucket.head == kNil) {
      const std::uint32_t blk = alloc_block();  // may grow blocks_
      bucket.head = bucket.tail = blk;
      bucket.take = bucket.fill = 0;
      set_bit(b);
    } else if (bucket.fill == kBlockSlots) {
      const std::uint32_t blk = alloc_block();  // may grow blocks_
      blocks_[bucket.tail].next = blk;
      bucket.tail = blk;
      bucket.fill = 0;
    }
    blocks_[bucket.tail].slots[bucket.fill++] = slot;
    ++ring_count_;
  } else {
    // Out of window: far future, or in the past of the wheel base (the
    // simulation never does the latter, but the standalone queue allows it).
    far_push(make_event_key(time, next_seq_++), slot);
  }
}

std::uint32_t EventQueue::find_next_bucket() const {
  const std::uint32_t from = base_slot();
  const std::uint32_t w = from >> 6;
  // Bits below `from` in the wheel are *wrapped* (later) times, so mask them
  // off in the first word and only reach them through the wrap-around scan.
  const std::uint64_t first = bits_[w] & (~0ull << (from & 63));
  if (first != 0) return (w << 6) | ctz64(first);
  const std::uint64_t later_words =
      summary_ & (w + 1 < kWords ? ~0ull << (w + 1) : 0ull);
  if (later_words != 0) {
    const std::uint32_t w2 = ctz64(later_words);
    return (w2 << 6) | ctz64(bits_[w2]);
  }
  const std::uint32_t w3 = ctz64(summary_);  // wrap around
  return (w3 << 6) | ctz64(bits_[w3]);
}

std::pair<Time, std::uint32_t> EventQueue::take_top() {
  // The far tier wins ties: an equal-time far entry is always the older one
  // (see the FIFO argument in the header).
  if (ring_count_ != 0) {
    const Time ring_time = ring_next_time();
    if (far_.empty() || ring_time < far_next_time()) {
      const auto b = static_cast<std::uint32_t>(ring_time & (kWindow - 1));
      Bucket& bucket = ring_[b];
      SlotBlock& blk = blocks_[bucket.head];
      const std::uint32_t slot = blk.slots[bucket.take++];
      const std::uint32_t head_count =
          bucket.head == bucket.tail ? bucket.fill : kBlockSlots;
      if (bucket.take == head_count) {
        const std::uint32_t drained = bucket.head;
        if (bucket.head == bucket.tail) {
          bucket.head = bucket.tail = kNil;  // bucket empty; refills next lap
          bucket.take = bucket.fill = 0;
          clear_bit(b);
        } else {
          bucket.head = blk.next;
          bucket.take = 0;
        }
        free_blocks_.push_back(drained);
      } else {
        // Keep kBucketPrefetch task fetches in flight. Indices
        // [take+K, head_count) are reached within this block, indices
        // [0, K) of the successor via the spill branch, and index K — in
        // neither window, since `take` starts at 1 — by the one-off fetch
        // on block entry, which also requests the successor's line early
        // so the spill reads rarely stall.
        if (bucket.take == 1) {
          if (bucket.head != bucket.tail) prefetch_ro(&blocks_[blk.next]);
          if (kBucketPrefetch < head_count) {
            prefetch_ro(pool_.task_addr(blk.slots[kBucketPrefetch]));
          }
        }
        const std::uint32_t ahead = bucket.take + kBucketPrefetch;
        if (ahead < head_count) {
          prefetch_ro(pool_.task_addr(blk.slots[ahead]));
        } else if (bucket.head != bucket.tail) {
          const SlotBlock& nb = blocks_[blk.next];
          const std::uint32_t ncount =
              blk.next == bucket.tail ? bucket.fill : kBlockSlots;
          const std::uint32_t nidx = ahead - head_count;
          if (nidx < ncount) prefetch_ro(pool_.task_addr(nb.slots[nidx]));
        }
      }
      --ring_count_;
      --size_;
      base_time_ = ring_time;  // slides the window; ring min, so no event is left behind
      return {ring_time, slot};
    }
  }
  const FarEntry top = far_take_top();
  const Time t = event_key_time(top.key);
  // A far entry can be in the wheel's past (standalone pushes); never move
  // the base backwards, live ring events must stay inside the window.
  if (t > base_time_) base_time_ = t;
  --size_;
  return {t, top.slot};
}

Event EventQueue::pop() {
  const auto [time, slot] = take_top();
  return Event{time, pool_.release(slot)};
}

void EventQueue::run_top(Time* now_out) {
  const auto [time, slot] = take_top();
  if (now_out != nullptr) *now_out = time;  // the event must see the advanced clock
  // The callable may push new events (growing pool and tiers); pool slots
  // are address-stable, so running it in place is safe. Recycle only after
  // it returns — a running event cannot pop, so its slot can't be reused
  // under it.
  pool_.task(slot)();
  pool_.recycle(slot);
}

Time EventQueue::next_time() const {
  if (ring_count_ == 0) return far_next_time();
  const Time ring_time = ring_next_time();
  if (!far_.empty() && far_next_time() < ring_time) return far_next_time();
  return ring_time;
}

void EventQueue::far_push(EventKey key, std::uint32_t slot) {
  // Hole-based sift-up: move parents down until `key` fits, then write the
  // new entry once.
  std::size_t pos = far_.size();
  far_.push_back(FarEntry{key, slot});
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kArity;
    if (!(key < far_[parent].key)) break;
    far_[pos] = far_[parent];
    pos = parent;
  }
  far_[pos] = FarEntry{key, slot};
}

EventQueue::FarEntry EventQueue::far_take_top() {
  // Standard delete-min: drop the last entry into the root hole and sift it
  // down past any smaller child.
  const FarEntry top = far_.front();
  const FarEntry last = far_.back();
  far_.pop_back();
  const std::size_t n = far_.size();
  if (n != 0) {
    FarEntry* const h = far_.data();
    std::size_t pos = 0;
    for (;;) {
      const std::size_t first_child = pos * kArity + 1;
      if (first_child >= n) break;
      std::size_t min_child = first_child;
      const std::size_t end = first_child + kArity < n ? first_child + kArity : n;
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (h[c].key < h[min_child].key) min_child = c;
      }
      if (!(h[min_child].key < last.key)) break;
      h[pos] = h[min_child];
      pos = min_child;
      // The next iteration compares the children of min_child; start their
      // lines toward the core while this iteration's stores retire.
      if (min_child * kArity + 1 < n) prefetch_ro(&h[min_child * kArity + 1]);
    }
    h[pos] = last;
  }
  return top;
}

}  // namespace dynreg::sim
