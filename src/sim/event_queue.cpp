#include "sim/event_queue.h"

#include <utility>

namespace dynreg::sim {

void EventQueue::push(Time time, std::function<void()> fn) {
  heap_.push(Event{time, next_seq_++, std::move(fn)});
}

Event EventQueue::pop() { return heap_.take(); }

}  // namespace dynreg::sim
