#include "sim/event_queue.h"

#include <utility>

namespace dynreg::sim {

namespace {

constexpr std::size_t kArity = 4;

inline std::uint32_t ctz64(std::uint64_t x) {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<std::uint32_t>(__builtin_ctzll(x));
#else
  std::uint32_t n = 0;
  while ((x & 1) == 0) {
    x >>= 1;
    ++n;
  }
  return n;
#endif
}

}  // namespace

void EventQueue::insert(Time time, std::uint32_t slot) {
  if (size_ == 0) {
    // Empty queue: the window can jump straight to the new event (in either
    // direction), keeping sparse far-apart schedules (e.g. one timer at a
    // time) on the O(1) ring path.
    base_time_ = time;
  }
  if (time >= base_time_ && time - base_time_ < kWindow) {
    const auto b = static_cast<std::uint32_t>(time & (kWindow - 1));
    Bucket& bucket = ring_[b];
    if (bucket.head == kNil) {
      bucket.head = bucket.tail = slot;
      set_bit(b);
    } else {
      next_[bucket.tail] = slot;
      bucket.tail = slot;
    }
    ++ring_count_;
  } else {
    // Out of window: far future, or in the past of the wheel base (the
    // simulation never does the latter, but the standalone queue allows it).
    far_push(make_event_key(time, next_seq_++), slot);
  }
}

std::uint32_t EventQueue::find_next_bucket() const {
  const std::uint32_t from = base_slot();
  const std::uint32_t w = from >> 6;
  // Bits below `from` in the wheel are *wrapped* (later) times, so mask them
  // off in the first word and only reach them through the wrap-around scan.
  const std::uint64_t first = bits_[w] & (~0ull << (from & 63));
  if (first != 0) return (w << 6) | ctz64(first);
  const std::uint64_t later_words =
      summary_ & (w + 1 < kWords ? ~0ull << (w + 1) : 0ull);
  if (later_words != 0) {
    const std::uint32_t w2 = ctz64(later_words);
    return (w2 << 6) | ctz64(bits_[w2]);
  }
  const std::uint32_t w3 = ctz64(summary_);  // wrap around
  return (w3 << 6) | ctz64(bits_[w3]);
}

std::pair<Time, std::uint32_t> EventQueue::take_top() {
  // The far tier wins ties: an equal-time far entry is always the older one
  // (see the FIFO argument in the header).
  if (ring_count_ != 0) {
    const Time ring_time = ring_next_time();
    if (far_.empty() || ring_time < far_next_time()) {
      const auto b = static_cast<std::uint32_t>(ring_time & (kWindow - 1));
      Bucket& bucket = ring_[b];
      const std::uint32_t slot = bucket.head;
      bucket.head = next_[slot];
      if (bucket.head == kNil) {
        bucket.tail = kNil;
        clear_bit(b);
      }
      --ring_count_;
      --size_;
      base_time_ = ring_time;  // slides the window; ring min, so no event is left behind
      return {ring_time, slot};
    }
  }
  const FarEntry top = far_take_top();
  const Time t = event_key_time(top.key);
  // A far entry can be in the wheel's past (standalone pushes); never move
  // the base backwards, live ring events must stay inside the window.
  if (t > base_time_) base_time_ = t;
  --size_;
  return {t, top.slot};
}

Event EventQueue::pop() {
  const auto [time, slot] = take_top();
  return Event{time, pool_.release(slot)};
}

void EventQueue::run_top(Time* now_out) {
  const auto [time, slot] = take_top();
  if (now_out != nullptr) *now_out = time;  // the event must see the advanced clock
  // The callable may push new events (growing pool and tiers); pool slots
  // are address-stable, so running it in place is safe. Recycle only after
  // it returns — a running event cannot pop, so its slot can't be reused
  // under it.
  pool_.task(slot)();
  pool_.recycle(slot);
}

Time EventQueue::next_time() const {
  if (ring_count_ == 0) return far_next_time();
  const Time ring_time = ring_next_time();
  if (!far_.empty() && far_next_time() < ring_time) return far_next_time();
  return ring_time;
}

void EventQueue::far_push(EventKey key, std::uint32_t slot) {
  // Hole-based sift-up: move parents down until `key` fits, then write the
  // new entry once.
  std::size_t pos = far_.size();
  far_.push_back(FarEntry{key, slot});
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kArity;
    if (!(key < far_[parent].key)) break;
    far_[pos] = far_[parent];
    pos = parent;
  }
  far_[pos] = FarEntry{key, slot};
}

EventQueue::FarEntry EventQueue::far_take_top() {
  // Standard delete-min: drop the last entry into the root hole and sift it
  // down past any smaller child.
  const FarEntry top = far_.front();
  const FarEntry last = far_.back();
  far_.pop_back();
  const std::size_t n = far_.size();
  if (n != 0) {
    FarEntry* const h = far_.data();
    std::size_t pos = 0;
    for (;;) {
      const std::size_t first_child = pos * kArity + 1;
      if (first_child >= n) break;
      std::size_t min_child = first_child;
      const std::size_t end = first_child + kArity < n ? first_child + kArity : n;
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (h[c].key < h[min_child].key) min_child = c;
      }
      if (!(h[min_child].key < last.key)) break;
      h[pos] = h[min_child];
      pos = min_child;
    }
    h[pos] = last;
  }
  return top;
}

}  // namespace dynreg::sim
