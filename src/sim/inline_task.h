// InlineTask: a move-only type-erased `void()` callable with fixed in-place
// storage. The simulation schedules millions of small lambdas per run;
// std::function heap-allocates any capture larger than its (implementation-
// defined, typically 16-byte) small-buffer, which made every scheduled
// message delivery an allocation. InlineTask stores captures up to
// kInlineCapacity bytes directly inside the object and only falls back to
// the heap for oversized captures — none of the library's own lambdas need
// the fallback (a static_assert on the per-message delivery closure in
// Network::transmit guards the hottest one, and the InlineTask tests pin
// the boundary).
//
// The type is deliberately minimal: construct from a callable, move, invoke
// once or many times, destroy. No copy, no target introspection, no
// allocator awareness — it exists purely to make the event hot path
// allocation-free.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace dynreg::sim {

class InlineTask {
 public:
  /// In-place capture budget, chosen so sizeof(InlineTask) is exactly one
  /// 64-byte cache line (vtable pointer + storage). 48 bytes fits every
  /// scheduler lambda in the library; the largest — a liveness token plus a
  /// moved-in std::function completion callback — is 48 bytes.
  static constexpr std::size_t kInlineCapacity = 48;

  InlineTask() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineTask> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineTask(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    init(std::forward<F>(fn));
  }

  /// Replaces the current callable, constructing the new one in place (the
  /// pool's hot path: no temporary InlineTask, no relocate call).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineTask> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void assign(F&& fn) {
    reset();
    init(std::forward<F>(fn));
  }

  InlineTask(InlineTask&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      relocate_from(other);
      other.ops_ = nullptr;
    }
  }

  InlineTask& operator=(InlineTask&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        relocate_from(other);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;

  ~InlineTask() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True when the callable lives in the in-place buffer (exposed so tests
  /// can pin the no-allocation property of the library's own lambdas).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

  void operator()() { ops_->invoke(storage_); }

  void reset() {
    if (ops_ != nullptr) {
      if (!ops_->trivial) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  template <typename F>
  void init(F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(fn));
      ops_ = &heap_ops<Fn>;
    }
  }

  // Per-callable-type operation table: one static instance per Fn, so the
  // task itself is just {vtable pointer, storage}.
  struct Ops {
    void (*invoke)(unsigned char* storage);
    // Move-constructs into dst from src, then destroys src's callable.
    void (*relocate)(unsigned char* dst, unsigned char* src);
    void (*destroy)(unsigned char* storage);
    bool inline_storage;
    // Trivially copyable + destructible capture: relocation is a fixed-size
    // memcpy and destruction a no-op, with no indirect calls. True for the
    // bulk of scheduler lambdas (captures of ints, pointers, references).
    bool trivial;
  };

  void relocate_from(InlineTask& other) {
    if (ops_->trivial) {
      std::memcpy(storage_, other.storage_, kInlineCapacity);
    } else {
      ops_->relocate(storage_, other.storage_);
    }
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](unsigned char* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](unsigned char* dst, unsigned char* src) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (static_cast<void*>(dst)) Fn(std::move(*from));
        from->~Fn();
      },
      [](unsigned char* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
      true,
      std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>,
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](unsigned char* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      [](unsigned char* dst, unsigned char* src) {
        *reinterpret_cast<Fn**>(dst) = *std::launder(reinterpret_cast<Fn**>(src));
      },
      [](unsigned char* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); },
      false,
      false,
  };

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
};

}  // namespace dynreg::sim
