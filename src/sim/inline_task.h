// InlineTask: the scheduler's move-only type-erased `void()` callable with
// fixed in-place storage — an alias of the generalized InlineFunction (see
// sim/inline_function.h for the design notes and capture-budget rationale).
// Event-queue slots, slab pools, and every schedule_* call site use this
// name; the typed operation-completion callables of the register API use
// other InlineFunction instantiations of the same template.
#pragma once

#include "sim/inline_function.h"

namespace dynreg::sim {

using InlineTask = InlineFunction<void()>;

}  // namespace dynreg::sim
