// Seeded deterministic RNG (splitmix64). Self-contained so simulation runs
// reproduce bit-for-bit across standard libraries and platforms, which
// std::uniform_*_distribution does not guarantee.
#pragma once

#include <cstdint>

namespace dynreg::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return lo + next() % (hi - lo + 1);
  }

  bool bernoulli(double p) { return uniform01() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace dynreg::sim
