#include "stats/table.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace dynreg::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&widths](std::string& out, const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };

  std::string out;
  emit_row(out, headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(out, row);
  return out;
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace dynreg::stats
