// Typed tabular results: the machine-readable sibling of stats::Table.
//
// Experiments build DataTables (cells keep their numeric identity instead
// of being pre-formatted strings), and one table renders three ways:
//   - to_text(): the classic fixed-width console table (via stats::Table),
//     using each cell's display precision;
//   - to_csv(): RFC-4180-style CSV with full-fidelity numbers;
//   - append_json(): rows as arrays of typed values on a JsonWriter.
#pragma once

#include <string>
#include <vector>

#include "stats/json_writer.h"
#include "stats/table.h"

namespace dynreg::stats {

/// One table cell: either text or a number. Numbers carry an optional
/// display precision used only for the fixed-width text rendering; CSV and
/// JSON always emit the full value (shortest round-trip form).
struct Cell {
  enum class Kind { kText, kNumber };

  Kind kind = Kind::kText;
  std::string text;
  double number = 0.0;
  int precision = -1;  // display decimals for to_text(); -1 = shortest form

  static Cell str(std::string s);
  /// Number displayed in shortest round-trip form.
  static Cell num(double v);
  /// Number displayed with fixed `precision` decimals in text tables.
  static Cell num(double v, int precision);

  /// The text-table rendering of this cell.
  std::string display() const;
};

class DataTable {
 public:
  explicit DataTable(std::vector<std::string> columns);

  /// Appends a row; its size must match the column count.
  void add_row(std::vector<Cell> row);

  [[nodiscard]] const std::vector<std::string>& columns() const { return columns_; }
  [[nodiscard]] const std::vector<std::vector<Cell>>& rows() const { return rows_; }

  /// Fixed-width console rendering (header, rule, padded rows).
  std::string to_text() const;

  /// CSV rendering: a header row then data rows; fields containing commas,
  /// quotes, or newlines are quoted with internal quotes doubled.
  std::string to_csv() const;

  /// Emits {"columns": [...], "rows": [[...], ...]} members into the
  /// currently open JSON object.
  void append_json(JsonWriter& w) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace dynreg::stats
