#include "stats/data_table.h"

#include <cassert>
#include <utility>

namespace dynreg::stats {

Cell Cell::str(std::string s) {
  Cell c;
  c.kind = Kind::kText;
  c.text = std::move(s);
  return c;
}

Cell Cell::num(double v) {
  Cell c;
  c.kind = Kind::kNumber;
  c.number = v;
  return c;
}

Cell Cell::num(double v, int precision) {
  Cell c = num(v);
  c.precision = precision;
  return c;
}

std::string Cell::display() const {
  if (kind == Kind::kText) return text;
  if (precision >= 0) return Table::fmt(number, precision);
  return JsonWriter::format_double(number);
}

DataTable::DataTable(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void DataTable::add_row(std::vector<Cell> row) {
  assert(row.size() == columns_.size());
  rows_.push_back(std::move(row));
}

std::string DataTable::to_text() const {
  Table table(columns_);
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto& c : row) cells.push_back(c.display());
    table.add_row(std::move(cells));
  }
  return table.to_string();
}

namespace {

std::string csv_field(const std::string& raw) {
  if (raw.find_first_of(",\"\n\r") == std::string::npos) return raw;
  std::string quoted = "\"";
  for (const char c : raw) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

std::string DataTable::to_csv() const {
  std::string out;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ',';
    out += csv_field(columns_[i]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      const auto& c = row[i];
      out += c.kind == Cell::Kind::kNumber ? JsonWriter::format_double(c.number)
                                           : csv_field(c.text);
    }
    out += '\n';
  }
  return out;
}

void DataTable::append_json(JsonWriter& w) const {
  w.key("columns");
  w.begin_array();
  for (const auto& c : columns_) w.value(c);
  w.end_array();
  w.key("rows");
  w.begin_array();
  for (const auto& row : rows_) {
    w.begin_array();
    for (const auto& c : row) {
      if (c.kind == Cell::Kind::kNumber) {
        w.value(c.number);
      } else {
        w.value(c.text);
      }
    }
    w.end_array();
  }
  w.end_array();
}

}  // namespace dynreg::stats
