// Minimal fixed-width text table for bench/experiment output.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dynreg::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> row);

  /// Renders the table: header, a dashed rule, then rows, columns padded to
  /// the widest cell and separated by two spaces.
  std::string to_string() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Formats v with fixed `precision` decimals (precision 0: no point).
  static std::string fmt(double v, int precision);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dynreg::stats
