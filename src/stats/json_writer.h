// Minimal streaming JSON writer with deterministic number formatting.
//
// The sweep engine's determinism guarantee extends to emitted artifacts:
// the same aggregated values must serialize to the same bytes whatever the
// worker count or platform. Doubles are therefore formatted as the shortest
// decimal string that round-trips (std::to_chars), never via locale- or
// precision-dependent iostreams.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dynreg::stats {

/// Streaming writer producing pretty-printed (2-space indent) JSON.
///
/// Usage mirrors the document structure:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name"); w.value("sweep");
///   w.key("points"); w.begin_array(); ... w.end_array();
///   w.end_object();
///   std::string doc = w.str();
///
/// The writer trusts the caller to emit a well-formed sequence (keys only
/// inside objects, matched begin/end); it only manages commas, indentation,
/// and escaping.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits an object key; must be followed by a value or container.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void null();

  /// The finished document (call after the final end_*).
  [[nodiscard]] const std::string& str() const { return out_; }

  /// Shortest round-trip decimal representation; "null" for NaN/inf (JSON
  /// has no spelling for them).
  static std::string format_double(double v);

  /// JSON string escaping (quotes, backslash, control characters).
  static std::string escape(std::string_view s);

 private:
  void begin_value();
  void newline_indent();

  std::string out_;
  std::vector<bool> has_items_;  // per open container: anything emitted yet?
  bool after_key_ = false;
};

}  // namespace dynreg::stats
