#include "stats/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace dynreg::stats {

std::string JsonWriter::format_double(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == 0.0) v = 0.0;  // normalize -0.0
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  out_ += '\n';
  out_.append(2 * has_items_.size(), ' ');
}

void JsonWriter::begin_value() {
  // Position the cursor for a new value: top-level and after-key values go
  // right here; container members get a comma (when not first) + newline.
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (has_items_.empty()) return;
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  newline_indent();
}

void JsonWriter::begin_object() {
  begin_value();
  out_ += '{';
  has_items_.push_back(false);
}

void JsonWriter::end_object() {
  const bool had_items = has_items_.back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  out_ += '}';
}

void JsonWriter::begin_array() {
  begin_value();
  out_ += '[';
  has_items_.push_back(false);
}

void JsonWriter::end_array() {
  const bool had_items = has_items_.back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  out_ += ']';
}

void JsonWriter::key(std::string_view k) {
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  newline_indent();
  out_ += '"';
  out_ += escape(k);
  out_ += "\": ";
  after_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  begin_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
}

void JsonWriter::value(double v) {
  begin_value();
  out_ += format_double(v);
}

void JsonWriter::value(std::uint64_t v) {
  begin_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::int64_t v) {
  begin_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(bool v) {
  begin_value();
  out_ += v ? "true" : "false";
}

void JsonWriter::null() {
  begin_value();
  out_ += "null";
}

}  // namespace dynreg::stats
