// The paper's synchronous protocol (Section 3): a regular register under
// continuous churn in a synchronous system with delay bound delta.
//
//  - join: wait delta (so concurrent WRITE broadcasts land at the active
//    processes first — Figure 3), broadcast INQUIRY, collect REPLYs for
//    2*delta (or delta + delta' with footnote 4's optimization), adopt the
//    value with the greatest timestamp, become active, then answer the
//    inquiries that arrived while joining.
//  - read: local, instantaneous — the protocol's "fast reads" design point.
//  - write: timestamp++, broadcast WRITE, update locally, done after delta.
//
// Theorem 1: this implements a regular register provided c < 1/(3*delta).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "dynreg/register_node.h"
#include "dynreg/types.h"
#include "node/context.h"

namespace dynreg {

struct SyncConfig {
  sim::Duration delta = 5;
  /// Figure 3(b) vs 3(a): the paper's protocol waits delta before inquiring;
  /// disabling the wait reproduces the broken variant.
  bool wait_before_inquiry = true;
  /// Footnote 4: with a known one-way bound delta' for replies, the inquiry
  /// collection window shrinks from 2*delta to delta + delta'.
  std::optional<sim::Duration> delta_pp;
  /// Anti-entropy extension (not in the paper): active processes rebroadcast
  /// their copy every interval, healing replicas behind lossy channels.
  std::optional<sim::Duration> refresh_interval;
  /// Value held by the bootstrap members.
  Value initial_value = 0;
};

class SyncRegisterNode final : public RegisterNode {
 public:
  SyncRegisterNode(sim::ProcessId id, node::Context& ctx, SyncConfig config,
                   bool initial);

  void on_message(sim::ProcessId from, const net::Payload& payload) override;
  void on_departure() override;
  void read(const OpContext& op, ReadCompletion done) override;
  void write(const OpContext& op, Value v, WriteCompletion done) override;
  Value local_value() const override { return value_; }
  bool is_active() const override { return active_; }
  [[nodiscard]] DurableImage crash_image() const override {
    return DurableImage{value_, ts_, has_value_};
  }
  /// Apply-as-floor (docs/FAULTS.md): the image merges through the monotone
  /// apply() while the restarted process still runs the full delta-wait join,
  /// so the recovered copy can only add information, never mask the join's.
  void restore(const DurableImage& image) override {
    if (image.has_value) apply(image.ts, image.value);
  }

 private:
  void start_inquiry();
  void finish_join();
  void finish_write(std::uint64_t wid);
  void apply(const Timestamp& ts, Value v);
  void schedule_refresh();

  node::Context& ctx_;
  SyncConfig config_;

  Value value_ = kBottom;
  Timestamp ts_;
  bool has_value_ = false;
  bool active_ = false;
  bool joining_ = false;
  std::vector<sim::ProcessId> pending_inquiries_;
  /// Writes waiting out their delta propagation window, tagged with a local
  /// sequence number. Held here (not captured in the timer) so a departure
  /// can resolve them with kDroppedOnDeparture. Every write waits exactly
  /// delta, so completions are strict FIFO — a deque (amortized
  /// allocation-free) instead of a per-write map node.
  std::deque<std::pair<std::uint64_t, WriteCompletion>> pending_writes_;
  std::uint64_t next_wid_ = 0;
};

}  // namespace dynreg
