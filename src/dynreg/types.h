// Core value types shared by every layer of the register simulation.
#pragma once

#include <cstdint>

namespace dynreg {

/// The register holds integer values; kBottom is the distinguished "no value
/// yet" mark a joining process carries before its join completes.
using Value = std::int64_t;
inline constexpr Value kBottom = -1;

/// Write timestamps: lexicographic (sequence number, writer id). The paper's
/// single-writer protocol only needs the sequence number; the multi-writer
/// extension (Section 7) breaks ties on the writer id.
struct Timestamp {
  std::uint64_t sn = 0;
  std::uint32_t writer = 0;

  friend bool operator<(const Timestamp& a, const Timestamp& b) {
    if (a.sn != b.sn) return a.sn < b.sn;
    return a.writer < b.writer;
  }
  friend bool operator==(const Timestamp& a, const Timestamp& b) {
    return a.sn == b.sn && a.writer == b.writer;
  }
  friend bool operator>(const Timestamp& a, const Timestamp& b) { return b < a; }
};

}  // namespace dynreg
