// Common interface of all register protocol implementations.
#pragma once

#include "dynreg/operation.h"
#include "dynreg/types.h"
#include "node/node.h"

namespace dynreg {

/// Common interface of the register protocols (sync, ES, ABD). Operations
/// are asynchronous: read/write return immediately and signal through the
/// supplied move-only completion, which runs inside the simulation (same
/// virtual time discipline as any event).
///
/// Completion contract:
///  - The completion fires at most once, with a typed OpOutcome.
///  - kOk: the protocol completed the operation normally.
///  - kDroppedOnDeparture: the node left the system with the operation still
///    in flight — on_departure() resolves every pending operation instead of
///    leaking its completion with the node's timers (the silent-drop footgun
///    of the pre-client API).
///  - An operation that merely starves (e.g. a quorum that never forms on a
///    node that never departs) keeps its completion pending forever; clients
///    that need a bound arm a deadline (client::Client raises kTimedOut).
class RegisterNode : public node::Node {
 public:
  using node::Node::Node;

  /// Starts a read identified by `op`; `done` fires when the operation
  /// resolves (kOk carries the value read, other outcomes carry kBottom).
  virtual void read(const OpContext& op, ReadCompletion done) = 0;

  /// Starts a write of `v` identified by `op`.
  virtual void write(const OpContext& op, Value v, WriteCompletion done) = 0;

  /// The process's current local copy (kBottom before a join adopts one).
  virtual Value local_value() const = 0;

  /// Whether this process's join has completed (bootstrap members are
  /// active from construction).
  virtual bool is_active() const = 0;
};

}  // namespace dynreg
