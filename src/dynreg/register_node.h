// Common interface of all register protocol implementations.
#pragma once

#include "dynreg/operation.h"
#include "dynreg/types.h"
#include "node/node.h"

namespace dynreg {

/// What survives a crash when the fault engine restarts a process with
/// durable register state (fault::RestartState::kDurable): the local copy
/// and its timestamp, as they were at the instant of the crash.
struct DurableImage {
  Value value = kBottom;
  Timestamp ts;
  bool has_value = false;
};

/// Common interface of the register protocols (sync, ES, ABD). Operations
/// are asynchronous: read/write return immediately and signal through the
/// supplied move-only completion, which runs inside the simulation (same
/// virtual time discipline as any event).
///
/// Completion contract:
///  - The completion fires at most once, with a typed OpOutcome.
///  - kOk: the protocol completed the operation normally.
///  - kDroppedOnDeparture: the node left the system with the operation still
///    in flight — on_departure() resolves every pending operation instead of
///    leaking its completion with the node's timers (the silent-drop footgun
///    of the pre-client API).
///  - An operation that merely starves (e.g. a quorum that never forms on a
///    node that never departs) keeps its completion pending forever; clients
///    that need a bound arm a deadline (client::Client raises kTimedOut).
class RegisterNode : public node::Node {
 public:
  using node::Node::Node;

  /// Starts a read identified by `op`; `done` fires when the operation
  /// resolves (kOk carries the value read, other outcomes carry kBottom).
  virtual void read(const OpContext& op, ReadCompletion done) = 0;

  /// Starts a write of `v` identified by `op`.
  virtual void write(const OpContext& op, Value v, WriteCompletion done) = 0;

  /// The process's current local copy (kBottom before a join adopts one).
  virtual Value local_value() const = 0;

  /// Whether this process's join has completed (bootstrap members are
  /// active from construction).
  virtual bool is_active() const = 0;

  /// Snapshot of the durable register state at crash time, for the fault
  /// engine's crash-recovery path. Default: nothing survives (protocols
  /// without a durable story restart volatile).
  [[nodiscard]] virtual DurableImage crash_image() const { return {}; }

  /// Re-applies a recovered durable image on the restarted process. The
  /// contract is apply-as-floor: the image is merged with timestamp
  /// monotonicity (never adopted blindly) and never short-circuits the join
  /// protocol — a stale disk image must not mask a newer value the join
  /// would have found (docs/FAULTS.md). Default: ignored.
  virtual void restore(const DurableImage& image) { (void)image; }
};

}  // namespace dynreg
