// Common interface of all register protocol implementations.
#pragma once

#include <functional>

#include "dynreg/types.h"
#include "node/node.h"

namespace dynreg {

/// Common interface of the register protocols (sync, ES, ABD). Operations
/// are asynchronous: they return immediately and signal completion through
/// the supplied callback, which runs inside the simulation (same virtual
/// time discipline as any event). If the node departs mid-operation the
/// callback is dropped with its timers — callers must not rely on it firing.
class RegisterNode : public node::Node {
 public:
  using ReadCallback = std::function<void(Value)>;
  using WriteCallback = std::function<void()>;

  using node::Node::Node;

  /// Starts a read; the callback fires (once) when the operation returns.
  /// Operations that never terminate (e.g. a starved quorum) never fire it.
  virtual void read(ReadCallback done) = 0;

  /// Starts a write of `v`; the callback fires when the write completes.
  virtual void write(Value v, WriteCallback done) = 0;

  /// The process's current local copy (kBottom before a join adopts one).
  virtual Value local_value() const = 0;

  /// Whether this process's join has completed (bootstrap members are
  /// active from construction).
  virtual bool is_active() const = 0;
};

}  // namespace dynreg
