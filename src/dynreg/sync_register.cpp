#include "dynreg/sync_register.h"

#include <utility>

#include "dynreg/messages.h"

namespace dynreg {

SyncRegisterNode::SyncRegisterNode(sim::ProcessId id, node::Context& ctx,
                                   SyncConfig config, bool initial)
    : RegisterNode(id), ctx_(ctx), config_(std::move(config)) {
  if (initial) {
    value_ = config_.initial_value;
    ts_ = Timestamp{0, 0};
    has_value_ = true;
    active_ = true;
    ctx_.notify_active();
    schedule_refresh();
  } else {
    joining_ = true;
    if (config_.wait_before_inquiry) {
      // The initial delta wait guarantees any WRITE broadcast concurrent
      // with the join has landed at every active process before their
      // replies are generated (Figure 3b).
      ctx_.schedule_after(config_.delta, [this] { start_inquiry(); });
    } else {
      start_inquiry();
    }
  }
}

void SyncRegisterNode::start_inquiry() {
  ctx_.broadcast(ctx_.make_payload<msg::SyncInquiry>());
  // A reply takes at most delta (inquiry) + delta (reply) to round-trip;
  // footnote 4 tightens the return leg to a known delta'.
  const sim::Duration window =
      config_.delta + (config_.delta_pp ? *config_.delta_pp : config_.delta);
  ctx_.schedule_after(window, [this] { finish_join(); });
}

void SyncRegisterNode::finish_join() {
  joining_ = false;
  active_ = true;
  ctx_.notify_active();
  // Answer inquiries that arrived while we were still joining.
  for (const sim::ProcessId j : pending_inquiries_) {
    ctx_.send(j, ctx_.make_payload<msg::SyncReply>(ts_, value_, has_value_));
  }
  pending_inquiries_.clear();
  schedule_refresh();
}

void SyncRegisterNode::apply(const Timestamp& ts, Value v) {
  if (!has_value_ || ts_ < ts) {
    ts_ = ts;
    value_ = v;
    has_value_ = true;
  }
}

void SyncRegisterNode::schedule_refresh() {
  if (!config_.refresh_interval) return;
  ctx_.schedule_after(*config_.refresh_interval, [this] {
    if (active_ && has_value_) {
      ctx_.broadcast(ctx_.make_payload<msg::SyncRefresh>(ts_, value_));
    }
    schedule_refresh();
  });
}

void SyncRegisterNode::on_message(sim::ProcessId from, const net::Payload& payload) {
  const net::PayloadTypeId type = payload.type_id();
  if (type == msg::SyncWrite::kTypeId) {
    const auto& m = static_cast<const msg::SyncWrite&>(payload);
    apply(m.ts, m.value);
  } else if (type == msg::SyncRefresh::kTypeId) {
    const auto& m = static_cast<const msg::SyncRefresh&>(payload);
    apply(m.ts, m.value);
  } else if (type == msg::SyncReply::kTypeId) {
    // Replies feed the join phase only; one arriving after the collection
    // window closed is discarded (this is exactly what makes the no-wait
    // variant of Figure 3a unsafe).
    const auto& m = static_cast<const msg::SyncReply&>(payload);
    if (joining_ && m.has_value) apply(m.ts, m.value);
  } else if (type == msg::SyncInquiry::kTypeId) {
    if (active_) {
      ctx_.send(from, ctx_.make_payload<msg::SyncReply>(ts_, value_, has_value_));
    } else {
      pending_inquiries_.push_back(from);
    }
  }
}

void SyncRegisterNode::read(const OpContext&, ReadCompletion done) {
  // Reads are local and instantaneous — the "fast reads" design point. A
  // read can therefore never be dropped mid-flight: it resolves before the
  // invocation returns.
  done(OpOutcome::kOk, value_);
}

void SyncRegisterNode::write(const OpContext&, Value v, WriteCompletion done) {
  Timestamp ts{ts_.sn + 1, id()};
  apply(ts, v);
  ctx_.broadcast(ctx_.make_payload<msg::SyncWrite>(ts, v));
  // In the synchronous model every copy lands within delta; the write
  // returns exactly then (Section 3.3). The completion waits in
  // pending_writes_ (not inside the timer) so a departure can resolve it.
  const std::uint64_t wid = next_wid_++;
  pending_writes_.emplace_back(wid, std::move(done));
  ctx_.schedule_after(config_.delta, [this, wid] { finish_write(wid); });
}

void SyncRegisterNode::finish_write(std::uint64_t wid) {
  // Writes all wait the same delta, so their timers fire in issue order and
  // the finishing write is always the queue's front. (A cleared queue —
  // departure resolved everything — cannot be observed here: departure also
  // cancels the timers.)
  if (pending_writes_.empty() || pending_writes_.front().first != wid) return;
  WriteCompletion done = std::move(pending_writes_.front().second);
  pending_writes_.pop_front();
  done(OpOutcome::kOk);
}

void SyncRegisterNode::on_departure() {
  // Resolve every in-flight write as dropped (in issue order, so the
  // client's records resolve deterministically). Reads are instantaneous
  // and never pend; join state has no client-visible operation attached.
  auto pending = std::move(pending_writes_);
  pending_writes_.clear();
  for (auto& [wid, done] : pending) {
    if (done) done(OpOutcome::kDroppedOnDeparture);
  }
}

}  // namespace dynreg
