#include "dynreg/abd_register.h"

#include <utility>

#include "dynreg/messages.h"

namespace dynreg {

AbdRegisterNode::AbdRegisterNode(sim::ProcessId id, node::Context& ctx,
                                 AbdConfig config, bool initial)
    : RegisterNode(id), ctx_(ctx), config_(std::move(config)), replica_(initial) {
  if (replica_) {
    value_ = config_.initial_value;
    ts_ = Timestamp{0, 0};
  }
  // ABD has no join protocol: every member is immediately operational.
  ctx_.notify_active();
}

void AbdRegisterNode::apply(const Timestamp& ts, Value v) {
  if (ts_ < ts) {
    ts_ = ts;
    value_ = v;
  }
}

void AbdRegisterNode::read(const OpContext&, ReadCompletion done) {
  const std::uint64_t rid = next_rid_++;
  PendingRead& r = reads_[rid];
  r.done = std::move(done);
  if (replica_) {
    r.repliers.insert(id());
    r.best_ts = ts_;
    r.best_value = value_;
    r.has_best = true;
  }
  ctx_.broadcast(ctx_.make_payload<msg::AbdReadQuery>(rid));
  if (r.repliers.size() >= majority()) start_writeback(rid);  // n == 1 corner
}

void AbdRegisterNode::write(const OpContext&, Value v, WriteCompletion done) {
  // Advance past every timestamp this process has observed so a writer whose
  // local counter lags (multi-writer configs) cannot issue an already
  // superseded timestamp that replicas would ack but never store.
  sn_ = std::max(sn_, ts_.sn) + 1;
  const Timestamp ts{sn_, id()};
  const std::uint64_t wid = next_wid_++;
  PendingWrite& w = writes_[wid];
  w.done = std::move(done);
  if (replica_) {
    apply(ts, v);
    w.ackers.insert(id());
  }
  ctx_.broadcast(ctx_.make_payload<msg::AbdUpdate>(wid, ts, v));
  maybe_finish_write(wid);  // n == 1 corner
}

void AbdRegisterNode::start_writeback(std::uint64_t rid) {
  // Phase 2: write the chosen value back to a majority before returning.
  PendingRead& r = reads_[rid];
  r.in_writeback = true;
  if (replica_) {
    apply(r.best_ts, r.best_value);
    r.wb_ackers.insert(id());
  }
  ctx_.broadcast(ctx_.make_payload<msg::AbdWriteback>(rid, r.best_ts, r.best_value));
  maybe_finish_read(rid);
}

void AbdRegisterNode::maybe_finish_read(std::uint64_t rid) {
  const auto it = reads_.find(rid);
  if (it == reads_.end() || !it->second.in_writeback ||
      it->second.wb_ackers.size() < majority()) {
    return;
  }
  PendingRead finished = std::move(it->second);
  reads_.erase(it);
  finished.done(OpOutcome::kOk, finished.best_value);
}

void AbdRegisterNode::maybe_finish_write(std::uint64_t wid) {
  const auto it = writes_.find(wid);
  if (it == writes_.end() || it->second.ackers.size() < majority()) return;
  PendingWrite finished = std::move(it->second);
  writes_.erase(it);
  finished.done(OpOutcome::kOk);
}

void AbdRegisterNode::on_departure() {
  // Resolve every in-flight quorum operation as dropped, in id order.
  auto reads = std::move(reads_);
  reads_.clear();
  auto writes = std::move(writes_);
  writes_.clear();
  for (auto& [rid, r] : reads) {
    if (r.done) r.done(OpOutcome::kDroppedOnDeparture, kBottom);
  }
  for (auto& [wid, w] : writes) {
    if (w.done) w.done(OpOutcome::kDroppedOnDeparture);
  }
}

void AbdRegisterNode::on_message(sim::ProcessId from, const net::Payload& payload) {
  const net::PayloadTypeId type = payload.type_id();

  if (type == msg::AbdReadQuery::kTypeId) {
    if (!replica_) return;
    const auto& m = static_cast<const msg::AbdReadQuery&>(payload);
    ctx_.send(from, ctx_.make_payload<msg::AbdReadReply>(m.rid, ts_, value_));
  } else if (type == msg::AbdReadReply::kTypeId) {
    const auto& m = static_cast<const msg::AbdReadReply&>(payload);
    const auto it = reads_.find(m.rid);
    if (it == reads_.end() || it->second.in_writeback) return;
    PendingRead& r = it->second;
    r.repliers.insert(from);
    if (!r.has_best || r.best_ts < m.ts) {
      r.best_ts = m.ts;
      r.best_value = m.value;
      r.has_best = true;
    }
    if (r.repliers.size() >= majority()) start_writeback(m.rid);
  } else if (type == msg::AbdWriteback::kTypeId) {
    if (!replica_) return;
    const auto& m = static_cast<const msg::AbdWriteback&>(payload);
    apply(m.ts, m.value);
    ctx_.send(from, ctx_.make_payload<msg::AbdWritebackAck>(m.rid));
  } else if (type == msg::AbdWritebackAck::kTypeId) {
    const auto& m = static_cast<const msg::AbdWritebackAck&>(payload);
    const auto it = reads_.find(m.rid);
    if (it == reads_.end() || !it->second.in_writeback) return;
    it->second.wb_ackers.insert(from);
    maybe_finish_read(m.rid);
  } else if (type == msg::AbdUpdate::kTypeId) {
    if (!replica_) return;
    const auto& m = static_cast<const msg::AbdUpdate&>(payload);
    apply(m.ts, m.value);
    ctx_.send(from, ctx_.make_payload<msg::AbdUpdateAck>(m.wid));
  } else if (type == msg::AbdUpdateAck::kTypeId) {
    const auto& m = static_cast<const msg::AbdUpdateAck&>(payload);
    const auto it = writes_.find(m.wid);
    if (it == writes_.end()) return;
    it->second.ackers.insert(from);
    maybe_finish_write(m.wid);
  }
}

}  // namespace dynreg
