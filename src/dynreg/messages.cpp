// Interns every protocol wire tag in one fixed order. Dynamic initializers
// within a translation unit run top to bottom, so the tag -> PayloadTypeId
// mapping is identical in every process regardless of link order or which
// other translation units intern tags of their own later.
#include "dynreg/messages.h"

#include "net/payload_type.h"

namespace dynreg::msg {

using net::PayloadTypeRegistry;

const net::PayloadTypeId SyncWrite::kTypeId = PayloadTypeRegistry::intern("sync.write");
const net::PayloadTypeId SyncInquiry::kTypeId = PayloadTypeRegistry::intern("sync.inquiry");
const net::PayloadTypeId SyncReply::kTypeId = PayloadTypeRegistry::intern("sync.reply");
const net::PayloadTypeId SyncRefresh::kTypeId = PayloadTypeRegistry::intern("sync.refresh");
const net::PayloadTypeId EsRead::kTypeId = PayloadTypeRegistry::intern("es.read");
const net::PayloadTypeId EsReply::kTypeId = PayloadTypeRegistry::intern("es.reply");
const net::PayloadTypeId EsWrite::kTypeId = PayloadTypeRegistry::intern("es.write");
const net::PayloadTypeId EsAck::kTypeId = PayloadTypeRegistry::intern("es.ack");
const net::PayloadTypeId EsJoin::kTypeId = PayloadTypeRegistry::intern("es.join");
const net::PayloadTypeId EsJoinReply::kTypeId = PayloadTypeRegistry::intern("es.join_reply");
const net::PayloadTypeId AbdReadQuery::kTypeId = PayloadTypeRegistry::intern("abd.read_query");
const net::PayloadTypeId AbdReadReply::kTypeId = PayloadTypeRegistry::intern("abd.read_reply");
const net::PayloadTypeId AbdWriteback::kTypeId = PayloadTypeRegistry::intern("abd.writeback");
const net::PayloadTypeId AbdWritebackAck::kTypeId =
    PayloadTypeRegistry::intern("abd.writeback_ack");
const net::PayloadTypeId AbdUpdate::kTypeId = PayloadTypeRegistry::intern("abd.update");
const net::PayloadTypeId AbdUpdateAck::kTypeId = PayloadTypeRegistry::intern("abd.update_ack");

}  // namespace dynreg::msg
