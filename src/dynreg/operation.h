// The typed operation vocabulary of the client/register API: operation
// identity (OpContext), outcome (OpOutcome), and the move-only completion
// callables every protocol signals through.
//
// Before this layer existed, operations were bare std::function callbacks
// with no identity and exactly one implicit outcome ("the callback fired");
// an operation whose node departed simply leaked its callback. Now every
// invocation carries an OpContext assigned by the issuing client, and the
// completion fires at most once with a typed outcome (an operation that
// merely starves on a node that never departs stays pending — clients that
// need a bound arm a deadline, see client::OpOptions):
//
//   kOk                  the protocol completed the operation,
//   kDroppedOnDeparture  the hosting node left the system mid-operation,
//   kTimedOut            the client's per-op deadline expired first (raised
//                        by the client layer, never by a protocol).
#pragma once

#include <cstdint>

#include "dynreg/types.h"
#include "sim/event_queue.h"
#include "sim/inline_function.h"

namespace dynreg {

/// Client-assigned operation identity, unique per run within one client.
using OpId = std::uint64_t;

enum class OpType : std::uint8_t { kRead, kWrite };

/// How an operation resolved. Every issued operation resolves with exactly
/// one outcome (or stays pending past the run horizon, which no outcome
/// describes — the record simply never resolves).
enum class [[nodiscard]] OpOutcome : std::uint8_t {
  kOk = 0,
  kDroppedOnDeparture = 1,
  kTimedOut = 2,
};

inline const char* to_string(OpOutcome o) {
  switch (o) {
    case OpOutcome::kOk:
      return "ok";
    case OpOutcome::kDroppedOnDeparture:
      return "dropped_on_departure";
    case OpOutcome::kTimedOut:
      return "timed_out";
  }
  return "?";
}

inline const char* to_string(OpType t) {
  return t == OpType::kRead ? "read" : "write";
}

/// What a protocol learns about the operation it is asked to run: the
/// client's id for it and the invocation time. Protocols treat it as opaque
/// identity — internal round identifiers stay internal.
struct OpContext {
  OpId id = 0;
  sim::Time invoked_at = 0;
};

/// Completion callables, InlineTask-style (move-only, 48-byte in-place
/// capture, no std::function on the operation hot path). A read completion
/// receives the value only when the outcome is kOk; for any other outcome
/// the value argument is kBottom and meaningless.
using ReadCompletion = sim::InlineFunction<void(OpOutcome, Value)>;
using WriteCompletion = sim::InlineFunction<void(OpOutcome)>;

}  // namespace dynreg
