// The paper's eventually synchronous protocol (Section 5): a regular
// register that never relies on timing for safety. Reads, writes, and joins
// gather majority quorums (of the constant system size n) by broadcasting
// and re-broadcasting until enough distinct processes answer; eventual
// synchrony only guarantees the quorums eventually form (Theorems 3-4).
//
// The churn constraint is c < 1/(3*delta*n): the active-majority assumption
// |A(t)| > n/2 must hold so quorums of active processes exist.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>

#include "dynreg/register_node.h"
#include "dynreg/types.h"
#include "node/context.h"
#include "sim/arena.h"

namespace dynreg {

struct EsConfig {
  /// The constant system size; quorums are majorities of n.
  std::size_t n = 10;
  /// Re-broadcast cadence for unfinished operations. Retransmission is what
  /// lets an operation pick up repliers that joined after it started.
  sim::Duration retransmit_interval = 10;
  /// Atomicity ablation: completed reads write back the value they return
  /// (an extra quorum round trip), upgrading regular to atomic.
  bool atomic_reads = false;
  /// Value held by the bootstrap members.
  Value initial_value = 0;
  /// Defensive hardening (docs/FAULTS.md): bounded exponential retransmit
  /// backoff — every rebroadcast of the same unfinished operation doubles
  /// the interval, capped at 8x the base. Off (the default) keeps the
  /// historical fixed cadence byte-identically; on, a partitioned minority
  /// stops paying a full-rate rebroadcast storm while it waits for heal.
  bool retransmit_backoff = false;
  /// Defensive hardening: reply-validation guard — drop inbound
  /// value-carrying messages (WRITE / REPLY / JOIN_REPLY) that are
  /// structurally inconsistent (no value claimed but a nonzero timestamp)
  /// or whose sequence number lies more than ts_envelope beyond everything
  /// this process has seen (a forged far-future timestamp would otherwise
  /// poison the monotone merge permanently). Off by default.
  bool validate_replies = false;
  /// Plausibility envelope for validate_replies, in sequence numbers. Benign
  /// lag (a reader behind a healed partition) stays far inside it; a forged
  /// timestamp fabricated to dominate all future writes lands outside.
  std::uint64_t ts_envelope = 64;
};

class EsRegisterNode final : public RegisterNode {
 public:
  EsRegisterNode(sim::ProcessId id, node::Context& ctx, EsConfig config, bool initial);

  void on_message(sim::ProcessId from, const net::Payload& payload) override;
  void on_departure() override;
  void read(const OpContext& op, ReadCompletion done) override;
  void write(const OpContext& op, Value v, WriteCompletion done) override;
  Value local_value() const override { return value_; }
  bool is_active() const override { return active_; }
  [[nodiscard]] DurableImage crash_image() const override {
    return DurableImage{value_, ts_, has_value_};
  }
  /// Apply-as-floor: the image merges through the monotone apply() and the
  /// restarted process still runs the join protocol, so a stale disk image
  /// can never mask a newer value the join quorum knows.
  void restore(const DurableImage& image) override {
    if (image.has_value) apply(image.ts, image.value);
  }

 private:
  // Pending-operation state lives in the simulation's epoch arena: every
  // node-tree allocation (map nodes, replier-set nodes) is a short-lived,
  // uniform-size object churned once per in-flight operation, exactly the
  // traffic the arena batches. The arena outlives the node (it belongs to
  // the Simulation), so erase/destruction order is unconstrained.
  using ArenaIdSet = std::set<sim::ProcessId, std::less<sim::ProcessId>,
                              sim::ArenaAllocator<sim::ProcessId>>;
  template <typename V>
  using ArenaOpMap =
      std::map<std::uint64_t, V, std::less<std::uint64_t>,
               sim::ArenaAllocator<std::pair<const std::uint64_t, V>>>;

  struct PendingRead {
    explicit PendingRead(sim::Arena& arena)
        : repliers(sim::ArenaAllocator<sim::ProcessId>(arena)) {}
    ReadCompletion done;
    ArenaIdSet repliers;
    Timestamp best_ts;
    Value best_value = kBottom;
    bool has_value = false;
    bool in_writeback = false;
    std::uint32_t resends = 0;  // drives the bounded retransmit backoff
  };
  struct PendingWrite {
    explicit PendingWrite(sim::Arena& arena)
        : ackers(sim::ArenaAllocator<sim::ProcessId>(arena)) {}
    WriteCompletion done;
    Timestamp ts;
    Value value = kBottom;
    ArenaIdSet ackers;
    bool is_read_writeback = false;
    std::uint64_t rid = 0;  // owning read, when is_read_writeback
    std::uint32_t resends = 0;  // drives the bounded retransmit backoff
  };

  [[nodiscard]] std::size_t majority() const { return config_.n / 2 + 1; }
  /// Interval before the (resends+1)-th rebroadcast: the fixed cadence, or
  /// base << min(resends, 3) under the hardened exponential backoff.
  [[nodiscard]] sim::Duration retransmit_after(std::uint32_t resends) const {
    if (!config_.retransmit_backoff) return config_.retransmit_interval;
    return config_.retransmit_interval << (resends > 3 ? 3 : resends);
  }
  /// validate_replies guard; true = drop the message unprocessed.
  [[nodiscard]] bool rejects_envelope(const Timestamp& ts, bool msg_has_value) const {
    if (!config_.validate_replies) return false;
    if (!msg_has_value) return ts.sn > 0;  // no value claimed, yet a timestamp
    return ts.sn > max_seen_sn_ + config_.ts_envelope;
  }
  void apply(const Timestamp& ts, Value v);
  void start_join();
  void retransmit_join();
  void retransmit_read(std::uint64_t rid);
  void retransmit_write(std::uint64_t wid);
  void finish_read(std::uint64_t rid);
  void start_writeback(std::uint64_t rid);
  void maybe_finish_write(std::uint64_t wid);

  node::Context& ctx_;
  EsConfig config_;

  Value value_ = kBottom;
  Timestamp ts_;
  bool has_value_ = false;
  bool active_ = false;

  std::uint64_t next_rid_ = 0;
  std::uint64_t next_wid_ = 0;
  std::uint64_t join_id_ = 0;
  std::uint64_t max_seen_sn_ = 0;

  ArenaOpMap<PendingRead> reads_;
  ArenaOpMap<PendingWrite> writes_;
  ArenaIdSet join_repliers_;
  std::uint32_t join_resends_ = 0;
  bool join_pending_ = false;
  Timestamp join_best_ts_;
  Value join_best_value_ = kBottom;
  bool join_has_value_ = false;
};

}  // namespace dynreg
