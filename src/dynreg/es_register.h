// The paper's eventually synchronous protocol (Section 5): a regular
// register that never relies on timing for safety. Reads, writes, and joins
// gather majority quorums (of the constant system size n) by broadcasting
// and re-broadcasting until enough distinct processes answer; eventual
// synchrony only guarantees the quorums eventually form (Theorems 3-4).
//
// The churn constraint is c < 1/(3*delta*n): the active-majority assumption
// |A(t)| > n/2 must hold so quorums of active processes exist.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>

#include "dynreg/register_node.h"
#include "dynreg/types.h"
#include "node/context.h"
#include "sim/arena.h"

namespace dynreg {

struct EsConfig {
  /// The constant system size; quorums are majorities of n.
  std::size_t n = 10;
  /// Re-broadcast cadence for unfinished operations. Retransmission is what
  /// lets an operation pick up repliers that joined after it started.
  sim::Duration retransmit_interval = 10;
  /// Atomicity ablation: completed reads write back the value they return
  /// (an extra quorum round trip), upgrading regular to atomic.
  bool atomic_reads = false;
  /// Value held by the bootstrap members.
  Value initial_value = 0;
};

class EsRegisterNode final : public RegisterNode {
 public:
  EsRegisterNode(sim::ProcessId id, node::Context& ctx, EsConfig config, bool initial);

  void on_message(sim::ProcessId from, const net::Payload& payload) override;
  void on_departure() override;
  void read(const OpContext& op, ReadCompletion done) override;
  void write(const OpContext& op, Value v, WriteCompletion done) override;
  Value local_value() const override { return value_; }
  bool is_active() const override { return active_; }

 private:
  // Pending-operation state lives in the simulation's epoch arena: every
  // node-tree allocation (map nodes, replier-set nodes) is a short-lived,
  // uniform-size object churned once per in-flight operation, exactly the
  // traffic the arena batches. The arena outlives the node (it belongs to
  // the Simulation), so erase/destruction order is unconstrained.
  using ArenaIdSet = std::set<sim::ProcessId, std::less<sim::ProcessId>,
                              sim::ArenaAllocator<sim::ProcessId>>;
  template <typename V>
  using ArenaOpMap =
      std::map<std::uint64_t, V, std::less<std::uint64_t>,
               sim::ArenaAllocator<std::pair<const std::uint64_t, V>>>;

  struct PendingRead {
    explicit PendingRead(sim::Arena& arena)
        : repliers(sim::ArenaAllocator<sim::ProcessId>(arena)) {}
    ReadCompletion done;
    ArenaIdSet repliers;
    Timestamp best_ts;
    Value best_value = kBottom;
    bool has_value = false;
    bool in_writeback = false;
  };
  struct PendingWrite {
    explicit PendingWrite(sim::Arena& arena)
        : ackers(sim::ArenaAllocator<sim::ProcessId>(arena)) {}
    WriteCompletion done;
    Timestamp ts;
    Value value = kBottom;
    ArenaIdSet ackers;
    bool is_read_writeback = false;
    std::uint64_t rid = 0;  // owning read, when is_read_writeback
  };

  [[nodiscard]] std::size_t majority() const { return config_.n / 2 + 1; }
  void apply(const Timestamp& ts, Value v);
  void start_join();
  void retransmit_join();
  void retransmit_read(std::uint64_t rid);
  void retransmit_write(std::uint64_t wid);
  void finish_read(std::uint64_t rid);
  void start_writeback(std::uint64_t rid);
  void maybe_finish_write(std::uint64_t wid);

  node::Context& ctx_;
  EsConfig config_;

  Value value_ = kBottom;
  Timestamp ts_;
  bool has_value_ = false;
  bool active_ = false;

  std::uint64_t next_rid_ = 0;
  std::uint64_t next_wid_ = 0;
  std::uint64_t join_id_ = 0;
  std::uint64_t max_seen_sn_ = 0;

  ArenaOpMap<PendingRead> reads_;
  ArenaOpMap<PendingWrite> writes_;
  ArenaIdSet join_repliers_;
  bool join_pending_ = false;
  Timestamp join_best_ts_;
  Value join_best_value_ = kBottom;
  bool join_has_value_ = false;
};

}  // namespace dynreg
