#include "dynreg/es_register.h"

#include <algorithm>
#include <utility>

#include "dynreg/messages.h"

namespace dynreg {

EsRegisterNode::EsRegisterNode(sim::ProcessId id, node::Context& ctx, EsConfig config,
                               bool initial)
    : RegisterNode(id),
      ctx_(ctx),
      config_(std::move(config)),
      // The pending containers draw their nodes from the simulation's epoch
      // arena (ArenaAllocator<char> converts to each container's allocator).
      reads_(sim::ArenaAllocator<char>(ctx.arena())),
      writes_(sim::ArenaAllocator<char>(ctx.arena())),
      join_repliers_(sim::ArenaAllocator<char>(ctx.arena())) {
  if (initial) {
    value_ = config_.initial_value;
    ts_ = Timestamp{0, 0};
    has_value_ = true;
    active_ = true;
    ctx_.notify_active();
  } else {
    start_join();
  }
}

void EsRegisterNode::apply(const Timestamp& ts, Value v) {
  max_seen_sn_ = std::max(max_seen_sn_, ts.sn);
  if (!has_value_ || ts_ < ts) {
    ts_ = ts;
    value_ = v;
    has_value_ = true;
  }
}

// --- join -------------------------------------------------------------------

void EsRegisterNode::start_join() {
  join_pending_ = true;
  join_id_ = static_cast<std::uint64_t>(id()) << 32;
  ctx_.broadcast(ctx_.make_payload<msg::EsJoin>(join_id_));
  ctx_.schedule_after(retransmit_after(join_resends_), [this] { retransmit_join(); });
}

void EsRegisterNode::retransmit_join() {
  if (!join_pending_) return;
  ctx_.broadcast(ctx_.make_payload<msg::EsJoin>(join_id_));
  ctx_.schedule_after(retransmit_after(++join_resends_), [this] { retransmit_join(); });
}

// --- read -------------------------------------------------------------------

void EsRegisterNode::read(const OpContext&, ReadCompletion done) {
  const std::uint64_t rid = next_rid_++;
  PendingRead& r = reads_.try_emplace(rid, ctx_.arena()).first->second;
  r.done = std::move(done);
  // The reader's own copy counts towards the quorum without a message.
  r.repliers.insert(id());
  if (has_value_) {
    r.best_ts = ts_;
    r.best_value = value_;
    r.has_value = true;
  }
  ctx_.broadcast(ctx_.make_payload<msg::EsRead>(rid));
  ctx_.schedule_after(retransmit_after(0), [this, rid] { retransmit_read(rid); });
  if (r.repliers.size() >= majority()) finish_read(rid);  // n == 1 corner
}

void EsRegisterNode::retransmit_read(std::uint64_t rid) {
  const auto it = reads_.find(rid);
  if (it == reads_.end() || it->second.in_writeback) return;
  ctx_.broadcast(ctx_.make_payload<msg::EsRead>(rid));
  ctx_.schedule_after(retransmit_after(++it->second.resends),
                      [this, rid] { retransmit_read(rid); });
}

void EsRegisterNode::finish_read(std::uint64_t rid) {
  const auto it = reads_.find(rid);
  if (it == reads_.end()) return;
  if (config_.atomic_reads && !it->second.in_writeback) {
    start_writeback(rid);
    return;
  }
  PendingRead r = std::move(it->second);
  reads_.erase(it);
  r.done(OpOutcome::kOk, r.has_value ? r.best_value : kBottom);
}

void EsRegisterNode::start_writeback(std::uint64_t rid) {
  // ABD-style second phase: make the value about to be returned reach a
  // majority before returning it, so no later read can see an older one.
  PendingRead& r = reads_.find(rid)->second;  // caller verified presence
  r.in_writeback = true;
  const std::uint64_t wid = (next_wid_++ << 1) | 1;
  PendingWrite& w = writes_.try_emplace(wid, ctx_.arena()).first->second;
  w.ts = r.best_ts;
  w.value = r.best_value;
  w.is_read_writeback = true;
  w.rid = rid;
  w.ackers.insert(id());
  ctx_.broadcast(ctx_.make_payload<msg::EsWrite>(wid, w.ts, w.value));
  ctx_.schedule_after(retransmit_after(0), [this, wid] { retransmit_write(wid); });
  maybe_finish_write(wid);  // n == 1 corner: the self-vote is the quorum
}

// --- write ------------------------------------------------------------------

void EsRegisterNode::write(const OpContext&, Value v, WriteCompletion done) {
  // Timestamps advance past everything this process has seen, so concurrent
  // writers converge on a total (sn, writer id) order — the multi-writer
  // extension of Section 7.
  const Timestamp ts{std::max(ts_.sn, max_seen_sn_) + 1, id()};
  apply(ts, v);
  const std::uint64_t wid = next_wid_++ << 1;
  PendingWrite& w = writes_.try_emplace(wid, ctx_.arena()).first->second;
  w.done = std::move(done);
  w.ts = ts;
  w.value = v;
  w.ackers.insert(id());
  ctx_.broadcast(ctx_.make_payload<msg::EsWrite>(wid, ts, v));
  ctx_.schedule_after(retransmit_after(0), [this, wid] { retransmit_write(wid); });
  maybe_finish_write(wid);  // n == 1 corner: the self-vote is the quorum
}

void EsRegisterNode::maybe_finish_write(std::uint64_t wid) {
  const auto it = writes_.find(wid);
  if (it == writes_.end() || it->second.ackers.size() < majority()) return;
  PendingWrite w = std::move(it->second);
  writes_.erase(it);
  if (w.is_read_writeback) {
    finish_read(w.rid);
  } else if (w.done) {
    w.done(OpOutcome::kOk);
  }
}

void EsRegisterNode::on_departure() {
  // Resolve every in-flight operation as dropped, in id order (deterministic
  // for the client's records). A read in its write-back phase owns its
  // completion through reads_; the paired write-back entry in writes_ has no
  // completion of its own, so nothing resolves twice.
  auto reads = std::move(reads_);
  reads_.clear();
  auto writes = std::move(writes_);
  writes_.clear();
  for (auto& [rid, r] : reads) {
    if (r.done) r.done(OpOutcome::kDroppedOnDeparture, kBottom);
  }
  for (auto& [wid, w] : writes) {
    if (w.done) w.done(OpOutcome::kDroppedOnDeparture);
  }
}

void EsRegisterNode::retransmit_write(std::uint64_t wid) {
  const auto it = writes_.find(wid);
  if (it == writes_.end()) return;
  ctx_.broadcast(ctx_.make_payload<msg::EsWrite>(wid, it->second.ts, it->second.value));
  ctx_.schedule_after(retransmit_after(++it->second.resends),
                      [this, wid] { retransmit_write(wid); });
}

// --- message handling -------------------------------------------------------

void EsRegisterNode::on_message(sim::ProcessId from, const net::Payload& payload) {
  const net::PayloadTypeId type = payload.type_id();

  if (type == msg::EsWrite::kTypeId) {
    // Every process — active or joining — stores newer values and acks.
    const auto& m = static_cast<const msg::EsWrite&>(payload);
    if (rejects_envelope(m.ts, true)) return;  // forged-timestamp guard: no store, no ack
    apply(m.ts, m.value);
    ctx_.send(from, ctx_.make_payload<msg::EsAck>(m.wid));
  } else if (type == msg::EsAck::kTypeId) {
    const auto& m = static_cast<const msg::EsAck&>(payload);
    const auto it = writes_.find(m.wid);
    if (it == writes_.end()) return;
    it->second.ackers.insert(from);
    maybe_finish_write(m.wid);
  } else if (type == msg::EsRead::kTypeId) {
    const auto& m = static_cast<const msg::EsRead&>(payload);
    if (active_) {
      ctx_.send(from, ctx_.make_payload<msg::EsReply>(m.rid, ts_, value_, has_value_));
    }
  } else if (type == msg::EsReply::kTypeId) {
    const auto& m = static_cast<const msg::EsReply&>(payload);
    if (rejects_envelope(m.ts, m.has_value)) return;  // malformed/out-of-envelope reply
    const auto it = reads_.find(m.rid);
    if (it == reads_.end() || it->second.in_writeback) return;
    PendingRead& r = it->second;
    r.repliers.insert(from);
    if (m.has_value && (!r.has_value || r.best_ts < m.ts)) {
      r.best_ts = m.ts;
      r.best_value = m.value;
      r.has_value = true;
    }
    if (r.repliers.size() >= majority()) finish_read(m.rid);
  } else if (type == msg::EsJoin::kTypeId) {
    const auto& m = static_cast<const msg::EsJoin&>(payload);
    if (active_) {
      ctx_.send(from,
                ctx_.make_payload<msg::EsJoinReply>(m.jid, ts_, value_, has_value_));
    }
  } else if (type == msg::EsJoinReply::kTypeId) {
    const auto& m = static_cast<const msg::EsJoinReply&>(payload);
    if (rejects_envelope(m.ts, m.has_value)) return;  // malformed/out-of-envelope reply
    if (!join_pending_ || m.jid != join_id_) return;
    join_repliers_.insert(from);
    if (m.has_value && (!join_has_value_ || join_best_ts_ < m.ts)) {
      join_best_ts_ = m.ts;
      join_best_value_ = m.value;
      join_has_value_ = true;
    }
    if (join_repliers_.size() >= majority()) {
      join_pending_ = false;
      if (join_has_value_) apply(join_best_ts_, join_best_value_);
      active_ = true;
      ctx_.notify_active();
    }
  }
}

}  // namespace dynreg
