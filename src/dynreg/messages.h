// Wire messages of the three protocols. Type tags are part of the contract:
// adversarial delay models and the per-type traffic metrics match on them.
//
// Every message type carries a cached interned PayloadTypeId (kTypeId) so
// per-delivery code — receiver dispatch, delay-model scripts, metrics —
// compares small integers instead of strings. The ids are interned in one
// fixed declaration order by src/dynreg/messages.cpp, so within a process
// each tag always maps to the same id.
#pragma once

#include <cstdint>

#include "dynreg/types.h"
#include "net/payload.h"

namespace dynreg::msg {

// --- synchronous protocol (Section 3) --------------------------------------

struct SyncWrite final : net::Payload {
  SyncWrite(Timestamp t, Value v) : ts(t), value(v) {}
  std::string_view type_name() const override { return "sync.write"; }
  net::PayloadTypeId type_id() const override { return kTypeId; }
  static const net::PayloadTypeId kTypeId;
  Timestamp ts;
  Value value;
};

struct SyncInquiry final : net::Payload {
  std::string_view type_name() const override { return "sync.inquiry"; }
  net::PayloadTypeId type_id() const override { return kTypeId; }
  static const net::PayloadTypeId kTypeId;
};

struct SyncReply final : net::Payload {
  SyncReply(Timestamp t, Value v, bool hv) : ts(t), value(v), has_value(hv) {}
  std::string_view type_name() const override { return "sync.reply"; }
  net::PayloadTypeId type_id() const override { return kTypeId; }
  static const net::PayloadTypeId kTypeId;
  Timestamp ts;
  Value value;
  bool has_value;
};

/// Anti-entropy rebroadcast; semantically a SyncWrite but tagged separately
/// so traffic accounting does not mix it into write cost.
struct SyncRefresh final : net::Payload {
  SyncRefresh(Timestamp t, Value v) : ts(t), value(v) {}
  std::string_view type_name() const override { return "sync.refresh"; }
  net::PayloadTypeId type_id() const override { return kTypeId; }
  static const net::PayloadTypeId kTypeId;
  Timestamp ts;
  Value value;
};

// --- eventually synchronous protocol (Section 5) ---------------------------

struct EsRead final : net::Payload {
  explicit EsRead(std::uint64_t r) : rid(r) {}
  std::string_view type_name() const override { return "es.read"; }
  net::PayloadTypeId type_id() const override { return kTypeId; }
  static const net::PayloadTypeId kTypeId;
  std::uint64_t rid;
};

struct EsReply final : net::Payload {
  EsReply(std::uint64_t r, Timestamp t, Value v, bool hv)
      : rid(r), ts(t), value(v), has_value(hv) {}
  std::string_view type_name() const override { return "es.reply"; }
  net::PayloadTypeId type_id() const override { return kTypeId; }
  static const net::PayloadTypeId kTypeId;
  std::uint64_t rid;
  Timestamp ts;
  Value value;
  bool has_value;
};

struct EsWrite final : net::Payload {
  EsWrite(std::uint64_t w, Timestamp t, Value v) : wid(w), ts(t), value(v) {}
  std::string_view type_name() const override { return "es.write"; }
  net::PayloadTypeId type_id() const override { return kTypeId; }
  static const net::PayloadTypeId kTypeId;
  std::uint64_t wid;
  Timestamp ts;
  Value value;
};

struct EsAck final : net::Payload {
  explicit EsAck(std::uint64_t w) : wid(w) {}
  std::string_view type_name() const override { return "es.ack"; }
  net::PayloadTypeId type_id() const override { return kTypeId; }
  static const net::PayloadTypeId kTypeId;
  std::uint64_t wid;
};

struct EsJoin final : net::Payload {
  explicit EsJoin(std::uint64_t j) : jid(j) {}
  std::string_view type_name() const override { return "es.join"; }
  net::PayloadTypeId type_id() const override { return kTypeId; }
  static const net::PayloadTypeId kTypeId;
  std::uint64_t jid;
};

struct EsJoinReply final : net::Payload {
  EsJoinReply(std::uint64_t j, Timestamp t, Value v, bool hv)
      : jid(j), ts(t), value(v), has_value(hv) {}
  std::string_view type_name() const override { return "es.join_reply"; }
  net::PayloadTypeId type_id() const override { return kTypeId; }
  static const net::PayloadTypeId kTypeId;
  std::uint64_t jid;
  Timestamp ts;
  Value value;
  bool has_value;
};

// --- static ABD baseline ----------------------------------------------------

struct AbdReadQuery final : net::Payload {
  explicit AbdReadQuery(std::uint64_t r) : rid(r) {}
  std::string_view type_name() const override { return "abd.read_query"; }
  net::PayloadTypeId type_id() const override { return kTypeId; }
  static const net::PayloadTypeId kTypeId;
  std::uint64_t rid;
};

struct AbdReadReply final : net::Payload {
  AbdReadReply(std::uint64_t r, Timestamp t, Value v) : rid(r), ts(t), value(v) {}
  std::string_view type_name() const override { return "abd.read_reply"; }
  net::PayloadTypeId type_id() const override { return kTypeId; }
  static const net::PayloadTypeId kTypeId;
  std::uint64_t rid;
  Timestamp ts;
  Value value;
};

struct AbdWriteback final : net::Payload {
  AbdWriteback(std::uint64_t r, Timestamp t, Value v) : rid(r), ts(t), value(v) {}
  std::string_view type_name() const override { return "abd.writeback"; }
  net::PayloadTypeId type_id() const override { return kTypeId; }
  static const net::PayloadTypeId kTypeId;
  std::uint64_t rid;
  Timestamp ts;
  Value value;
};

struct AbdWritebackAck final : net::Payload {
  explicit AbdWritebackAck(std::uint64_t r) : rid(r) {}
  std::string_view type_name() const override { return "abd.writeback_ack"; }
  net::PayloadTypeId type_id() const override { return kTypeId; }
  static const net::PayloadTypeId kTypeId;
  std::uint64_t rid;
};

struct AbdUpdate final : net::Payload {
  AbdUpdate(std::uint64_t w, Timestamp t, Value v) : wid(w), ts(t), value(v) {}
  std::string_view type_name() const override { return "abd.update"; }
  net::PayloadTypeId type_id() const override { return kTypeId; }
  static const net::PayloadTypeId kTypeId;
  std::uint64_t wid;
  Timestamp ts;
  Value value;
};

struct AbdUpdateAck final : net::Payload {
  explicit AbdUpdateAck(std::uint64_t w) : wid(w) {}
  std::string_view type_name() const override { return "abd.update_ack"; }
  net::PayloadTypeId type_id() const override { return kTypeId; }
  static const net::PayloadTypeId kTypeId;
  std::uint64_t wid;
};

}  // namespace dynreg::msg
