// Static-membership ABD baseline (Attiya, Bar-Noy, Dolev): the motivating
// contrast of Section 1. The replica set is fixed at the initial n processes;
// joiners act as clients only. Under churn the replica set drains, and once
// fewer than a majority remain every quorum operation blocks forever.
//
// Reads perform the full two-phase protocol (query + write-back), so the
// register is atomic — zero new/old inversions, by construction.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "dynreg/register_node.h"
#include "dynreg/types.h"
#include "node/context.h"

namespace dynreg {

struct AbdConfig {
  /// Size of the fixed replica set (the initial membership).
  std::size_t n = 10;
  /// Value held by the replicas at the start.
  Value initial_value = 0;
};

class AbdRegisterNode final : public RegisterNode {
 public:
  AbdRegisterNode(sim::ProcessId id, node::Context& ctx, AbdConfig config, bool initial);

  void on_message(sim::ProcessId from, const net::Payload& payload) override;
  void on_departure() override;
  void read(const OpContext& op, ReadCompletion done) override;
  void write(const OpContext& op, Value v, WriteCompletion done) override;
  Value local_value() const override { return value_; }
  bool is_active() const override { return true; }  // no join protocol
  /// ABD's replica set is fixed at bootstrap: a crash-recovered process
  /// restarts under a fresh id and is a client, not a replica, whatever it
  /// salvaged from disk — so it reports a crash image (replicas only) but
  /// ignores restore(). Exactly the Section 1 motivation: static-membership
  /// quorums cannot readmit recovered state (docs/FAULTS.md).
  [[nodiscard]] DurableImage crash_image() const override {
    return replica_ ? DurableImage{value_, ts_, true} : DurableImage{};
  }

 private:
  struct PendingRead {
    ReadCompletion done;
    std::set<sim::ProcessId> repliers;
    Timestamp best_ts;
    Value best_value = kBottom;
    bool has_best = false;
    std::set<sim::ProcessId> wb_ackers;
    bool in_writeback = false;
  };
  struct PendingWrite {
    WriteCompletion done;
    std::set<sim::ProcessId> ackers;
  };

  [[nodiscard]] std::size_t majority() const { return config_.n / 2 + 1; }
  void apply(const Timestamp& ts, Value v);
  void start_writeback(std::uint64_t rid);
  void maybe_finish_read(std::uint64_t rid);
  void maybe_finish_write(std::uint64_t wid);

  node::Context& ctx_;
  AbdConfig config_;
  bool replica_;

  Value value_ = kBottom;
  Timestamp ts_;

  std::uint64_t next_rid_ = 0;
  std::uint64_t next_wid_ = 0;
  std::uint64_t sn_ = 0;

  std::map<std::uint64_t, PendingRead> reads_;
  std::map<std::uint64_t, PendingWrite> writes_;
};

}  // namespace dynreg
