#include "net/payload_type.h"

#include <cassert>
#include <deque>
#include <map>
#include <mutex>
#include <string>

namespace dynreg::net {

namespace {

// Meyers singleton so interning works during static initialization (the
// protocol message ids are interned by dynamic initializers in
// src/dynreg/messages.cpp).
struct Registry {
  std::mutex mu;
  std::deque<std::string> names;  // deque: stable addresses for the views
  std::map<std::string, PayloadTypeId, std::less<>> index;
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

PayloadTypeId PayloadTypeRegistry::intern(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.index.find(name);
  if (it != r.index.end()) return it->second;
  const auto id = static_cast<PayloadTypeId>(r.names.size());
  r.names.emplace_back(name);
  r.index.emplace(r.names.back(), id);
  return id;
}

std::string_view PayloadTypeRegistry::name(PayloadTypeId id) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  assert(id < r.names.size());
  return r.names[id];
}

std::size_t PayloadTypeRegistry::count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.names.size();
}

}  // namespace dynreg::net
