// Pluggable broadcast fan-out strategies (the "Disseminator seam", see
// docs/ARCHITECTURE.md).
//
// The paper's protocols broadcast constantly — every ES write is one process
// sending n-1 direct copies, so at n=1e5 a single hot writer pays O(n) sends
// per operation. A Disseminator decides how one logical broadcast turns into
// scheduled point-to-point copies:
//
//  - FlatDisseminator: the historical direct fan-out — the sender transmits
//    one copy to every recipient. Reproduces the built-in path draw for
//    draw, so selecting it keeps runs byte-identical.
//  - TreeDisseminator: deterministic delegated multicast over an implicit
//    complete k-ary tree. The sender pushes to its k children; each
//    recipient forwards to its own children. Latency accumulates along the
//    path (depth ~ log_k n hops instead of 1), which is the honest price of
//    reducing the root's send cost from O(n) to O(k).
//
// Determinism contract: the tree is a pure function of (sorted recipient
// list, fanout) — position 0 is the sender, position j >= 1 is
// recipients[j-1], the parent of position j is (j-1)/k. Per-edge verdicts
// are drawn in ascending position order through the one DelayModel override
// point, so record/replay and the audit hash see a stable draw sequence.
//
// Modeling idealizations (documented, deliberate):
//  - Delivery handlers observe the LOGICAL sender (the original
//    broadcaster), not the relaying parent: protocols reply to whoever
//    initiated the operation, and relays are transparent transport.
//  - A lost or dropped edge loses only that recipient's copy; its subtree
//    still forwards (as if the relay layer repaired the hop) with a nominal
//    1-tick hop cost. Loss therefore stays a per-copy Bernoulli event, as
//    in the flat model, rather than compounding down subtrees.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "net/payload.h"
#include "sim/event_queue.h"  // ProcessId / Duration

namespace dynreg::net {

class Network;

class Disseminator {
 public:
  virtual ~Disseminator() = default;

  /// Schedules one copy of `payload` from `from` towards every id in
  /// `recipients` (sorted ascending, never containing `from`). Runs at send
  /// time and only schedules future deliveries through
  /// Network::transmit_hop — it must not deliver synchronously.
  virtual void disseminate(Network& net, sim::ProcessId from,
                           const std::vector<sim::ProcessId>& recipients,
                           const PayloadPtr& payload) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Direct fan-out: the sender transmits to every recipient itself.
class FlatDisseminator final : public Disseminator {
 public:
  void disseminate(Network& net, sim::ProcessId from,
                   const std::vector<sim::ProcessId>& recipients,
                   const PayloadPtr& payload) override;
  [[nodiscard]] std::string_view name() const override { return "flat"; }
};

/// Delegated multicast over an implicit complete k-ary tree in recipient-id
/// order (BFS positions; see file comment for the determinism contract).
class TreeDisseminator final : public Disseminator {
 public:
  explicit TreeDisseminator(std::uint32_t fanout = 4)
      : fanout_(fanout < 1 ? 1 : fanout) {}

  void disseminate(Network& net, sim::ProcessId from,
                   const std::vector<sim::ProcessId>& recipients,
                   const PayloadPtr& payload) override;
  [[nodiscard]] std::string_view name() const override { return "tree"; }
  [[nodiscard]] std::uint32_t fanout() const { return fanout_; }

 private:
  std::uint32_t fanout_;
  std::vector<sim::Duration> arrivals_;  // scratch, reused across broadcasts
};

}  // namespace dynreg::net
