// Message payloads. Payloads are immutable and shared between the deliveries
// of one broadcast; receivers downcast after checking type_name().
#pragma once

#include <memory>
#include <string_view>
#include <utility>

namespace dynreg::net {

class Payload {
 public:
  virtual ~Payload() = default;

  /// Stable wire-type tag, e.g. "sync.write". Delay models and the metrics
  /// pipeline key on it, so tags are part of the protocol contract.
  virtual std::string_view type_name() const = 0;
};

using PayloadPtr = std::shared_ptr<const Payload>;

template <typename T, typename... Args>
PayloadPtr make_payload(Args&&... args) {
  return std::make_shared<T>(std::forward<Args>(args)...);
}

}  // namespace dynreg::net
