// Message payloads. Payloads are immutable and shared between the deliveries
// of one broadcast; receivers downcast after checking type_id()/type_name().
#pragma once

#include <memory>
#include <string_view>
#include <utility>

#include "net/payload_type.h"
#include "sim/arena.h"

namespace dynreg::net {

class Payload {
 public:
  virtual ~Payload() = default;

  /// Stable wire-type tag, e.g. "sync.write". Tags are part of the protocol
  /// contract (see payload_type.h); reports and persisted output use the
  /// string form.
  virtual std::string_view type_name() const = 0;

  /// Interned id of type_name() — what every per-message path (receiver
  /// dispatch, delay-model scripts, delivery metrics) keys on. The default
  /// re-interns on each call, which is correct for ad-hoc payloads in
  /// tests; real message types override it with a cached id
  /// (src/dynreg/messages.h) so the hot path never touches the registry.
  [[nodiscard]] virtual PayloadTypeId type_id() const { return PayloadTypeRegistry::intern(type_name()); }
};

using PayloadPtr = std::shared_ptr<const Payload>;

template <typename T, typename... Args>
PayloadPtr make_payload(Args&&... args) {
  return std::make_shared<T>(std::forward<Args>(args)...);
}

/// Arena-backed payload: object + shared_ptr control block live in one
/// bump-allocated span, recycled an epoch after the last reference drops.
/// Protocol nodes reach this through node::Context::make_payload.
template <typename T, typename... Args>
PayloadPtr make_payload_in(sim::Arena& arena, Args&&... args) {
  return std::allocate_shared<T>(sim::ArenaAllocator<T>(arena),
                                 std::forward<Args>(args)...);
}

}  // namespace dynreg::net
