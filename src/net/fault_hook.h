// FaultHook: the Network's verdict seam for injected link and message
// faults, sitting beside DelayModel.
//
// Two interception points, chosen so record/replay stream alignment is
// preserved by construction (docs/FAULTS.md):
//
//   link_cut   checked at send time BEFORE the delay model's verdict. A cut
//              copy consumes no Rng draw and produces no net-trace record,
//              so the recorded net stream lines up positionally with the
//              replayed one whether or not the cut fires.
//   transform  applied at delivery time, after departed-receiver filtering.
//              Returning a replacement payload substitutes what the handler
//              observes (Byzantine equivocation/forgery/corruption); the
//              delay schedule is untouched.
//
// The hook's own decisions must be deterministic: implementations draw only
// through the fault-decision replay layer (fault::DecisionSource), never the
// run's Rng directly.
#pragma once

#include "net/payload.h"
#include "sim/simulation.h"

namespace dynreg::net {

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// True = the copy on the physical edge (from -> to) is silently cut
  /// (counted as Stats::dropped_partition, never shown to the delay model).
  virtual bool link_cut(sim::Time now, sim::ProcessId from,
                        sim::ProcessId to) = 0;

  /// Called once per delivered copy. Returns the payload the handler should
  /// observe instead, or nullptr to deliver the original untouched. `from`
  /// is the logical sender the handler will see.
  virtual PayloadPtr transform(sim::Time now, sim::ProcessId from,
                               sim::ProcessId to, const PayloadPtr& payload) = 0;
};

}  // namespace dynreg::net
