// Point-to-point + broadcast message transport over the simulation clock.
//
// Delivery semantics mirror the paper's dynamic-system model:
//  - a broadcast reaches the processes attached at send time (a process that
//    joins later does not see earlier broadcasts);
//  - a message to a process that departed before delivery is dropped — this
//    is how churn manifests as lost replies;
//  - the sender does not receive its own broadcast (protocol nodes account
//    for their local state directly).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/delay_model.h"
#include "net/payload.h"
#include "sim/simulation.h"

namespace dynreg::net {

class Network {
 public:
  using Handler = std::function<void(sim::ProcessId from, const Payload& payload)>;

  Network(sim::Simulation& sim, std::unique_ptr<DelayModel> delays)
      : sim_(sim), delays_(std::move(delays)) {}

  /// Registers a process. Messages are delivered only to attached processes.
  void attach(sim::ProcessId id, Handler handler);

  /// Deregisters a process; in-flight messages towards it are dropped at
  /// their delivery time.
  void detach(sim::ProcessId id);

  bool attached(sim::ProcessId id) const { return handlers_.count(id) != 0; }

  void send(sim::ProcessId from, sim::ProcessId to, PayloadPtr payload);

  /// Sends one copy to every currently attached process except `from`.
  void broadcast(sim::ProcessId from, PayloadPtr payload);

  /// Fraction of message copies silently lost (omission faults). Loss is
  /// decided at send time with the simulation RNG.
  void set_loss_rate(double rate) { loss_rate_ = rate; }

  struct Stats {
    std::uint64_t sent = 0;            // copies handed to the delay model
    std::uint64_t delivered = 0;       // copies that reached a handler
    std::uint64_t dropped_departed = 0;  // receiver left before delivery
    std::uint64_t dropped_loss = 0;      // omission faults
  };
  const Stats& stats() const { return stats_; }

  /// Delivered copies per payload type tag.
  const std::map<std::string, std::uint64_t>& delivered_by_type() const {
    return delivered_by_type_;
  }

 private:
  void transmit(sim::ProcessId from, sim::ProcessId to, PayloadPtr payload);

  sim::Simulation& sim_;
  std::unique_ptr<DelayModel> delays_;
  std::map<sim::ProcessId, Handler> handlers_;  // ordered: deterministic fan-out
  double loss_rate_ = 0.0;
  Stats stats_;
  std::map<std::string, std::uint64_t> delivered_by_type_;
};

}  // namespace dynreg::net
