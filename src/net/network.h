// Point-to-point + broadcast message transport over the simulation clock.
//
// Delivery semantics mirror the paper's dynamic-system model:
//  - a broadcast reaches the processes attached at send time (a process that
//    joins later does not see earlier broadcasts);
//  - a message to a process that departed before delivery is dropped — this
//    is how churn manifests as lost replies;
//  - the sender does not receive its own broadcast (protocol nodes account
//    for their local state directly).
//
// Dispatch is O(1): processes live in a dense vector indexed by ProcessId
// (ids are assigned densely by the churn system), with an attached flag and
// a generation counter per slot instead of a tree-backed map. Broadcast
// fan-out walks the vector in id order — the same deterministic order the
// previous std::map gave. Per-delivery metrics are keyed on interned
// PayloadTypeId tags; the string-keyed view is materialized only on demand.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/delay_model.h"
#include "net/disseminator.h"
#include "net/fault_hook.h"
#include "net/payload.h"
#include "sim/inline_function.h"
#include "sim/simulation.h"

namespace dynreg::net {

class Network {
 public:
  /// Per-process delivery callback, invoked once per delivered copy — a hot
  /// path, hence InlineFunction (the attach lambdas capture one node
  /// pointer, far inside the inline budget; see sim/inline_function.h).
  using Handler = sim::InlineFunction<void(sim::ProcessId from, const Payload& payload)>;

  Network(sim::Simulation& sim, std::unique_ptr<DelayModel> delays)
      : sim_(sim), delays_(std::move(delays)) {}

  /// Registers a process. Messages are delivered only to attached processes.
  void attach(sim::ProcessId id, Handler handler);

  /// Deregisters a process; in-flight messages towards it are dropped at
  /// their delivery time.
  void detach(sim::ProcessId id);

  bool attached(sim::ProcessId id) const {
    return id < slots_.size() && slots_[id].attached;
  }

  /// Times the slot has been attached or detached; lets tests and debugging
  /// distinguish incarnations of a reused id. (Delivery deliberately does
  /// not check it: a message is delivered to whoever holds the id at
  /// delivery time, exactly as with the previous map-based dispatch.)
  std::uint32_t generation(sim::ProcessId id) const {
    return id < slots_.size() ? slots_[id].generation : 0;
  }

  void send(sim::ProcessId from, sim::ProcessId to, PayloadPtr payload);

  /// Sends one copy to every currently attached process except `from`.
  void broadcast(sim::ProcessId from, PayloadPtr payload);

  /// Installs a fan-out strategy for broadcast(). nullptr (the default)
  /// keeps the built-in direct loop — the historical, byte-identical path.
  void set_disseminator(std::unique_ptr<Disseminator> d) {
    disseminator_ = std::move(d);
  }
  [[nodiscard]] const Disseminator* disseminator() const {
    return disseminator_.get();
  }

  /// One hop of a (possibly relayed) broadcast: the per-copy fate as the
  /// disseminators see it.
  struct Hop {
    bool lost = false;
    sim::Duration arrival_offset = 0;  ///< vs now(); meaningful when !lost
  };

  /// Disseminator hook: draws the verdict for the physical edge
  /// (hop_from -> to) and, if the copy survives, schedules its delivery
  /// `base_delay + hop delay` ticks from now with `logical_from` as the
  /// sender the handler observes (relays are transparent transport;
  /// protocol replies must reach the original broadcaster).
  Hop transmit_hop(sim::ProcessId logical_from, sim::ProcessId hop_from,
                   sim::ProcessId to, const PayloadPtr& payload,
                   sim::Duration base_delay);

  /// Fraction of message copies silently lost (omission faults). Loss is
  /// decided at send time with the simulation RNG.
  void set_loss_rate(double rate) { loss_rate_ = rate; }

  /// Installs the injected-fault seam (partition cuts + Byzantine delivery
  /// transforms; see net/fault_hook.h). nullptr (the default) is the
  /// zero-overhead fault-free path. Non-owning: the hook must outlive the
  /// simulation's in-flight deliveries.
  void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }

  struct Stats {
    std::uint64_t sent = 0;            // copies handed to the delay model
    std::uint64_t delivered = 0;       // copies that reached a handler
    std::uint64_t dropped_departed = 0;  // receiver left before delivery
    std::uint64_t dropped_loss = 0;      // omission faults
    std::uint64_t dropped_partition = 0;  // copies cut by FaultHook::link_cut
    std::uint64_t transformed = 0;        // deliveries rewritten by the hook
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Delivered copies per payload type tag, materialized from the interned
  /// per-id counters. Report-time only; the hot path never builds strings.
  std::map<std::string, std::uint64_t> delivered_by_type() const;

 private:
  struct Slot {
    Handler handler;
    std::uint32_t generation = 0;
    bool attached = false;
  };

  void transmit(sim::ProcessId from, sim::ProcessId to, PayloadPtr payload);
  void schedule_delivery(sim::ProcessId from, sim::ProcessId to,
                         PayloadPtr payload, sim::Duration delay);

  sim::Simulation& sim_;
  std::unique_ptr<DelayModel> delays_;
  std::unique_ptr<Disseminator> disseminator_;  // nullptr = direct fan-out
  FaultHook* fault_hook_ = nullptr;             // nullptr = fault-free
  std::vector<sim::ProcessId> recipients_scratch_;
  std::vector<Slot> slots_;  // dense, indexed by ProcessId
  // Sorted live membership: broadcast fan-out walks this, so its cost
  // follows the active set, not the cumulative id space of a churning run.
  std::vector<sim::ProcessId> attached_ids_;
  double loss_rate_ = 0.0;
  Stats stats_;
  std::vector<std::uint64_t> delivered_by_type_id_;  // indexed by PayloadTypeId
};

}  // namespace dynreg::net
