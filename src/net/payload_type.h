// Interned payload type tags.
//
// Wire-type tags ("sync.write", "es.reply", ...) are part of the protocol
// contract: adversarial delay models match on them and the metrics pipeline
// reports per-type traffic. Keying those hot paths on strings meant a heap
// std::string construction plus a string-keyed map walk per delivered copy.
// The registry interns each tag once into a dense small-integer
// PayloadTypeId; everything per-delivery is keyed on the id (array index,
// integer compare) and the tag string is only rematerialized at report time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dynreg::net {

/// Dense interned tag index. Ids are assigned in interning order; the
/// protocol messages register theirs in a fixed sequence at startup
/// (src/dynreg/messages.cpp), so within a process an id always means the
/// same tag. Persist the string, never the id.
using PayloadTypeId = std::uint16_t;

class PayloadTypeRegistry {
 public:
  /// Returns the id for `name`, interning it on first sight. Thread-safe;
  /// interning the same tag again returns the same id. Intended to run once
  /// per payload type (cache the result in a static), not per message.
  static PayloadTypeId intern(std::string_view name);

  /// The tag string for an interned id. The view is backed by the registry
  /// and stays valid for the process lifetime. Precondition: id was
  /// returned by intern().
  static std::string_view name(PayloadTypeId id);

  /// Number of interned tags.
  static std::size_t count();
};

}  // namespace dynreg::net
