#include "net/disseminator.h"

#include "net/network.h"

namespace dynreg::net {

void FlatDisseminator::disseminate(Network& net, sim::ProcessId from,
                                   const std::vector<sim::ProcessId>& recipients,
                                   const PayloadPtr& payload) {
  // Identical draw order and hop shape to the built-in direct path.
  for (const sim::ProcessId to : recipients) {
    net.transmit_hop(from, from, to, payload, 0);
  }
}

void TreeDisseminator::disseminate(Network& net, sim::ProcessId from,
                                   const std::vector<sim::ProcessId>& recipients,
                                   const PayloadPtr& payload) {
  // Position 0 is the sender; position j >= 1 is recipients[j-1]; the parent
  // of position j is (j-1)/fanout. Edges are processed in ascending position
  // order — parents always precede children, so every parent's arrival time
  // is final before its out-edges draw their verdicts.
  const std::size_t n = recipients.size();
  arrivals_.assign(n + 1, 0);
  for (std::size_t j = 1; j <= n; ++j) {
    const std::size_t parent = (j - 1) / fanout_;
    const sim::ProcessId hop_from = parent == 0 ? from : recipients[parent - 1];
    const sim::ProcessId to = recipients[j - 1];
    const Network::Hop hop =
        net.transmit_hop(from, hop_from, to, payload, arrivals_[parent]);
    // A lost edge still anchors its subtree (see the idealization note in
    // the header): children inherit the would-be arrival, with a nominal
    // 1-tick hop when the verdict carried no delay.
    arrivals_[j] = hop.lost ? arrivals_[parent] + 1 : hop.arrival_offset;
  }
}

}  // namespace dynreg::net
