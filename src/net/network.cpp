#include "net/network.h"

#include <algorithm>
#include <cstdint>
#include <utility>

namespace dynreg::net {

void Network::attach(sim::ProcessId id, Handler handler) {
  if (id >= slots_.size()) slots_.resize(id + 1);
  Slot& slot = slots_[id];
  if (!slot.attached) {
    // The churn system hands out increasing ids, so this is almost always
    // an O(1) append; the insert keeps the membership sorted regardless.
    if (attached_ids_.empty() || attached_ids_.back() < id) {
      attached_ids_.push_back(id);
    } else {
      attached_ids_.insert(
          std::lower_bound(attached_ids_.begin(), attached_ids_.end(), id), id);
    }
  }
  slot.handler = std::move(handler);
  slot.attached = true;
  ++slot.generation;
}

void Network::detach(sim::ProcessId id) {
  if (id >= slots_.size()) return;
  Slot& slot = slots_[id];
  if (!slot.attached) return;
  slot.attached = false;
  slot.handler.reset();  // release the closure's resources eagerly
  ++slot.generation;
  attached_ids_.erase(
      std::lower_bound(attached_ids_.begin(), attached_ids_.end(), id));
}

void Network::send(sim::ProcessId from, sim::ProcessId to, PayloadPtr payload) {
  transmit(from, to, std::move(payload));
}

void Network::broadcast(sim::ProcessId from, PayloadPtr payload) {
  // A broadcast addresses the membership at send time. Dissemination only
  // schedules future deliveries (it never runs handlers synchronously), so
  // the membership cannot change under this walk and no recipient snapshot
  // is needed. Ascending id order matches the previous ordered-map fan-out,
  // which keeps the RNG draw sequence — and thus every run — bit-identical.
  if (disseminator_ != nullptr) {
    recipients_scratch_.clear();
    for (const sim::ProcessId to : attached_ids_) {
      if (to != from) recipients_scratch_.push_back(to);
    }
    disseminator_->disseminate(*this, from, recipients_scratch_, payload);
    return;
  }
  for (const sim::ProcessId to : attached_ids_) {
    if (to == from) continue;
    transmit(from, to, payload);
  }
}

Network::Hop Network::transmit_hop(sim::ProcessId logical_from,
                                   sim::ProcessId hop_from, sim::ProcessId to,
                                   const PayloadPtr& payload,
                                   sim::Duration base_delay) {
  // Partition cuts act on the physical edge and are checked BEFORE the delay
  // model: a cut copy consumes no Rng draw, so the recorded net stream stays
  // positionally aligned between faulted record and replay runs.
  if (fault_hook_ != nullptr && fault_hook_->link_cut(sim_.now(), hop_from, to)) {
    ++stats_.dropped_partition;
    return {true, 0};
  }
  ++stats_.sent;
  const DelayModel::Verdict verdict = delays_->verdict(
      sim_.now(), hop_from, to, *payload, loss_rate_, sim_.rng());
  if (verdict.lost) {
    ++stats_.dropped_loss;
    return {true, 0};
  }
  const sim::Duration d = verdict.delay < 1 ? 1 : verdict.delay;
  schedule_delivery(logical_from, to, payload, base_delay + d);
  return {false, base_delay + d};
}

void Network::transmit(sim::ProcessId from, sim::ProcessId to, PayloadPtr payload) {
  if (fault_hook_ != nullptr && fault_hook_->link_cut(sim_.now(), from, to)) {
    ++stats_.dropped_partition;  // cut before the verdict — see transmit_hop
    return;
  }
  ++stats_.sent;
  const DelayModel::Verdict verdict =
      delays_->verdict(sim_.now(), from, to, *payload, loss_rate_, sim_.rng());
  if (verdict.lost) {
    ++stats_.dropped_loss;
    return;
  }
  const sim::Duration d = verdict.delay < 1 ? 1 : verdict.delay;
  schedule_delivery(from, to, std::move(payload), d);
}

void Network::schedule_delivery(sim::ProcessId from, sim::ProcessId to,
                                PayloadPtr payload, sim::Duration delay) {
  auto deliver = [this, from, to, payload = std::move(payload)] {
    if (to >= slots_.size() || !slots_[to].attached) {
      ++stats_.dropped_departed;  // receiver departed while the copy was in flight
      return;
    }
    ++stats_.delivered;
    // Byzantine transforms rewrite the copy at delivery time; the hook is
    // reached through the captured `this`, so the closure stays inline.
    const Payload* observed = payload.get();
    PayloadPtr replacement;
    if (fault_hook_ != nullptr) {
      replacement = fault_hook_->transform(sim_.now(), from, to, payload);
      if (replacement != nullptr) {
        observed = replacement.get();
        ++stats_.transformed;
      }
    }
    const PayloadTypeId type = observed->type_id();
    if (type >= delivered_by_type_id_.size()) delivered_by_type_id_.resize(type + 1, 0);
    ++delivered_by_type_id_[type];
    // Audit builds fold each delivery's shape into the event-stream hash
    // (no-op otherwise) — a reordered or re-addressed message diverges the
    // digest even when the counters happen to agree.
    sim_.audit_note((std::uint64_t{from} << 40) | (std::uint64_t{to} << 16) | type);
    slots_[to].handler(from, *observed);
  };
  // The per-copy delivery closure is THE allocation-rate driver of a run;
  // it must never outgrow the scheduler's inline capture budget.
  static_assert(sizeof(deliver) <= sim::InlineTask::kInlineCapacity,
                "delivery closure must stay inline — see sim/inline_task.h");
  sim_.schedule_after(delay, std::move(deliver));
}

std::map<std::string, std::uint64_t> Network::delivered_by_type() const {
  std::map<std::string, std::uint64_t> by_name;
  for (std::size_t id = 0; id < delivered_by_type_id_.size(); ++id) {
    if (delivered_by_type_id_[id] == 0) continue;
    by_name.emplace(PayloadTypeRegistry::name(static_cast<PayloadTypeId>(id)),
                    delivered_by_type_id_[id]);
  }
  return by_name;
}

}  // namespace dynreg::net
