#include "net/network.h"

#include <utility>
#include <vector>

namespace dynreg::net {

void Network::attach(sim::ProcessId id, Handler handler) {
  handlers_[id] = std::move(handler);
}

void Network::detach(sim::ProcessId id) { handlers_.erase(id); }

void Network::send(sim::ProcessId from, sim::ProcessId to, PayloadPtr payload) {
  transmit(from, to, std::move(payload));
}

void Network::broadcast(sim::ProcessId from, PayloadPtr payload) {
  // Snapshot the recipient set: handlers_ may change while deliveries are in
  // flight, and a broadcast addresses the membership at send time.
  std::vector<sim::ProcessId> recipients;
  recipients.reserve(handlers_.size());
  for (const auto& [id, handler] : handlers_) {
    if (id != from) recipients.push_back(id);
  }
  for (const sim::ProcessId to : recipients) transmit(from, to, payload);
}

void Network::transmit(sim::ProcessId from, sim::ProcessId to, PayloadPtr payload) {
  ++stats_.sent;
  if (loss_rate_ > 0.0 && sim_.rng().bernoulli(loss_rate_)) {
    ++stats_.dropped_loss;
    return;
  }
  const sim::Duration d = delays_->delay(sim_.now(), from, to, *payload, sim_.rng());
  sim_.schedule_after(d, [this, from, to, payload = std::move(payload)] {
    const auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      ++stats_.dropped_departed;  // receiver departed while the copy was in flight
      return;
    }
    ++stats_.delivered;
    ++delivered_by_type_[std::string(payload->type_name())];
    it->second(from, *payload);
  });
}

}  // namespace dynreg::net
