// Message delay models. The network asks the model for each (sender,
// receiver, payload) copy individually, so a model can implement anything
// from a fixed latency to a per-message adversary.
#pragma once

#include <optional>

#include "net/payload.h"
#include "sim/inline_function.h"
#include "sim/rng.h"
#include "sim/simulation.h"

namespace dynreg::net {

class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Delivery delay for one message copy. Must be >= 1 so no delivery is
  /// instantaneous (the simulation processes it as a strictly later event).
  virtual sim::Duration delay(sim::Time now, sim::ProcessId from, sim::ProcessId to,
                              const Payload& payload, sim::Rng& rng) = 0;

  /// The full per-copy fate: lost to an omission fault, or delivered after
  /// `delay` ticks.
  struct Verdict {
    bool lost = false;
    sim::Duration delay = 1;  ///< meaningful only when !lost
  };

  /// One decision per transmit, combining the loss draw and the delay draw.
  /// The network routes every copy through here so that a single override
  /// point sees — and can record or replace — all of a run's network
  /// nondeterminism (see src/replay/). The default implementation preserves
  /// the historical rng draw order exactly: one bernoulli draw iff
  /// loss_rate > 0, then the model's delay draw only for surviving copies.
  virtual Verdict verdict(sim::Time now, sim::ProcessId from, sim::ProcessId to,
                          const Payload& payload, double loss_rate, sim::Rng& rng) {
    if (loss_rate > 0.0 && rng.bernoulli(loss_rate)) return {true, 0};
    return {false, delay(now, from, to, payload, rng)};
  }
};

/// Every message takes exactly `d` ticks.
class FixedDelay final : public DelayModel {
 public:
  explicit FixedDelay(sim::Duration d) : d_(d < 1 ? 1 : d) {}
  sim::Duration delay(sim::Time, sim::ProcessId, sim::ProcessId, const Payload&,
                      sim::Rng&) override {
    return d_;
  }

 private:
  sim::Duration d_;
};

/// Uniform random delay in [lo, hi] — the generic random-delay model.
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(sim::Duration lo, sim::Duration hi)
      : lo_(lo < 1 ? 1 : lo), hi_(hi < lo_ ? lo_ : hi) {}
  sim::Duration delay(sim::Time, sim::ProcessId, sim::ProcessId, const Payload&,
                      sim::Rng& rng) override {
    return rng.uniform_int(lo_, hi_);
  }

 private:
  sim::Duration lo_, hi_;
};

/// The paper's synchronous model: every delay is in [1, delta].
class SynchronousDelay final : public DelayModel {
 public:
  explicit SynchronousDelay(sim::Duration delta) : delta_(delta < 1 ? 1 : delta) {}
  sim::Duration delay(sim::Time, sim::ProcessId, sim::ProcessId, const Payload&,
                      sim::Rng& rng) override {
    return rng.uniform_int(1, delta_);
  }

 private:
  sim::Duration delta_;
};

/// Eventually synchronous model: arbitrary (bounded by pre_gst_max only for
/// simulation finiteness) before GST, then delta-bounded. Processes never
/// learn GST; only the network knows it.
class EventuallySynchronousDelay final : public DelayModel {
 public:
  EventuallySynchronousDelay(sim::Time gst, sim::Duration pre_gst_max, sim::Duration delta)
      : gst_(gst),
        pre_gst_max_(pre_gst_max < 1 ? 1 : pre_gst_max),
        delta_(delta < 1 ? 1 : delta) {}
  sim::Duration delay(sim::Time now, sim::ProcessId, sim::ProcessId, const Payload&,
                      sim::Rng& rng) override {
    if (now < gst_) return rng.uniform_int(1, pre_gst_max_);
    return rng.uniform_int(1, delta_);
  }

 private:
  sim::Time gst_;
  sim::Duration pre_gst_max_;
  sim::Duration delta_;
};

/// Scripted adversary: a user callback may pin the delay of any message; for
/// messages it declines (nullopt) the delay is uniform in [1, default_max].
/// This is how the impossibility and Figure 3 benches construct their bad
/// runs.
class AsyncAdversarialDelay final : public DelayModel {
 public:
  /// Consulted once per message copy — a hot path, hence InlineFunction
  /// (oversized adversary captures fall back to one heap block per *model*,
  /// never per message).
  using Script = sim::InlineFunction<std::optional<sim::Duration>(
      sim::Time now, sim::ProcessId from, sim::ProcessId to, const Payload& payload)>;

  AsyncAdversarialDelay(sim::Duration default_max, Script script)
      : default_max_(default_max < 1 ? 1 : default_max), script_(std::move(script)) {}

  sim::Duration delay(sim::Time now, sim::ProcessId from, sim::ProcessId to,
                      const Payload& payload, sim::Rng& rng) override {
    if (script_) {
      if (const auto pinned = script_(now, from, to, payload)) {
        return *pinned < 1 ? 1 : *pinned;
      }
    }
    return rng.uniform_int(1, default_max_);
  }

 private:
  sim::Duration default_max_;
  Script script_;
};

}  // namespace dynreg::net
