// FaultPlan: the declarative description of a deterministic fault campaign.
//
// A Plan is plain configuration — which fault classes are armed and how hot
// they run. It deliberately contains no behavior and no references so it can
// live inside harness::ExperimentConfig, travel through the canonical config
// encoding (trace format v3), and be compared/fingerprinted like any other
// experiment knob. The engine that executes a Plan is fault::Injector; the
// taxonomy and the safety/liveness envelopes each class probes are documented
// in docs/FAULTS.md.
#pragma once

#include <cstdint>

#include "sim/simulation.h"

namespace dynreg::fault {

/// What a crash-recovered process finds when it restarts.
enum class RestartState : std::uint8_t {
  /// Register state was volatile: the process restarts empty and must
  /// re-acquire a value through the protocol's join path.
  kVolatile,
  /// Register state was durable: the crash image (value, timestamp) survives
  /// and is re-applied as a *floor* on restart — the process still joins, so
  /// a stale disk image can never mask a newer value (see docs/FAULTS.md).
  kDurable,
};

/// Crash-stop and crash-recovery faults, injected through churn::System.
struct CrashPlan {
  /// Expected crashes per tick across the whole system (0 = disabled).
  double rate = 0.0;
  /// Probability a crash is crash-recovery (the process restarts) rather
  /// than crash-stop (it is gone for good).
  double recover_fraction = 1.0;
  /// Ticks between the crash and the restart of a recovering process.
  sim::Duration recovery_delay = 20;
  /// Whether the restarted process recovers its register state.
  RestartState restart = RestartState::kDurable;
};

/// Link-level partitions: a cut between two deterministic sides of the
/// membership, healing after a fixed duration. At most one partition is
/// active at a time; events that fire while one is active are skipped.
struct PartitionPlan {
  /// Expected partition events per tick (0 = disabled).
  double rate = 0.0;
  /// Ticks until the cut heals.
  sim::Duration duration = 100;
  /// Fraction of processes hashed onto the minority side. Side assignment
  /// is a pure hash of (per-event salt, process id), so processes that join
  /// mid-partition land on a deterministic side too.
  double fraction = 0.3;
  /// Symmetric cuts drop both directions. Asymmetric cuts drop only
  /// minority->majority traffic (a lossy uplink): broadcasts still reach
  /// everyone, replies from the minority are lost.
  bool asymmetric = false;
};

/// Byzantine message transforms, applied at delivery time to copies sent by
/// a deterministically chosen set of faulty processes.
struct ByzantinePlan {
  /// Fraction of processes behaving Byzantine (membership by pure hash of a
  /// once-drawn salt, so the faulty set is stable for the whole run).
  double fraction = 0.0;
  /// Per delivered copy from a faulty sender: probability the copy is
  /// transformed (0 = disabled).
  double transform_rate = 0.0;
  /// Which transforms the adversary may pick from (uniformly among the
  /// enabled ones). See fault::Injector for the exact semantics.
  bool equivocate = true;    ///< different values to different recipients
  bool stale_replay = true;  ///< re-send an earlier (ts, value) observation
  bool forge = true;         ///< fabricate a far-future timestamp + value
  bool corrupt = true;       ///< flip value bits, keep the timestamp
};

/// The full fault campaign for one run. Default-constructed = no faults
/// (every run_experiment call without an explicit plan behaves exactly as
/// before the fault layer existed).
struct Plan {
  CrashPlan crash;
  PartitionPlan partition;
  ByzantinePlan byzantine;
  /// Cadence of the injector's decision loop (crash/partition scheduling).
  sim::Duration tick = 1;

  [[nodiscard]] bool crash_enabled() const { return crash.rate > 0.0; }
  [[nodiscard]] bool partition_enabled() const { return partition.rate > 0.0; }
  [[nodiscard]] bool byzantine_enabled() const {
    return byzantine.fraction > 0.0 && byzantine.transform_rate > 0.0 &&
           (byzantine.equivocate || byzantine.stale_replay || byzantine.forge ||
            byzantine.corrupt);
  }
  [[nodiscard]] bool enabled() const {
    return crash_enabled() || partition_enabled() || byzantine_enabled();
  }
};

}  // namespace dynreg::fault
