// DecisionSource: the fault engine's one gateway to randomness, mirroring
// the replay hook layer (replay/hooks.h) the net/churn/pick streams use.
//
// Every fault the Injector injects — crash victim, recovery coin, partition
// salt, Byzantine transform choice — derives from raw 64-bit words drawn
// through this interface:
//
//   Live       draws the run's sim::Rng (a plain, unrecorded run);
//   Recording  wraps Live and appends each word to Trace::faults, so the
//              fault schedule records into DRTR traces (format v3);
//   Replay     consumes Trace::faults positionally and never touches the
//              run's Rng — during replay the net/churn/pick models do not
//              draw either, so a live fault draw would consume an Rng
//              subsequence that does not exist in the recording and diverge.
//
// This file is the ONLY place in src/fault/ allowed to touch sim::Rng; the
// dynreg-lint rule `fault-rng-bypass` enforces that (docs/ANALYSIS.md).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "replay/trace.h"
#include "sim/rng.h"

namespace dynreg::fault {

/// Seeds the fallback stream a ReplayDecisionSource switches to when the
/// recorded fault stream is exhausted (a perturbed schedule can reach more
/// decision points than the recording had).
inline constexpr std::uint64_t kFaultFallbackSalt = 0x66616c742d66616cULL;

/// Raw 64-bit fault-decision words plus the derived draws the Injector
/// actually consumes. The derivations are deliberately the same arithmetic
/// as sim::Rng's, so a Live source behaves exactly like drawing the Rng —
/// but every word flows through one overridable point.
class DecisionSource {
 public:
  virtual ~DecisionSource() = default;

  /// One raw decision word, stamped with the simulated time it was drawn.
  virtual std::uint64_t draw(sim::Time now) = 0;

  /// Uniform double in [0, 1) derived from one draw.
  double uniform01(sim::Time now) {
    return static_cast<double>(draw(now) >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Biased coin derived from one draw.
  bool bernoulli(sim::Time now, double p) {
    return p > 0.0 && uniform01(now) < p;
  }

  /// Uniform integer in [lo, hi] (inclusive) derived from one draw.
  std::uint64_t uniform_int(sim::Time now, std::uint64_t lo, std::uint64_t hi) {
    return lo + draw(now) % (hi - lo + 1);
  }
};

/// Draws the run's own Rng — the plain, unrecorded path.
class LiveDecisionSource final : public DecisionSource {
 public:
  // dynreg-lint: allow(fault-rng-bypass): the decision layer IS the sanctioned Rng consumer
  explicit LiveDecisionSource(sim::Rng& rng) : rng_(rng) {}

  std::uint64_t draw(sim::Time) override { return rng_.next(); }

 private:
  // dynreg-lint: allow(fault-rng-bypass): the decision layer IS the sanctioned Rng consumer
  sim::Rng& rng_;
};

/// Wraps another source (normally Live) and appends every word to the
/// trace's fault stream, in draw order.
class RecordingDecisionSource final : public DecisionSource {
 public:
  RecordingDecisionSource(std::unique_ptr<DecisionSource> inner,
                          replay::Trace& out)
      : inner_(std::move(inner)), out_(out) {}

  std::uint64_t draw(sim::Time now) override {
    const std::uint64_t v = inner_->draw(now);
    out_.faults.push_back(replay::FaultRecord{now, v});
    return v;
  }

 private:
  std::unique_ptr<DecisionSource> inner_;
  replay::Trace& out_;
};

/// Feeds recorded words back positionally; once the stream is exhausted
/// (perturbed schedules only), falls back to a trace-seeded Rng so the run
/// stays deterministic without ever touching the run's own Rng.
class ReplayDecisionSource final : public DecisionSource {
 public:
  explicit ReplayDecisionSource(std::shared_ptr<const replay::Trace> trace)
      : trace_(std::move(trace)),
        fallback_(replay::fold64(trace_->seed, kFaultFallbackSalt)) {}

  std::uint64_t draw(sim::Time) override {
    if (next_ < trace_->faults.size()) return trace_->faults[next_++].value;
    return fallback_.next();
  }

 private:
  std::shared_ptr<const replay::Trace> trace_;
  std::size_t next_ = 0;
  // dynreg-lint: allow(fault-rng-bypass): exhausted-stream fallback, seeded from the trace
  sim::Rng fallback_;
};

}  // namespace dynreg::fault
