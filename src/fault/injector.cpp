#include "fault/injector.h"

#include <algorithm>

#include "dynreg/messages.h"
#include "dynreg/register_node.h"
#include "net/payload.h"

namespace dynreg::fault {
namespace {

/// [0, 1) from a pure 64-bit hash word — same arithmetic as Rng::uniform01,
/// but over fold64 output, so side/membership tests cost no decision draw.
double hash01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

/// The (ts, value) view of a value-carrying payload. `carries` is false for
/// types the adversary leaves alone (acks, queries, inquiries) and for
/// replies that do not claim a value — transforming those is either a no-op
/// or would require fabricating protocol ids, which the delivery-time seam
/// deliberately does not do.
struct ValueView {
  Timestamp ts;
  Value value = kBottom;
  bool carries = false;
};

ValueView view_of(const net::Payload& p) {
  const net::PayloadTypeId type = p.type_id();
  if (type == msg::SyncWrite::kTypeId) {
    const auto& m = static_cast<const msg::SyncWrite&>(p);
    return {m.ts, m.value, true};
  }
  if (type == msg::SyncReply::kTypeId) {
    const auto& m = static_cast<const msg::SyncReply&>(p);
    return {m.ts, m.value, m.has_value};
  }
  if (type == msg::SyncRefresh::kTypeId) {
    const auto& m = static_cast<const msg::SyncRefresh&>(p);
    return {m.ts, m.value, true};
  }
  if (type == msg::EsWrite::kTypeId) {
    const auto& m = static_cast<const msg::EsWrite&>(p);
    return {m.ts, m.value, true};
  }
  if (type == msg::EsReply::kTypeId) {
    const auto& m = static_cast<const msg::EsReply&>(p);
    return {m.ts, m.value, m.has_value};
  }
  if (type == msg::EsJoinReply::kTypeId) {
    const auto& m = static_cast<const msg::EsJoinReply&>(p);
    return {m.ts, m.value, m.has_value};
  }
  if (type == msg::AbdReadReply::kTypeId) {
    const auto& m = static_cast<const msg::AbdReadReply&>(p);
    return {m.ts, m.value, true};
  }
  if (type == msg::AbdWriteback::kTypeId) {
    const auto& m = static_cast<const msg::AbdWriteback&>(p);
    return {m.ts, m.value, true};
  }
  if (type == msg::AbdUpdate::kTypeId) {
    const auto& m = static_cast<const msg::AbdUpdate&>(p);
    return {m.ts, m.value, true};
  }
  return {};
}

/// Rebuilds a payload of the same type and protocol ids with (ts, value)
/// replaced — the only fields the adversary rewrites.
net::PayloadPtr rebuild(sim::Arena& arena, const net::Payload& p,
                        const Timestamp& ts, Value value) {
  const net::PayloadTypeId type = p.type_id();
  if (type == msg::SyncWrite::kTypeId) {
    return net::make_payload_in<msg::SyncWrite>(arena, ts, value);
  }
  if (type == msg::SyncReply::kTypeId) {
    return net::make_payload_in<msg::SyncReply>(arena, ts, value, true);
  }
  if (type == msg::SyncRefresh::kTypeId) {
    return net::make_payload_in<msg::SyncRefresh>(arena, ts, value);
  }
  if (type == msg::EsWrite::kTypeId) {
    const auto& m = static_cast<const msg::EsWrite&>(p);
    return net::make_payload_in<msg::EsWrite>(arena, m.wid, ts, value);
  }
  if (type == msg::EsReply::kTypeId) {
    const auto& m = static_cast<const msg::EsReply&>(p);
    return net::make_payload_in<msg::EsReply>(arena, m.rid, ts, value, true);
  }
  if (type == msg::EsJoinReply::kTypeId) {
    const auto& m = static_cast<const msg::EsJoinReply&>(p);
    return net::make_payload_in<msg::EsJoinReply>(arena, m.jid, ts, value, true);
  }
  if (type == msg::AbdReadReply::kTypeId) {
    const auto& m = static_cast<const msg::AbdReadReply&>(p);
    return net::make_payload_in<msg::AbdReadReply>(arena, m.rid, ts, value);
  }
  if (type == msg::AbdWriteback::kTypeId) {
    const auto& m = static_cast<const msg::AbdWriteback&>(p);
    return net::make_payload_in<msg::AbdWriteback>(arena, m.rid, ts, value);
  }
  if (type == msg::AbdUpdate::kTypeId) {
    const auto& m = static_cast<const msg::AbdUpdate&>(p);
    return net::make_payload_in<msg::AbdUpdate>(arena, m.wid, ts, value);
  }
  return nullptr;  // unreachable: caller checked view_of().carries
}

}  // namespace

Injector::Injector(sim::Simulation& sim, churn::System& system,
                   net::Network& net, Plan plan, DecisionSource& decisions,
                   std::vector<sim::ProcessId> exempt)
    : sim_(sim),
      system_(system),
      net_(net),
      plan_(plan),
      decisions_(decisions),
      exempt_(std::move(exempt)) {}

void Injector::start() {
  net_.set_fault_hook(this);
  if (plan_.byzantine_enabled()) {
    // One salt fixes the faulty set for the whole run: membership is a pure
    // hash of (salt, id), so even processes spawned later land on a
    // deterministic honesty assignment.
    byz_salt_ = decisions_.draw(sim_.now());
  }
  if (plan_.crash_enabled() || plan_.partition_enabled()) {
    sim_.schedule_after(plan_.tick, [this] { tick(); });
  }
}

void Injector::tick() {
  const sim::Time now = sim_.now();
  // Decision-draw order within a tick is fixed (partition, then crash):
  // whether each draw happens depends only on the Plan and on deterministic
  // run state, so recording and replay stay positionally aligned.
  if (plan_.partition_enabled() && !partition_active_) {
    const double p = plan_.partition.rate * static_cast<double>(plan_.tick);
    if (decisions_.bernoulli(now, p)) {
      partition_salt_ = decisions_.draw(now);
      partition_active_ = true;
      ++stats_.partitions;
      sim_.schedule_after(plan_.partition.duration, [this] {
        partition_active_ = false;
        ++stats_.heals;
      });
    }
  }
  if (plan_.crash_enabled()) {
    crash_credit_ += plan_.crash.rate * static_cast<double>(plan_.tick);
    while (crash_credit_ >= 1.0) {
      crash_credit_ -= 1.0;
      crash_one(now);
    }
  }
  sim_.schedule_after(plan_.tick, [this] { tick(); });
}

void Injector::crash_one(sim::Time now) {
  // Victims come from the active membership minus the exempt set (the
  // designated writers, matching the churn system's own exemption). An empty
  // candidate set skips the event without drawing — membership is
  // deterministic, so record and replay skip identically.
  const std::vector<sim::ProcessId>& active = system_.active_ids();
  candidates_.clear();
  for (const sim::ProcessId id : active) {
    if (std::find(exempt_.begin(), exempt_.end(), id) == exempt_.end()) {
      candidates_.push_back(id);
    }
  }
  if (candidates_.empty()) return;

  const std::uint64_t idx =
      decisions_.uniform_int(now, 0, candidates_.size() - 1);
  const sim::ProcessId victim = candidates_[idx];
  const bool recover = decisions_.bernoulli(now, plan_.crash.recover_fraction);

  DurableImage image;  // empty = volatile restart
  if (recover && plan_.crash.restart == RestartState::kDurable) {
    if (const auto* node = dynamic_cast<RegisterNode*>(system_.find(victim))) {
      image = node->crash_image();
    }
  }

  // Direct leave()/spawn() calls bypass the ChurnObserver by design: injected
  // crashes re-occur from the replayed fault stream, so recording them into
  // the churn stream as well would double them on replay.
  system_.leave(victim);
  ++stats_.crashes;

  if (recover) {
    sim_.schedule_after(plan_.crash.recovery_delay, [this, image] {
      const sim::ProcessId id = system_.spawn();
      ++stats_.recoveries;
      if (image.has_value) {
        if (auto* node = dynamic_cast<RegisterNode*>(system_.find(id))) {
          node->restore(image);
        }
      }
    });
  }
}

bool Injector::on_minority_side(sim::ProcessId id) const {
  // Exempt processes (the designated writers) always land on the majority
  // side: a partition models replicas losing connectivity, not the writer
  // itself vanishing — the paper pins the writer inside the system the same
  // way. Without this, a cut that hashes the writer into the minority would
  // silence its broadcasts and conflate a partition fault with writer loss.
  if (std::find(exempt_.begin(), exempt_.end(), id) != exempt_.end()) {
    return false;
  }
  return hash01(replay::fold64(partition_salt_, id)) < plan_.partition.fraction;
}

bool Injector::is_byzantine(sim::ProcessId id) const {
  if (std::find(exempt_.begin(), exempt_.end(), id) != exempt_.end()) {
    return false;  // designated writers stay honest; the adversary is inside
  }
  return hash01(replay::fold64(byz_salt_, id)) < plan_.byzantine.fraction;
}

bool Injector::link_cut(sim::Time /*now*/, sim::ProcessId from,
                        sim::ProcessId to) {
  if (!partition_active_) return false;
  const bool a = on_minority_side(from);
  const bool b = on_minority_side(to);
  // Asymmetric = lossy uplink: only minority->majority traffic is cut, so
  // the majority's broadcasts still reach everyone but replies from the
  // minority are lost. Symmetric cuts drop both directions.
  if (plan_.partition.asymmetric) return a && !b;
  return a != b;
}

net::PayloadPtr Injector::transform(sim::Time now, sim::ProcessId from,
                                    sim::ProcessId to,
                                    const net::PayloadPtr& payload) {
  if (!plan_.byzantine_enabled()) return nullptr;
  const ValueView v = view_of(*payload);
  if (!v.carries) return nullptr;
  // Stash the earliest (ts, value) the wire carried — fuel for the
  // stale-replay transform. A pure observation: no decision draw.
  if (!have_stale_) {
    stale_ts_ = v.ts;
    stale_value_ = v.value;
    have_stale_ = true;
  }
  if (!is_byzantine(from)) return nullptr;
  if (!decisions_.bernoulli(now, plan_.byzantine.transform_rate)) {
    return nullptr;
  }
  return transform_copy(decisions_.draw(now), from, to, *payload);
}

net::PayloadPtr Injector::transform_copy(std::uint64_t word,
                                         sim::ProcessId from,
                                         sim::ProcessId to,
                                         const net::Payload& payload) {
  enum Kind : std::uint8_t { kEquivocate, kStale, kForge, kCorrupt };
  Kind kinds[4];
  std::size_t count = 0;
  if (plan_.byzantine.equivocate) kinds[count++] = kEquivocate;
  if (plan_.byzantine.stale_replay) kinds[count++] = kStale;
  if (plan_.byzantine.forge) kinds[count++] = kForge;
  if (plan_.byzantine.corrupt) kinds[count++] = kCorrupt;
  // byzantine_enabled() guaranteed count > 0. The low bits pick the kind;
  // the rest of the word parameterizes it.
  Kind kind = kinds[word % count];
  const std::uint64_t d = word >> 3;
  if (kind == kStale && !have_stale_) kind = kCorrupt;  // no stash yet

  const ValueView v = view_of(payload);
  Timestamp ts = v.ts;
  Value value = v.value;
  switch (kind) {
    case kEquivocate:
      // Same timestamp, recipient-dependent value: different recipients of
      // one broadcast observe different "copies" of the same write.
      value = v.value + 1 + static_cast<Value>(to % 7);
      break;
    case kStale:
      // Re-send the oldest observation the wire carried, as if the sender
      // had never learned anything since.
      ts = stale_ts_;
      value = stale_value_;
      break;
    case kForge:
      // Fabricated far-future timestamp claiming authorship: sn jumps far
      // enough (>= +100) that the ES ts_envelope guard (default 64) can
      // tell it from benign lag, which stays close to the frontier.
      ts = Timestamp{v.ts.sn + 100 + (d % 924), from};
      value = v.value ^ 0x5a5a5a5;
      break;
    case kCorrupt:
      // Bit corruption of the value alone; the timestamp stays plausible.
      value = v.value ^ static_cast<Value>(1 + (d % 255));
      break;
  }
  return rebuild(sim_.arena(), payload, ts, value);
}

}  // namespace dynreg::fault
