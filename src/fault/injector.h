// The fault engine: executes a fault::Plan against a live run, drawing every
// decision through a fault::DecisionSource so the whole campaign records into
// DRTR traces (format v3) and replays byte-identically.
//
// Injection seams (docs/FAULTS.md):
//  - crash-stop / crash-recovery: System::leave() + System::spawn() driven by
//    a credit-accumulation tick loop (mirroring churn_step's arithmetic);
//    durable restarts snapshot RegisterNode::crash_image() at crash time and
//    restore() it on the respawned process as an apply-max floor. Injected
//    crashes deliberately bypass the ChurnObserver: they re-occur
//    deterministically from the replayed fault stream, so recording them into
//    the churn stream would double them on replay.
//  - partitions: the Injector is the Network's FaultHook; link_cut() consults
//    a pure hash of (per-event salt, process id) so side assignment is
//    deterministic — including for processes that join mid-partition — and
//    costs no draw per message.
//  - Byzantine transforms: FaultHook::transform() rewrites delivered copies
//    from a salted-hash-chosen faulty sender set (equivocation, stale replay,
//    forged timestamps, value corruption), with per-copy decisions drawn
//    through the DecisionSource at delivery time.
#pragma once

#include <cstdint>
#include <vector>

#include "churn/system.h"
#include "dynreg/types.h"
#include "fault/decision.h"
#include "fault/plan.h"
#include "net/fault_hook.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace dynreg::fault {

class Injector final : public net::FaultHook {
 public:
  /// `exempt` lists processes never picked as crash victims (the designated
  /// writers, matching the churn system's own exemption). All references are
  /// non-owning and must outlive the run.
  Injector(sim::Simulation& sim, churn::System& system, net::Network& net,
           Plan plan, DecisionSource& decisions,
           std::vector<sim::ProcessId> exempt);

  /// Arms the campaign: draws the Byzantine membership salt (one decision)
  /// and schedules the first tick. Call after System::bootstrap(); also
  /// installs itself as the network's fault hook.
  void start();

  // net::FaultHook
  bool link_cut(sim::Time now, sim::ProcessId from, sim::ProcessId to) override;
  net::PayloadPtr transform(sim::Time now, sim::ProcessId from,
                            sim::ProcessId to,
                            const net::PayloadPtr& payload) override;

  struct Stats {
    std::uint64_t crashes = 0;     // crash-stop + crash-recovery events
    std::uint64_t recoveries = 0;  // processes respawned after a crash
    std::uint64_t partitions = 0;  // partition events started
    std::uint64_t heals = 0;       // partitions healed before the horizon
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void tick();
  void crash_one(sim::Time now);
  [[nodiscard]] bool on_minority_side(sim::ProcessId id) const;
  [[nodiscard]] bool is_byzantine(sim::ProcessId id) const;
  /// The Byzantine rewrite for one delivered copy; nullptr = leave it alone
  /// (unsupported payload type, or the stale stash is still empty).
  net::PayloadPtr transform_copy(std::uint64_t word, sim::ProcessId from,
                                 sim::ProcessId to,
                                 const net::Payload& payload);

  sim::Simulation& sim_;
  churn::System& system_;
  net::Network& net_;
  Plan plan_;
  DecisionSource& decisions_;
  std::vector<sim::ProcessId> exempt_;
  std::vector<sim::ProcessId> candidates_;  // crash-victim scratch

  double crash_credit_ = 0.0;
  bool partition_active_ = false;
  std::uint64_t partition_salt_ = 0;
  std::uint64_t byz_salt_ = 0;

  // Earliest (ts, value) observation, fuel for the stale-replay transform.
  Timestamp stale_ts_;
  Value stale_value_ = kBottom;
  bool have_stale_ = false;

  Stats stats_;
};

}  // namespace dynreg::fault
