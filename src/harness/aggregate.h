// Cross-seed aggregation of MetricsReports.
//
// A sweep point runs the same configuration under many seeds; this module
// condenses those per-seed MetricsReports into distribution summaries
// (mean/stddev/min/max/p50/p99) without losing the signals that must not be
// averaged: safety violations are reported as a total across seeds and as
// the worst single seed, because "0.3 mean violations" hides the one seed
// where the register broke.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "harness/metrics.h"

namespace dynreg::harness {

/// Distribution summary of one metric over the seeds of a sweep point.
struct Aggregate {
  double mean = 0.0;
  /// Sample standard deviation (n-1 denominator); 0 when fewer than 2 samples.
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Percentiles by the nearest-rank convention used for per-run latency
  /// percentiles: sorted[min(n-1, floor(p*n))].
  double p50 = 0.0;
  double p99 = 0.0;
};

/// Summarizes `samples` (order irrelevant). An empty vector yields all zeros.
Aggregate aggregate(std::vector<double> samples);

/// Nearest-rank percentile over non-empty sorted samples:
/// sorted[min(n-1, floor(p*n))] — the one convention used everywhere
/// (per-run latency percentiles and cross-seed Aggregate percentiles).
double percentile(const std::vector<double>& sorted, double p);

/// Everything dynreg_exp reports per sweep point: one Aggregate per scalar
/// metric, plus the non-averageable safety counters.
struct AggregatedMetrics {
  std::size_t seeds = 0;

  Aggregate read_completion;
  Aggregate write_completion;
  Aggregate join_completion;
  Aggregate read_latency;       // over per-seed means
  Aggregate read_latency_p50;   // over per-seed p50s
  Aggregate read_latency_p99;   // over per-seed p99s
  Aggregate write_latency;
  Aggregate write_latency_p50;
  Aggregate write_latency_p99;
  Aggregate join_latency;
  Aggregate violation_rate;
  Aggregate reads_of_bottom;
  Aggregate min_active_3delta;
  /// Per-seed failed attempts by typed outcome (reads + writes combined).
  Aggregate ops_dropped;
  Aggregate ops_timed_out;
  Aggregate op_retries;

  /// Regularity violations summed over every seed. Any nonzero value means
  /// some run's register was unsafe, however good the mean rate looks.
  std::uint64_t violations_total = 0;
  /// Worst single seed — the adversary's best draw.
  std::uint64_t violations_max_seed = 0;
  /// New/old inversions, same non-averaged treatment.
  std::uint64_t inversions_total = 0;
  std::uint64_t inversions_max_seed = 0;
  /// Fraction of seeds in which |A(t)| > n/2 held throughout the run.
  double majority_active_fraction = 0.0;
};

/// Aggregates the per-seed reports of one sweep point.
AggregatedMetrics aggregate_metrics(const std::vector<MetricsReport>& runs);

}  // namespace dynreg::harness
