// The pluggable workload engine: how an experiment generates read/write
// traffic against the deployed register. Every generator issues operations
// through the client layer (client::Client), which owns history recording,
// latency capture, and outcome accounting — generators only decide *when*
// and *from where* operations are issued.
//
// Three engines ship:
//   kOpenLoop    the classic driver: a read from a uniformly random active
//                process every read_interval, independent of completions.
//                Byte-identical to the pre-client workload driver for the
//                default configuration (the determinism gate pins this).
//   kClosedLoop  `clients` ClientSessions: each issues one read at a time
//                against a random active process, waits for it to resolve,
//                thinks for think_time, repeats. Session ops serialize per
//                target process, so latency grows with client count.
//   kBursty      open-loop reads gated by an on/off phase square wave
//                (burst_on ticks of traffic, burst_off ticks of silence).
//
// All three keep the paper's designated-writer stream (writers are pinned
// processes inside the system, not clients): writes are issued open-loop
// every write_interval, writers kept (mostly) sequential.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "client/client.h"
#include "harness/workload_config.h"
#include "sim/simulation.h"

namespace dynreg::workload {

/// Everything a generator drives: the run's simulation, system, and client,
/// plus the traffic description and run horizon. References must outlive
/// the generator.
struct Env {
  sim::Simulation& sim;
  churn::System& system;
  client::Client& client;
  Config config;
  sim::Time horizon = 0;
  /// Designated writers (pinned). Empty when writes are disabled.
  std::vector<sim::ProcessId> writers;
};

/// A workload engine. start() schedules the first events; traffic then
/// sustains itself through the simulation until the horizon.
class Generator {
 public:
  explicit Generator(Env env) : env_(std::move(env)) {}
  virtual ~Generator() = default;

  Generator(const Generator&) = delete;
  Generator& operator=(const Generator&) = delete;

  /// Call once, after churn::System::bootstrap and before the run.
  virtual void start() = 0;

 protected:
  /// One open-loop read from a uniformly random active process (exact port
  /// of the classic driver).
  void issue_read();

  /// The shared open-loop read tick: a read every read_interval whenever
  /// read_tick_allowed() holds (always, by default; the bursty engine gates
  /// it by phase). One loop, so open-loop and bursty cannot drift apart.
  void schedule_read_tick();

  /// Whether the read tick firing at `now` should issue its read.
  virtual bool read_tick_allowed(sim::Time now) const;

  /// The per-op client policy (deadline + retry) the config describes.
  /// Default config fields build a default OpOptions — byte-identical to
  /// the historical no-options issue path.
  [[nodiscard]] client::OpOptions op_options() const;

  /// The shared designated-writer stream: writes every write_interval,
  /// each writer kept (mostly) sequential — a tick is skipped while a write
  /// is outstanding unless it has been stuck for two intervals, so a
  /// blocked system shows up as a collapsing completion rate rather than a
  /// frozen issue count.
  void schedule_write_tick();

  Env env_;

 private:
  void issue_write(sim::ProcessId writer);

  std::map<sim::ProcessId, std::vector<sim::Time>> outstanding_writes_;
};

/// Builds the engine `env.config.kind` names.
std::unique_ptr<Generator> make_generator(Env env);

}  // namespace dynreg::workload
