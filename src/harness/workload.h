// Workload configuration: the open-loop read/write traffic an experiment
// applies to the deployed register.
#pragma once

#include <cstddef>

#include "sim/simulation.h"

namespace dynreg::workload {

/// Who writes.
enum class WriterMode {
  kSingle,      ///< The paper's model: one designated writer (process 0).
  kConcurrent,  ///< Section 7 extension: several simultaneous writers.
};

/// Open-loop traffic description. Writers are pinned (exempt from churn,
/// as in the paper where the writer stays in the system) unless writes are
/// disabled — then nobody is exempt and the register value must survive
/// churn on its own.
struct Config {
  /// A read is issued from a uniformly random active process every interval.
  sim::Duration read_interval = 10;
  /// Writes are issued every interval (by every writer, in concurrent mode).
  sim::Duration write_interval = 50;
  bool writes_enabled = true;
  WriterMode writer_mode = WriterMode::kSingle;
  /// Number of designated writers in concurrent mode (ids 0..k-1).
  std::size_t concurrent_writers = 2;
};

}  // namespace dynreg::workload
