// Shared run-assembly builders: the pieces of run_experiment that both the
// single-register pipeline (harness/experiment.cpp) and the sharded
// pipeline (shard/sharded_run.cpp) assemble per world — delay model, node
// factory, designated writers. Kept in one place so the two pipelines can
// never drift in how a config maps to protocol parameters.
#pragma once

#include <memory>
#include <vector>

#include "churn/system.h"
#include "dynreg/types.h"
#include "harness/experiment.h"
#include "net/delay_model.h"

namespace dynreg::harness {

/// Every register starts holding 0 (the paper's well-defined initial value).
inline constexpr Value kInitialValue = 0;

/// The network delay model `cfg.timing` names.
std::unique_ptr<net::DelayModel> build_delays(const ExperimentConfig& cfg);

/// The node factory for `cfg.protocol`, parameterized on the membership
/// group's size `n` (== cfg.n for the single-register path; the shard's
/// population slice for sharded runs — quorum sizes and the ES retransmit
/// depth are per-group quantities).
churn::System::NodeFactory build_node_factory(const ExperimentConfig& cfg,
                                              std::size_t n);

/// Designated writers (pinned: exempt from churn, as in the paper where the
/// writer stays in the system). Empty when writes are disabled — then nobody
/// is exempt and the register value must survive on its own.
std::vector<sim::ProcessId> designated_writers(const ExperimentConfig& cfg);

}  // namespace dynreg::harness
