#include "harness/experiment.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "consistency/history.h"
#include "dynreg/abd_register.h"
#include "dynreg/es_register.h"
#include "dynreg/register_node.h"
#include "dynreg/sync_register.h"
#include "net/delay_model.h"
#include "net/network.h"

namespace dynreg::harness {

namespace {

constexpr Value kInitialValue = 0;

std::unique_ptr<net::DelayModel> build_delays(const ExperimentConfig& cfg) {
  if (cfg.timing == Timing::kEventuallySynchronous) {
    return std::make_unique<net::EventuallySynchronousDelay>(cfg.gst, cfg.pre_gst_max,
                                                             cfg.delta);
  }
  return std::make_unique<net::SynchronousDelay>(cfg.delta);
}

churn::System::NodeFactory build_factory(const ExperimentConfig& cfg) {
  switch (cfg.protocol) {
    case Protocol::kSync:
    case Protocol::kSyncNoWait: {
      SyncConfig sc;
      sc.delta = cfg.delta;
      sc.wait_before_inquiry = cfg.protocol != Protocol::kSyncNoWait;
      sc.delta_pp = cfg.sync_delta_pp;
      sc.refresh_interval = cfg.sync_refresh_interval;
      sc.initial_value = kInitialValue;
      return [sc](sim::ProcessId id, node::Context& ctx, bool initial) {
        return std::make_unique<SyncRegisterNode>(id, ctx, sc, initial);
      };
    }
    case Protocol::kEventuallySync: {
      EsConfig ec;
      ec.n = cfg.n;
      ec.retransmit_interval = std::max<sim::Duration>(1, 2 * cfg.delta);
      ec.atomic_reads = cfg.es_atomic_reads;
      ec.initial_value = kInitialValue;
      return [ec](sim::ProcessId id, node::Context& ctx, bool initial) {
        return std::make_unique<EsRegisterNode>(id, ctx, ec, initial);
      };
    }
    case Protocol::kAbd: {
      AbdConfig ac;
      ac.n = cfg.n;
      ac.initial_value = kInitialValue;
      return [ac](sim::ProcessId id, node::Context& ctx, bool initial) {
        return std::make_unique<AbdRegisterNode>(id, ctx, ac, initial);
      };
    }
  }
  return nullptr;
}

/// Designated writers (pinned: exempt from churn, as in the paper where the
/// writer stays in the system). Empty when writes are disabled — then nobody
/// is exempt and the register value must survive on its own.
std::vector<sim::ProcessId> designated_writers(const ExperimentConfig& cfg) {
  std::vector<sim::ProcessId> writers;
  if (!cfg.workload.writes_enabled) return writers;
  const std::size_t k = cfg.workload.writer_mode == workload::WriterMode::kConcurrent
                            ? std::max<std::size_t>(1, cfg.workload.concurrent_writers)
                            : 1;
  for (std::size_t w = 0; w < k && w < cfg.n; ++w) {
    writers.push_back(static_cast<sim::ProcessId>(w));
  }
  return writers;
}

/// Open-loop traffic generator + operation bookkeeping.
class Driver {
 public:
  Driver(const ExperimentConfig& cfg, sim::Simulation& sim, churn::System& system,
         consistency::History& history)
      : cfg_(cfg),
        sim_(sim),
        system_(system),
        history_(history),
        writers_(designated_writers(cfg)) {}

  void start() {
    schedule_read_tick();
    if (!writers_.empty()) schedule_write_tick();
  }

  // Results, harvested after the run.
  MetricsReport& report() { return report_; }
  std::vector<double>& read_latencies() { return read_latencies_; }
  double write_latency_total() const { return write_latency_total_; }

 private:
  void schedule_read_tick() {
    const sim::Time next = sim_.now() + cfg_.workload.read_interval;
    if (next >= cfg_.duration) return;
    sim_.schedule_at(next, [this] {
      issue_read();
      schedule_read_tick();
    });
  }

  void schedule_write_tick() {
    const sim::Time next = sim_.now() + cfg_.workload.write_interval;
    if (next >= cfg_.duration) return;
    sim_.schedule_at(next, [this] {
      for (const sim::ProcessId w : writers_) issue_write(w);
      schedule_write_tick();
    });
  }

  void issue_read() {
    const auto actives = system_.active_ids();
    if (actives.empty()) return;
    const sim::ProcessId reader =
        actives[static_cast<std::size_t>(sim_.rng().uniform_int(0, actives.size() - 1))];
    auto* reg = dynamic_cast<RegisterNode*>(system_.find(reader));
    if (reg == nullptr) return;

    ++report_.reads_issued;
    const sim::Time begun = sim_.now();
    const auto op = history_.begin_read(reader, begun);
    reg->read([this, op, begun](Value v) {
      history_.complete_read(op, sim_.now(), v);
      ++report_.reads_completed;
      if (v == kBottom) ++report_.reads_of_bottom;
      read_latencies_.push_back(static_cast<double>(sim_.now() - begun));
    });
  }

  void issue_write(sim::ProcessId writer) {
    // Keep each writer (mostly) sequential: skip the tick while a write is
    // outstanding, unless it has been stuck for two intervals — then keep
    // issuing so a blocked system shows up as a collapsing completion rate
    // rather than a frozen issue count.
    auto& outstanding = outstanding_writes_[writer];
    if (!outstanding.empty() &&
        sim_.now() - outstanding.front() < 2 * cfg_.workload.write_interval) {
      return;
    }
    auto* reg = dynamic_cast<RegisterNode*>(system_.find(writer));
    if (reg == nullptr) return;

    const Value v = next_value_++;
    ++report_.writes_issued;
    const sim::Time begun = sim_.now();
    outstanding.push_back(begun);
    const auto op = history_.begin_write(writer, begun, v);
    reg->write(v, [this, op, begun, writer] {
      history_.complete_write(op, sim_.now());
      ++report_.writes_completed;
      write_latency_total_ += static_cast<double>(sim_.now() - begun);
      auto& pending = outstanding_writes_[writer];
      pending.erase(std::find(pending.begin(), pending.end(), begun));
    });
  }

  const ExperimentConfig& cfg_;
  sim::Simulation& sim_;
  churn::System& system_;
  consistency::History& history_;

  std::vector<sim::ProcessId> writers_;
  std::map<sim::ProcessId, std::vector<sim::Time>> outstanding_writes_;
  Value next_value_ = 1;

  MetricsReport report_;
  std::vector<double> read_latencies_;
  double write_latency_total_ = 0.0;
};

}  // namespace

MetricsReport run_experiment(const ExperimentConfig& cfg) {
  sim::Simulation sim(cfg.seed);
  net::Network net(sim, build_delays(cfg));
  net.set_loss_rate(cfg.loss_rate);

  consistency::History history(kInitialValue);

  churn::SystemConfig sys_cfg;
  sys_cfg.initial_size = cfg.n;
  sys_cfg.leave_policy = cfg.leave_policy;
  sys_cfg.exempt = designated_writers(cfg);

  std::unique_ptr<churn::ChurnModel> churn_model;
  if (cfg.churn_kind == ChurnKind::kNone || cfg.churn_rate <= 0.0) {
    churn_model = std::make_unique<churn::NoChurn>();
  } else {
    churn_model = std::make_unique<churn::ConstantChurn>(cfg.churn_rate);
  }

  churn::System system(sim, net, sys_cfg, std::move(churn_model), build_factory(cfg));
  Driver driver(cfg, sim, system, history);

  system.bootstrap();
  driver.start();
  sim.run_until(cfg.duration);

  MetricsReport report = std::move(driver.report());
  report.joins_started = system.joins_started();
  report.joins_completed = system.joins_completed();
  report.joins_abandoned = system.joins_abandoned();
  report.join_latency_mean =
      system.joins_completed() == 0
          ? 0.0
          : static_cast<double>(system.join_latency_total()) /
                static_cast<double>(system.joins_completed());

  auto& lat = driver.read_latencies();
  if (!lat.empty()) {
    double total = 0.0;
    for (const double l : lat) total += l;
    report.read_latency_mean = total / static_cast<double>(lat.size());
    std::sort(lat.begin(), lat.end());
    const std::size_t idx =
        std::min(lat.size() - 1,
                 static_cast<std::size_t>(0.99 * static_cast<double>(lat.size())));
    report.read_latency_p99 = lat[idx];
  }
  report.write_latency_mean =
      report.writes_completed == 0
          ? 0.0
          : driver.write_latency_total() / static_cast<double>(report.writes_completed);

  const auto& chron = system.chronicle();
  report.majority_active_always = chron.min_active_at(cfg.duration) * 2 > cfg.n;
  report.min_active_3delta = static_cast<double>(
      chron.min_active_through_window(3 * cfg.delta, cfg.duration));

  report.msgs_by_type = net.delivered_by_type();
  report.regularity = consistency::RegularityChecker{}.check(history);
  report.atomicity = consistency::AtomicityChecker{}.check(history);
  return report;
}

}  // namespace dynreg::harness
