#include "harness/experiment.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "client/client.h"
#include "consistency/history.h"
#include "harness/aggregate.h"
#include "dynreg/abd_register.h"
#include "dynreg/es_register.h"
#include "dynreg/register_node.h"
#include "dynreg/sync_register.h"
#include "fault/decision.h"
#include "fault/injector.h"
#include "harness/builders.h"
#include "harness/workload.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "replay/hooks.h"
#include "replay/recorder.h"
#include "replay/replayer.h"
#include "replay/session.h"
#include "replay/trace_io.h"
#include "shard/sharded_run.h"

namespace dynreg::harness {

std::unique_ptr<net::DelayModel> build_delays(const ExperimentConfig& cfg) {
  if (cfg.timing == Timing::kEventuallySynchronous) {
    return std::make_unique<net::EventuallySynchronousDelay>(cfg.gst, cfg.pre_gst_max,
                                                             cfg.delta);
  }
  return std::make_unique<net::SynchronousDelay>(cfg.delta);
}

churn::System::NodeFactory build_node_factory(const ExperimentConfig& cfg,
                                              std::size_t n) {
  switch (cfg.protocol) {
    case Protocol::kSync:
    case Protocol::kSyncNoWait: {
      SyncConfig sc;
      sc.delta = cfg.delta;
      sc.wait_before_inquiry = cfg.protocol != Protocol::kSyncNoWait;
      sc.delta_pp = cfg.sync_delta_pp;
      sc.refresh_interval = cfg.sync_refresh_interval;
      sc.initial_value = kInitialValue;
      return [sc](sim::ProcessId id, node::Context& ctx, bool initial) {
        return std::make_unique<SyncRegisterNode>(id, ctx, sc, initial);
      };
    }
    case Protocol::kEventuallySync: {
      EsConfig ec;
      ec.n = n;
      // Retransmit cadence scales with the dissemination depth: a flat
      // broadcast completes a round trip within ~2*delta, but over a fanout
      // tree a copy crosses ceil(log_f(n)) hops each way, so the fixed
      // 2*delta timer fired several extra rebroadcast rounds while the
      // deeper quorum was still forming (the E15 message-count gap —
      // docs/PERFORMANCE.md). Flat keeps the historical value byte-for-byte
      // (depth 1 => (1+1)*delta == 2*delta).
      std::size_t depth = 1;
      if (cfg.dissemination == Dissemination::kTree && n > 1) {
        const std::size_t fanout = std::max<std::size_t>(1, cfg.tree_fanout);
        std::size_t reach = 1;  // processes within `depth` hops of the root
        std::size_t level = 1;
        while (reach < n) {
          level = fanout == 1 ? 1 : level * fanout;
          reach += level;
          if (reach < n) ++depth;
        }
      }
      ec.retransmit_interval =
          std::max<sim::Duration>(1, static_cast<sim::Duration>(depth + 1) * cfg.delta);
      ec.atomic_reads = cfg.es_atomic_reads;
      ec.retransmit_backoff = cfg.es_retransmit_backoff;
      ec.validate_replies = cfg.es_validate_replies;
      ec.initial_value = kInitialValue;
      return [ec](sim::ProcessId id, node::Context& ctx, bool initial) {
        return std::make_unique<EsRegisterNode>(id, ctx, ec, initial);
      };
    }
    case Protocol::kAbd: {
      AbdConfig ac;
      ac.n = n;
      ac.initial_value = kInitialValue;
      return [ac](sim::ProcessId id, node::Context& ctx, bool initial) {
        return std::make_unique<AbdRegisterNode>(id, ctx, ac, initial);
      };
    }
  }
  return nullptr;
}

std::vector<sim::ProcessId> designated_writers(const ExperimentConfig& cfg) {
  std::vector<sim::ProcessId> writers;
  if (!cfg.workload.writes_enabled) return writers;
  const std::size_t k = cfg.workload.writer_mode == workload::WriterMode::kConcurrent
                            ? std::max<std::size_t>(1, cfg.workload.concurrent_writers)
                            : 1;
  for (std::size_t w = 0; w < k && w < cfg.n; ++w) {
    writers.push_back(static_cast<sim::ProcessId>(w));
  }
  return writers;
}

MetricsReport run_experiment(const ExperimentConfig& cfg) {
  replay::Session& session = replay::Session::instance();
  switch (session.mode()) {
    case replay::Session::Mode::kOff:
      return run_experiment(cfg, replay::RunHooks{});
    case replay::Session::Mode::kRecord: {
      replay::Trace trace;
      trace.fingerprint = replay::fingerprint(cfg);
      trace.seed = cfg.seed;
      replay::RunHooks hooks;
      hooks.record = &trace;
      MetricsReport report = run_experiment(cfg, hooks);
      trace.recorded_hash = report.trace_hash;
      session.commit(std::move(trace));
      return report;
    }
    case replay::Session::Mode::kReplay: {
      const std::shared_ptr<const replay::Trace> trace =
          session.find(replay::fingerprint(cfg), cfg.seed);
      replay::RunHooks hooks;
      hooks.replay = trace.get();
      MetricsReport report = run_experiment(cfg, hooks);
      // No comparison when either side ran without the auditor (hash 0).
      session.note_replay(trace->recorded_hash == 0 || report.trace_hash == 0 ||
                          report.trace_hash == trace->recorded_hash);
      return report;
    }
  }
  return run_experiment(cfg, replay::RunHooks{});  // unreachable
}

MetricsReport run_experiment(const ExperimentConfig& cfg, const replay::RunHooks& hooks) {
  // The sharded keyspace has its own pipeline (per-shard worlds, keyed
  // workload, shard-aware replay wiring); shard_count == 0 keeps this
  // function byte-identical to pre-shard builds.
  if (cfg.shard_count > 0) return shard::run_sharded(cfg, hooks);

  sim::Simulation sim(cfg.seed);

  // Replay components must outlive the run; the chooser in particular is
  // only referenced (non-owning) by the Client.
  std::unique_ptr<replay::TraceReplayer> replayer;
  if (hooks.replay != nullptr) {
    // Aliasing ctor: the session/caller guarantees *hooks.replay outlives
    // this call, so the shared_ptr carries no ownership.
    replayer = std::make_unique<replay::TraceReplayer>(
        std::shared_ptr<const replay::Trace>(std::shared_ptr<const replay::Trace>(),
                                             hooks.replay));
  }

  std::unique_ptr<net::DelayModel> delays =
      replayer ? replayer->make_delay_model() : build_delays(cfg);
  if (hooks.record != nullptr) {
    hooks.record->churn_loop =
        cfg.churn_kind == ChurnKind::kConstant && cfg.churn_rate > 0.0;
    delays = std::make_unique<replay::RecordingDelayModel>(std::move(delays),
                                                           *hooks.record);
  }

  net::Network net(sim, std::move(delays));
  net.set_loss_rate(cfg.loss_rate);
  if (cfg.dissemination == Dissemination::kTree) {
    // kFlat stays on the built-in direct path (no disseminator object), so
    // the flat configuration is byte-for-byte the pre-seam code.
    net.set_disseminator(std::make_unique<net::TreeDisseminator>(cfg.tree_fanout));
  }

  consistency::History history(kInitialValue);

  churn::SystemConfig sys_cfg;
  sys_cfg.initial_size = cfg.n;
  sys_cfg.leave_policy = cfg.leave_policy;
  sys_cfg.exempt = designated_writers(cfg);
  sys_cfg.chronicle = {cfg.chronicle_aggregate, 3 * cfg.delta, cfg.duration};

  std::unique_ptr<churn::ChurnModel> churn_model;
  if (replayer) {
    churn_model = replayer->make_churn_model();
  } else if (cfg.churn_kind == ChurnKind::kNone || cfg.churn_rate <= 0.0) {
    churn_model = std::make_unique<churn::NoChurn>();
  } else {
    churn_model = std::make_unique<churn::ConstantChurn>(cfg.churn_rate);
  }

  churn::System system(sim, net, sys_cfg, std::move(churn_model),
                       build_node_factory(cfg, cfg.n));
  client::Client client(sim, system, history, cfg.duration);

  std::optional<replay::TraceRecorder> recorder;
  if (hooks.record != nullptr) {
    recorder.emplace(*hooks.record);
    system.set_churn_observer(&*recorder);
    client.set_target_observer(&*recorder);
  }
  if (replayer) client.set_target_chooser(replayer->target_chooser());

  std::unique_ptr<workload::Generator> generator = workload::make_generator(
      workload::Env{sim, system, client, cfg.workload, cfg.duration,
                    designated_writers(cfg)});

  // The fault engine, when the config arms one. Decisions flow through the
  // source that matches the run mode: live draws from the run's Rng, a
  // recording wrapper that captures each word into the trace's fault stream
  // (format v3), or positional replay of a recorded stream — during replay
  // nothing here touches the Rng, like every other replayed component.
  std::unique_ptr<fault::DecisionSource> fault_decisions;
  std::unique_ptr<fault::Injector> injector;
  if (cfg.fault.enabled()) {
    if (hooks.replay != nullptr) {
      fault_decisions = std::make_unique<fault::ReplayDecisionSource>(
          std::shared_ptr<const replay::Trace>(std::shared_ptr<const replay::Trace>(),
                                               hooks.replay));
    } else {
      fault_decisions = std::make_unique<fault::LiveDecisionSource>(sim.rng());
      if (hooks.record != nullptr) {
        fault_decisions = std::make_unique<fault::RecordingDecisionSource>(
            std::move(fault_decisions), *hooks.record);
      }
    }
    injector = std::make_unique<fault::Injector>(sim, system, net, cfg.fault,
                                                 *fault_decisions,
                                                 designated_writers(cfg));
  }

  system.bootstrap();
  if (injector) injector->start();
  generator->start();
  sim.run_until(cfg.duration);

  MetricsReport report;
  const client::OpStats& ops = client.stats();
  report.reads_issued = ops.reads_issued;
  report.reads_completed = ops.reads_completed;
  report.reads_of_bottom = ops.reads_of_bottom;
  report.writes_issued = ops.writes_issued;
  report.writes_completed = ops.writes_completed;
  report.reads_dropped = ops.reads_dropped;
  report.writes_dropped = ops.writes_dropped;
  report.reads_timed_out = ops.reads_timed_out;
  report.writes_timed_out = ops.writes_timed_out;
  report.op_retries = ops.retries;

  report.joins_started = system.joins_started();
  report.joins_completed = system.joins_completed();
  report.joins_abandoned = system.joins_abandoned();
  report.join_latency_mean =
      system.joins_completed() == 0
          ? 0.0
          : static_cast<double>(system.join_latency_total()) /
                static_cast<double>(system.joins_completed());

  std::vector<double> read_lat = std::move(client.stats().read_latencies);
  if (!read_lat.empty()) {
    double total = 0.0;
    for (const double l : read_lat) total += l;
    report.read_latency_mean = total / static_cast<double>(read_lat.size());
    std::sort(read_lat.begin(), read_lat.end());
    report.read_latency_p50 = percentile(read_lat, 0.50);
    report.read_latency_p99 = percentile(read_lat, 0.99);
  }
  std::vector<double> write_lat = std::move(client.stats().write_latencies);
  if (!write_lat.empty()) {
    double total = 0.0;
    for (const double l : write_lat) total += l;
    // The mean divides by writes_completed (== sample count): the formula
    // the pre-client driver used, kept bit-for-bit.
    report.write_latency_mean = total / static_cast<double>(report.writes_completed);
    std::sort(write_lat.begin(), write_lat.end());
    report.write_latency_p50 = percentile(write_lat, 0.50);
    report.write_latency_p99 = percentile(write_lat, 0.99);
  }

  const auto& chron = system.chronicle();
  report.majority_active_always = chron.min_active_at(cfg.duration) * 2 > cfg.n;
  report.min_active_3delta = static_cast<double>(
      chron.min_active_through_window(3 * cfg.delta, cfg.duration));

  if (injector) {
    const fault::Injector::Stats& fs = injector->stats();
    report.faults_crashes = fs.crashes;
    report.faults_recoveries = fs.recoveries;
    report.faults_partitions = fs.partitions;
    report.faults_heals = fs.heals;
    report.msgs_dropped_partition = net.stats().dropped_partition;
    report.msgs_transformed = net.stats().transformed;
  }

  report.msgs_by_type = net.delivered_by_type();
  report.regularity = consistency::RegularityChecker{}.check(history);
  report.atomicity = consistency::AtomicityChecker{}.check(history);
  report.trace_hash = sim.trace_hash();
  return report;
}

}  // namespace dynreg::harness
