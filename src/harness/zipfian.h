// Deterministic zipfian key sampler for the keyed workload engine
// (src/shard/keyed_workload.h): rank r in [0, keys) is drawn with
// probability proportional to 1/(r+1)^s, via a precomputed CDF and one
// binary search per draw.
//
// Randomness placement: the picker owns a PRIVATE splitmix64 stream seeded
// by the caller (fold the run seed with a salt), and NEVER draws from the
// run's sim::Rng. Key choices are therefore invisible to the record/replay
// decision streams — the same placement as the client's retry jitter
// (client::RetryPolicy) — so sharded runs record and replay without a new
// trace stream, and the picker's sequence is identical at any --jobs.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace dynreg::workload {

class ZipfianPicker {
 public:
  /// `keys` ranks with exponent `s` (s = 0 is uniform). `seed` should be a
  /// salted fold of the run seed, never the raw run Rng state. keys == 0 is
  /// treated as 1 (a degenerate single-key space).
  ZipfianPicker(std::size_t keys, double s, std::uint64_t seed) : rng_(seed) {
    const std::size_t k = keys == 0 ? 1 : keys;
    cdf_.reserve(k);
    double total = 0.0;
    for (std::size_t r = 0; r < k; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
    cdf_.back() = 1.0;  // guard against accumulated rounding
  }

  /// Draws one rank (one private-stream draw). Rank 0 is the hottest key.
  std::size_t next() {
    const double u = rng_.uniform01();
    const std::size_t r = static_cast<std::size_t>(
        std::upper_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
    return std::min(r, cdf_.size() - 1);
  }

  /// One uniform [0,1) draw from the same private stream — the keyed
  /// engine's read/write-mix coin, kept here so a keyed workload consumes
  /// exactly one sanctioned stream.
  double uniform01() { return rng_.uniform01(); }

  /// P(rank) under the configured distribution (for the chi-square test).
  [[nodiscard]] double probability(std::size_t rank) const {
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
  }

  [[nodiscard]] std::size_t keys() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r)
  sim::Rng rng_;             // private stream; never the run's Rng
};

}  // namespace dynreg::workload
