#include "harness/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace dynreg::harness {

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(std::max<std::size_t>(1, workers));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, workers); ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(sim::InlineTask task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  wake_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t ThreadPool::resolve_jobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::worker_loop() {
  for (;;) {
    sim::InlineTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t jobs, std::size_t count, const IndexBody& body) {
  const std::size_t workers = std::min(ThreadPool::resolve_jobs(jobs), count);
  std::mutex error_mutex;
  std::exception_ptr first_error;
  if (workers <= 1) {
    // Same contract as the pooled path: every body runs (so the caller's
    // pre-sized result slots fill independently of the worker count), and
    // the first exception is rethrown at the end.
    for (std::size_t i = 0; i < count; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  {
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < count; ++i) {
      pool.submit([&, i] {
        try {
          body(i);
        } catch (...) {
          std::unique_lock<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dynreg::harness
