#include "harness/workload.h"

#include <algorithm>
#include <utility>

namespace dynreg::workload {

const char* to_string(Kind k) {
  switch (k) {
    case Kind::kOpenLoop:
      return "open";
    case Kind::kClosedLoop:
      return "closed";
    case Kind::kBursty:
      return "bursty";
  }
  return "?";
}

// --- shared machinery --------------------------------------------------------

client::OpOptions Generator::op_options() const {
  client::OpOptions options;
  if (env_.config.op_deadline > 0) options.deadline = env_.config.op_deadline;
  options.retry.max_attempts = env_.config.retry_max_attempts;
  options.retry.backoff = env_.config.retry_backoff;
  options.retry.exponential = env_.config.retry_exponential;
  return options;
}

void Generator::issue_read() {
  // An active id always resolves to a live node (same event, no interleaved
  // departure); were that ever broken, the client would surface it as an
  // issued-nothing dropped record rather than a silent skip.
  const auto reader = env_.client.random_active();
  // Fire-and-forget: open-loop reads are observed through history/metrics
  // only, so the handle is intentionally dropped.
  if (reader) (void)env_.client.read(*reader, op_options());
}

void Generator::issue_write(sim::ProcessId writer) {
  // Keep each writer (mostly) sequential: skip the tick while a write is
  // outstanding, unless it has been stuck for two intervals — then keep
  // issuing so a blocked system shows up as a collapsing completion rate
  // rather than a frozen issue count.
  auto& outstanding = outstanding_writes_[writer];
  if (!outstanding.empty() &&
      env_.sim.now() - outstanding.front() < 2 * env_.config.write_interval) {
    return;
  }

  // Writers are pinned (exempt from churn), so the target always exists.
  const Value v = env_.client.next_value();
  const sim::Time begun = env_.sim.now();
  outstanding.push_back(begun);
  // Fire-and-forget: outstanding-write bookkeeping runs through the
  // resolution hook, so the handle is intentionally dropped.
  (void)env_.client.write(writer, v, op_options(),
                          [this, writer, begun](const client::OpHandle&) {
                            auto& pending = outstanding_writes_[writer];
                            pending.erase(
                                std::find(pending.begin(), pending.end(), begun));
                          });
}

bool Generator::read_tick_allowed(sim::Time) const { return true; }

void Generator::schedule_read_tick() {
  const sim::Time next = env_.sim.now() + env_.config.read_interval;
  if (next >= env_.horizon) return;
  env_.sim.schedule_at(next, [this] {
    if (read_tick_allowed(env_.sim.now())) issue_read();
    schedule_read_tick();
  });
}

void Generator::schedule_write_tick() {
  const sim::Time next = env_.sim.now() + env_.config.write_interval;
  if (next >= env_.horizon) return;
  env_.sim.schedule_at(next, [this] {
    for (const sim::ProcessId w : env_.writers) issue_write(w);
    schedule_write_tick();
  });
}

// --- open loop ---------------------------------------------------------------

namespace {

/// The classic driver, byte-identical to the pre-client workload for the
/// default configuration.
class OpenLoopGenerator final : public Generator {
 public:
  using Generator::Generator;

  void start() override {
    schedule_read_tick();
    if (!env_.writers.empty()) schedule_write_tick();
  }
};

// --- closed loop -------------------------------------------------------------

class ClosedLoopGenerator final : public Generator {
 public:
  explicit ClosedLoopGenerator(Env env) : Generator(std::move(env)) {
    client::ClientSession::Config sc;
    sc.think_time = env_.config.think_time;
    sc.horizon = env_.horizon;
    sc.op_options = op_options();
    sessions_.reserve(env_.config.clients);
    for (std::size_t i = 0; i < env_.config.clients; ++i) {
      sessions_.push_back(
          std::make_unique<client::ClientSession>(env_.client, env_.sim, sc));
    }
  }

  void start() override {
    // Sessions first (their first ops go out at t=0), then the writer
    // stream — the same relative order as the open-loop engine's ticks.
    for (auto& s : sessions_) s->start();
    if (!env_.writers.empty()) schedule_write_tick();
  }

 private:
  std::vector<std::unique_ptr<client::ClientSession>> sessions_;
};

// --- bursty ------------------------------------------------------------------

class BurstyGenerator final : public Generator {
 public:
  using Generator::Generator;

  void start() override {
    schedule_read_tick();
    if (!env_.writers.empty()) schedule_write_tick();
  }

 private:
  /// Phase is pure arithmetic on the clock (no extra toggle events): ticks
  /// [0, burst_on) of every on+off period carry traffic.
  bool read_tick_allowed(sim::Time now) const override {
    const sim::Duration period = env_.config.burst_on + env_.config.burst_off;
    if (period == 0) return true;
    return now % period < env_.config.burst_on;
  }
};

}  // namespace

std::unique_ptr<Generator> make_generator(Env env) {
  switch (env.config.kind) {
    case Kind::kClosedLoop:
      return std::make_unique<ClosedLoopGenerator>(std::move(env));
    case Kind::kBursty:
      return std::make_unique<BurstyGenerator>(std::move(env));
    case Kind::kOpenLoop:
      break;
  }
  return std::make_unique<OpenLoopGenerator>(std::move(env));
}

}  // namespace dynreg::workload
