// Per-run experiment results: operation counts, latency summaries, join and
// active-set accounting, per-type traffic, and the consistency reports.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "consistency/regularity_checker.h"

namespace dynreg::harness {

/// One shard's slice of a sharded run (src/shard/). Latency percentiles are
/// nearest-rank over the shard's completed ops (reads and writes combined —
/// the tail a keyed caller of that shard observes).
struct ShardMetrics {
  std::uint64_t reads_completed = 0;
  std::uint64_t writes_completed = 0;
  /// reads_completed + writes_completed (the skew denominator).
  std::uint64_t ops_completed = 0;
  double latency_p50 = 0.0;
  double latency_p99 = 0.0;
};

/// Everything measured in one run. Produced by run_experiment; cross-seed
/// summaries live in harness/aggregate.h (which never averages the safety
/// counters away).
struct [[nodiscard]] MetricsReport {
  // Operations (issued by the workload driver; completion = callback fired
  // before the horizon).
  std::uint64_t reads_issued = 0;
  std::uint64_t reads_completed = 0;
  /// Completed reads that returned kBottom — for survival-mode experiments
  /// this measures information death directly.
  std::uint64_t reads_of_bottom = 0;
  std::uint64_t writes_issued = 0;
  std::uint64_t writes_completed = 0;

  // Typed failure outcomes (client layer; counts failed *attempts*).
  /// Attempts resolved kDroppedOnDeparture: the hosting node left mid-op.
  std::uint64_t reads_dropped = 0;
  std::uint64_t writes_dropped = 0;
  /// Attempts resolved kTimedOut by a client-armed per-op deadline.
  std::uint64_t reads_timed_out = 0;
  std::uint64_t writes_timed_out = 0;
  /// Re-issued attempts under a client RetryPolicy.
  std::uint64_t op_retries = 0;

  // Joins (non-bootstrap processes only).
  std::uint64_t joins_started = 0;
  std::uint64_t joins_completed = 0;
  /// Joiners churned out before their join could complete.
  std::uint64_t joins_abandoned = 0;

  // Latencies (ticks; client-perceived invoke-to-response over completed
  // operations — closed-loop session queue wait included). Percentiles are
  // nearest-rank per op type.
  double read_latency_mean = 0.0;
  double read_latency_p50 = 0.0;
  /// Nearest-rank p99 over this run's completed reads.
  double read_latency_p99 = 0.0;
  double write_latency_mean = 0.0;
  double write_latency_p50 = 0.0;
  double write_latency_p99 = 0.0;
  double join_latency_mean = 0.0;

  // Ground-truth active-set measurements over the run.
  bool majority_active_always = true;
  /// min over t of |A(t, t + 3*delta)| — Lemma 2's quantity.
  double min_active_3delta = 0.0;

  // Fault-campaign accounting (fault::Injector + network seam counters; all
  // zero when the run armed no fault::Plan).
  std::uint64_t faults_crashes = 0;
  std::uint64_t faults_recoveries = 0;
  std::uint64_t faults_partitions = 0;
  std::uint64_t faults_heals = 0;
  /// Message copies cut by an active partition (FaultHook::link_cut).
  std::uint64_t msgs_dropped_partition = 0;
  /// Delivered copies rewritten by a Byzantine transform.
  std::uint64_t msgs_transformed = 0;

  // Shard layer (src/shard/; all empty/zero for unsharded runs — the
  // emitters build tables from these only in the sharded experiments, so
  // pre-shard experiment output is untouched).
  /// Per-shard slices, in shard order.
  std::vector<ShardMetrics> shards;
  /// Max / min per-shard combined-op p99 over shards that completed ops.
  double shard_hot_p99 = 0.0;
  double shard_cold_p99 = 0.0;
  /// Hot-shard skew: max per-shard ops_completed over the mean.
  double shard_skew = 0.0;
  /// Aggregate throughput: completed ops (reads + writes) per tick.
  double ops_per_tick = 0.0;

  /// Delivered message copies per wire-type tag (see dynreg/messages.h for
  /// the tag vocabulary).
  std::map<std::string, std::uint64_t> msgs_by_type;

  /// Stale-read check over the recorded history (Theorem 1's property).
  consistency::RegularityReport regularity;
  /// New/old inversion count (regular-vs-atomic distinction, Section 1).
  consistency::InversionReport atomicity;

  /// Event-stream digest of the run (sim::Simulation::trace_hash); 0 in
  /// builds without DYNREG_AUDIT. Deliberately excluded from the JSON/CSV
  /// serializers: it is a build-mode-dependent diagnostic, and emitted
  /// experiment output stays byte-identical across audit on/off.
  std::uint64_t trace_hash = 0;

  double read_completion_rate() const {
    return reads_issued == 0 ? 1.0
                             : static_cast<double>(reads_completed) /
                                   static_cast<double>(reads_issued);
  }
  double write_completion_rate() const {
    return writes_issued == 0 ? 1.0
                              : static_cast<double>(writes_completed) /
                                    static_cast<double>(writes_issued);
  }
  /// Completion rate excusing joiners that were churned out mid-join (they
  /// never had a full chance). The raw rate is joins_completed/joins_started.
  double join_completion_rate() const {
    const std::uint64_t given_chance =
        joins_started > joins_abandoned ? joins_started - joins_abandoned : 0;
    return given_chance == 0 ? 1.0
                             : static_cast<double>(joins_completed) /
                                   static_cast<double>(given_chance);
  }
};

}  // namespace dynreg::harness
