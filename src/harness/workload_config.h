// The workload *description* — engine kind and traffic parameters — split
// from the engine implementations (harness/workload.h) so config-only
// consumers (ExperimentConfig, the bench registry) don't pull the client
// and system stack into every translation unit.
#pragma once

#include <cstddef>

#include "sim/event_queue.h"

namespace dynreg::workload {

/// Which engine shapes the read traffic (see harness/workload.h for the
/// engines themselves).
enum class Kind {
  kOpenLoop,
  kClosedLoop,
  kBursty,
};

const char* to_string(Kind k);

/// Who writes.
enum class WriterMode {
  kSingle,      ///< The paper's model: one designated writer (process 0).
  kConcurrent,  ///< Section 7 extension: several simultaneous writers.
};

/// Traffic description. Writers are pinned (exempt from churn, as in the
/// paper where the writer stays in the system) unless writes are disabled —
/// then nobody is exempt and the register value must survive churn on its
/// own.
struct Config {
  Kind kind = Kind::kOpenLoop;

  /// Open-loop/bursty: a read is issued from a uniformly random active
  /// process every interval.
  sim::Duration read_interval = 10;
  /// Writes are issued every interval (by every writer, in concurrent mode).
  sim::Duration write_interval = 50;
  bool writes_enabled = true;
  WriterMode writer_mode = WriterMode::kSingle;
  /// Number of designated writers in concurrent mode (ids 0..k-1).
  std::size_t concurrent_writers = 2;

  /// Closed-loop: number of concurrent ClientSessions.
  std::size_t clients = 4;
  /// Closed-loop: ticks a session waits between a resolution and its next
  /// op (0 behaves as 1 — see client::ClientSession::Config).
  sim::Duration think_time = 5;

  /// Bursty: ticks of open-loop traffic per phase...
  sim::Duration burst_on = 200;
  /// ...followed by ticks of silence.
  sim::Duration burst_off = 200;

  // Per-operation client policy, applied to every issued op (reads, writes,
  // session reads). The defaults (no deadline, one attempt) reproduce the
  // historical behavior byte-for-byte.
  /// Resolve an attempt as timed out this many ticks after issue (0 = none).
  sim::Duration op_deadline = 0;
  /// Total attempts allowed per operation, first issue included.
  std::uint32_t retry_max_attempts = 1;
  /// Base delay between a failed attempt and its re-issue.
  sim::Duration retry_backoff = 0;
  /// Exponential backoff: the k-th retry waits backoff * 2^min(k-1, 5) plus
  /// a deterministic jitter hashed from (seed, op, attempt) — no Rng draw,
  /// so the replay layer never sees it (see client::RetryPolicy).
  bool retry_exponential = false;

  // Keyed workload (sharded runs only — engaged when ExperimentConfig::
  // shard_count > 0; see src/shard/keyed_workload.h). Sessions reuse
  // `clients` (session count) and `think_time`.
  /// Size of the key space; 0 behaves as 1 (a single-key space).
  std::size_t key_count = 0;
  /// Zipfian exponent for key popularity (0 = uniform; rank 0 hottest).
  double zipf_s = 0.99;
  /// Fraction of keyed ops that are reads; the rest are writes through the
  /// owning shard's designated writer.
  double read_frac = 0.9;
  /// Hot-key storm phase: every `storm_every` ticks, the first `storm_len`
  /// ticks route every op to key 0 (0 = no storms) — same clock-arithmetic
  /// gating as the bursty engine.
  sim::Duration storm_every = 0;
  sim::Duration storm_len = 0;
};

}  // namespace dynreg::workload
