// Fixed-size worker pool driving seed-parallel experiment replicas.
//
// The simulation core is single-threaded by design (one Simulation, one Rng,
// one EventQueue per run); parallelism lives entirely up here, where each
// submitted task owns a whole replica. Nothing below src/harness/ ever sees
// a second thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "sim/inline_task.h"

namespace dynreg::harness {

/// A minimal fixed-size thread pool.
///
/// Tasks are executed in submission order by `workers` threads. The pool is
/// intended for coarse-grained work (whole simulation replicas, milliseconds
/// each), so per-task overhead is irrelevant; correctness and determinism of
/// the *results* are the callers' concern — see parallel_for(), which gives
/// every task a pre-assigned output slot.
class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(std::size_t workers);

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw; wrap anything throwing (see
  /// parallel_for for the pattern). InlineTask keeps the queue slot
  /// allocation-free for captures within the inline budget.
  void submit(sim::InlineTask task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// Maps a user-facing --jobs value to a worker count: 0 means "one per
  /// hardware thread" (falling back to 1 when the hardware is unknown).
  static std::size_t resolve_jobs(std::size_t jobs);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<sim::InlineTask> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;   // workers wait here for tasks
  std::condition_variable idle_;   // wait_idle() waits here
  std::size_t in_flight_ = 0;      // queued + currently executing
  bool stopping_ = false;
};

/// Type-erased per-index body for parallel_for. Exactly one is constructed
/// per parallel_for *call* — every pooled task captures only a reference to
/// it — so the type-erasure cost is O(sweeps), never per event.
// dynreg-lint: allow(std-function): one instance per parallel_for call, O(sweeps) not O(events)
using IndexBody = std::function<void(std::size_t)>;

/// Runs body(0) .. body(count-1) across `jobs` workers (serially when jobs
/// resolves to 1) and returns when all have finished. Index assignment is
/// static, so writing results into a pre-sized vector slot `i` from body(i)
/// is race-free and yields output independent of the worker count — the
/// determinism contract every caller relies on. The first exception thrown
/// by any body is rethrown on the calling thread once all bodies finished.
void parallel_for(std::size_t jobs, std::size_t count, const IndexBody& body);

}  // namespace dynreg::harness
