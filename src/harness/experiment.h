// One-shot experiment runner: deploys a protocol over the churn/network
// substrate, applies the workload, and returns a MetricsReport. A
// (config, seed) pair fully determines the result.
#pragma once

#include <cstdint>
#include <optional>

#include "churn/system.h"
#include "fault/plan.h"
#include "harness/metrics.h"
#include "harness/workload_config.h"
#include "sim/simulation.h"

namespace dynreg::replay {
struct RunHooks;
}  // namespace dynreg::replay

namespace dynreg::harness {

/// Which register protocol a run deploys.
enum class Protocol {
  kSync,            ///< Section 3 (synchronous, fast local reads).
  kSyncNoWait,      ///< Figure 3a ablation: join inquires without the delta wait.
  kEventuallySync,  ///< Section 5 (quorum-based).
  kAbd,             ///< Static-membership baseline (Attiya, Bar-Noy, Dolev).
};

/// The timing model the network's delay model implements.
enum class Timing {
  kSynchronous,            ///< All delays in [1, delta].
  kEventuallySynchronous,  ///< Arbitrary (bounded by pre_gst_max) before gst,
                           ///< delta-bounded after.
};

/// Membership dynamics: a static member set or the paper's constant churn.
enum class ChurnKind { kNone, kConstant };

/// How broadcasts fan out (see net/disseminator.h). kFlat is the paper's
/// model (sender transmits to every recipient directly); kTree delegates
/// over a deterministic BFS tree so a write costs the sender O(fanout)
/// sends instead of O(n).
enum class Dissemination { kFlat, kTree };

/// Everything that determines a run. A (config, seed) pair fully determines
/// the resulting MetricsReport, bit for bit (see docs/ARCHITECTURE.md,
/// "Determinism contract").
struct ExperimentConfig {
  Protocol protocol = Protocol::kSync;
  Timing timing = Timing::kSynchronous;

  std::size_t n = 10;          ///< Constant system size (paper: joins == leaves).
  sim::Duration delta = 5;     ///< Network delay bound (post-GST, for ES).
  sim::Time duration = 1000;   ///< Run horizon, in ticks.
  std::uint64_t seed = 1;      ///< The run's only randomness source.

  ChurnKind churn_kind = ChurnKind::kConstant;
  /// Fraction of n joining (and leaving) per tick — the paper's c.
  double churn_rate = 0.0;
  churn::LeavePolicy leave_policy = churn::LeavePolicy::kUniform;

  Dissemination dissemination = Dissemination::kFlat;
  std::size_t tree_fanout = 4;  ///< Branching factor when dissemination == kTree.

  sim::Time gst = 0;                ///< Stabilization time (ES timing only).
  sim::Duration pre_gst_max = 100;  ///< Max pre-GST delay (finiteness bound).
  double loss_rate = 0.0;           ///< Omission-fault rate per message copy.

  /// ES reads write back the returned value (regular -> atomic upgrade).
  bool es_atomic_reads = false;
  /// ES hardening: bounded exponential retransmit backoff (EsConfig).
  bool es_retransmit_backoff = false;
  /// ES hardening: reply-validation guard against forged timestamps.
  bool es_validate_replies = false;
  /// Footnote 4: known one-way reply bound delta', shrinking the join's
  /// collection window from 2*delta to delta + delta'.
  std::optional<sim::Duration> sync_delta_pp;
  /// Anti-entropy extension: active processes rebroadcast their copy every
  /// interval (heals replicas behind lossy channels; not in the paper).
  std::optional<sim::Duration> sync_refresh_interval;

  workload::Config workload;  ///< Traffic description + engine (open/closed/bursty).

  /// Sharded keyspace (src/shard/): number of independent register groups
  /// the total population n is partitioned into, each with its own network,
  /// membership, designated writer, and history, driven by the keyed
  /// workload engine. 0 = the single-register path, byte-identical to
  /// pre-shard builds. Fault plans are ignored when sharded (the injector
  /// targets the one-system world; E19/E20 arm none).
  std::size_t shard_count = 0;

  /// churn::ChronicleOptions::aggregate_only for every System this run
  /// builds: keep the A(t) counters, drop per-member records, so 1e5-scale
  /// runs don't pay O(joins) memory per shard. Results are unchanged
  /// (regression-tested), so this flag is excluded from the canonical
  /// encoding and never splits a trace fingerprint.
  bool chronicle_aggregate = false;

  /// Deterministic fault campaign (crash/recovery, partitions, Byzantine
  /// transforms; see docs/FAULTS.md). Default = no faults, and the fault
  /// machinery is not even constructed — the fault-free path is untouched.
  fault::Plan fault;

  /// Theorem 1's sufficient churn bound for the synchronous protocol.
  [[nodiscard]] double sync_churn_threshold() const { return 1.0 / (3.0 * static_cast<double>(delta)); }
  /// Section 5's churn constraint for the eventually synchronous protocol.
  double es_churn_threshold() const {
    return 1.0 / (3.0 * static_cast<double>(delta) * static_cast<double>(n));
  }
};

/// Runs one replica to completion: deploys `config.protocol` over the
/// churn/network substrate, applies the workload until `config.duration`,
/// then harvests metrics and runs the consistency checkers over the
/// recorded history. Self-contained and thread-compatible: concurrent calls
/// share no state, which is what the parallel sweep engine exploits.
///
/// When the global replay::Session is in record or replay mode this entry
/// point transparently captures, respectively re-feeds, the run's schedule
/// (see src/replay/session.h); otherwise it is a plain run.
MetricsReport run_experiment(const ExperimentConfig& config);

/// Same run, with explicit record/replay hooks (see replay/hooks.h) and no
/// session involvement — the schedule searcher's and minimizer's entry
/// point. Pass a default-constructed RunHooks for a plain run.
MetricsReport run_experiment(const ExperimentConfig& config,
                             const replay::RunHooks& hooks);

}  // namespace dynreg::harness
