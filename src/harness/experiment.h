// One-shot experiment runner: deploys a protocol over the churn/network
// substrate, applies the workload, and returns a MetricsReport. A
// (config, seed) pair fully determines the result.
#pragma once

#include <cstdint>
#include <optional>

#include "churn/system.h"
#include "harness/metrics.h"
#include "harness/workload.h"
#include "sim/simulation.h"

namespace dynreg::harness {

enum class Protocol {
  kSync,            // Section 3 (synchronous, fast local reads)
  kSyncNoWait,      // Figure 3a ablation: join inquires without the delta wait
  kEventuallySync,  // Section 5 (quorum-based)
  kAbd,             // static-membership baseline
};

enum class Timing {
  kSynchronous,            // all delays in [1, delta]
  kEventuallySynchronous,  // arbitrary before gst, delta-bounded after
};

enum class ChurnKind { kNone, kConstant };

struct ExperimentConfig {
  Protocol protocol = Protocol::kSync;
  Timing timing = Timing::kSynchronous;

  std::size_t n = 10;          // constant system size
  sim::Duration delta = 5;     // network delay bound (post-GST, for ES)
  sim::Time duration = 1000;   // run horizon, in ticks
  std::uint64_t seed = 1;

  ChurnKind churn_kind = ChurnKind::kConstant;
  double churn_rate = 0.0;     // fraction of n joining (and leaving) per tick
  churn::LeavePolicy leave_policy = churn::LeavePolicy::kUniform;

  sim::Time gst = 0;                // stabilization time (ES timing)
  sim::Duration pre_gst_max = 100;  // max pre-GST delay (finiteness bound)
  double loss_rate = 0.0;           // omission-fault rate

  bool es_atomic_reads = false;
  std::optional<sim::Duration> sync_delta_pp;        // footnote 4 join window
  std::optional<sim::Duration> sync_refresh_interval;  // anti-entropy extension

  workload::Config workload;

  /// Theorem 1's sufficient churn bound for the synchronous protocol.
  double sync_churn_threshold() const { return 1.0 / (3.0 * static_cast<double>(delta)); }
  /// Section 5's churn constraint for the eventually synchronous protocol.
  double es_churn_threshold() const {
    return 1.0 / (3.0 * static_cast<double>(delta) * static_cast<double>(n));
  }
};

MetricsReport run_experiment(const ExperimentConfig& config);

}  // namespace dynreg::harness
