// Parameter sweeps: run a base experiment at several values of one knob,
// each over several seeds, and expose per-point aggregates.
#pragma once

#include <functional>
#include <vector>

#include "harness/experiment.h"
#include "harness/metrics.h"

namespace dynreg::harness {

/// Mean of fn over a set of runs.
template <typename Fn>
double mean_of(const std::vector<MetricsReport>& runs, Fn fn) {
  if (runs.empty()) return 0.0;
  double total = 0.0;
  for (const auto& r : runs) total += static_cast<double>(fn(r));
  return total / static_cast<double>(runs.size());
}

struct SweepPoint {
  double x = 0.0;                    // the swept knob's value
  std::vector<MetricsReport> runs;   // one per seed

  double mean_violation_rate() const {
    return mean_of(runs, [](const MetricsReport& r) { return r.regularity.violation_rate(); });
  }
  double mean_read_completion() const {
    return mean_of(runs, [](const MetricsReport& r) { return r.read_completion_rate(); });
  }
  double mean_write_completion() const {
    return mean_of(runs, [](const MetricsReport& r) { return r.write_completion_rate(); });
  }
  double mean_join_completion() const {
    return mean_of(runs, [](const MetricsReport& r) { return r.join_completion_rate(); });
  }
  double mean_read_latency() const {
    return mean_of(runs, [](const MetricsReport& r) { return r.read_latency_mean; });
  }
  double mean_write_latency() const {
    return mean_of(runs, [](const MetricsReport& r) { return r.write_latency_mean; });
  }
  double mean_join_latency() const {
    return mean_of(runs, [](const MetricsReport& r) { return r.join_latency_mean; });
  }
  double mean_min_active_3delta() const {
    return mean_of(runs, [](const MetricsReport& r) { return r.min_active_3delta; });
  }
};

/// Runs `base` once per (x, seed) pair; `configure` applies x to a copy of
/// the base config before each run. Seeds are derived deterministically from
/// the base seed.
std::vector<SweepPoint> sweep(const ExperimentConfig& base, const std::vector<double>& xs,
                              const std::function<void(ExperimentConfig&, double)>& configure,
                              std::size_t seeds);

}  // namespace dynreg::harness
