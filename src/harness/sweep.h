// Parameter sweeps: run a base experiment at several values of one knob,
// each over several seeds, and expose per-point aggregates.
//
// The parallel engine runs the (x, seed) grid on a ThreadPool. Each replica
// owns its whole world — Simulation, Rng, Network, nodes — so runs never
// share mutable state, and every replica writes its MetricsReport into a
// pre-assigned slot. The collected output is therefore byte-identical for
// any worker count: parallelism changes wall-clock time only.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "harness/aggregate.h"
#include "harness/experiment.h"
#include "harness/metrics.h"

namespace dynreg::harness {

/// Mean of fn over a set of runs.
template <typename Fn>
double mean_of(const std::vector<MetricsReport>& runs, Fn fn) {
  if (runs.empty()) return 0.0;
  double total = 0.0;
  for (const auto& r : runs) total += static_cast<double>(fn(r));
  return total / static_cast<double>(runs.size());
}

/// One swept knob value with its per-seed runs.
struct SweepPoint {
  double x = 0.0;                    // the swept knob's value
  std::vector<MetricsReport> runs;   // one per seed, in seed order

  /// Full cross-seed distribution summary (see harness/aggregate.h).
  [[nodiscard]] AggregatedMetrics aggregate() const { return aggregate_metrics(runs); }

  double mean_violation_rate() const {
    return mean_of(runs, [](const MetricsReport& r) { return r.regularity.violation_rate(); });
  }
  double mean_read_completion() const {
    return mean_of(runs, [](const MetricsReport& r) { return r.read_completion_rate(); });
  }
  double mean_write_completion() const {
    return mean_of(runs, [](const MetricsReport& r) { return r.write_completion_rate(); });
  }
  double mean_join_completion() const {
    return mean_of(runs, [](const MetricsReport& r) { return r.join_completion_rate(); });
  }
  double mean_read_latency() const {
    return mean_of(runs, [](const MetricsReport& r) { return r.read_latency_mean; });
  }
  double mean_write_latency() const {
    return mean_of(runs, [](const MetricsReport& r) { return r.write_latency_mean; });
  }
  double mean_join_latency() const {
    return mean_of(runs, [](const MetricsReport& r) { return r.join_latency_mean; });
  }
  double mean_min_active_3delta() const {
    return mean_of(runs, [](const MetricsReport& r) { return r.min_active_3delta; });
  }
};

/// The seed used for replica `index` of a sweep/replica set rooted at
/// `base_seed`. Part of the determinism contract: results are identified by
/// (config, replica_seed(base, i)), never by execution order.
std::uint64_t replica_seed(std::uint64_t base_seed, std::size_t index);

/// Applies one swept knob value to a private config copy. One instance per
/// sweep call; invoked once per (x, seed) replica setup — configuration
/// time, never on the simulated event path.
// dynreg-lint: allow(std-function): one instance per sweep call, invoked at replica setup only
using ConfigureFn = std::function<void(ExperimentConfig&, double)>;

/// Runs `seeds` replicas of `base` (differing only in seed) across up to
/// `jobs` worker threads (0 = one per hardware thread). The result vector is
/// in seed order regardless of jobs.
std::vector<MetricsReport> run_replicas(const ExperimentConfig& base, std::size_t seeds,
                                        std::size_t jobs);

/// Runs `base` once per (x, seed) pair, `configure` applying x to a copy of
/// the base config before each run, with up to `jobs` replicas in flight at
/// once (0 = one per hardware thread). Point and run order match the inputs
/// regardless of jobs. `configure` must be safe to call concurrently (it
/// only ever mutates the private copy it is handed).
std::vector<SweepPoint> parallel_sweep(const ExperimentConfig& base,
                                       const std::vector<double>& xs,
                                       const ConfigureFn& configure, std::size_t seeds,
                                       std::size_t jobs);

/// Single-threaded sweep; identical output to parallel_sweep(..., jobs=1).
std::vector<SweepPoint> sweep(const ExperimentConfig& base, const std::vector<double>& xs,
                              const ConfigureFn& configure, std::size_t seeds);

}  // namespace dynreg::harness
