#include "harness/sweep.h"

namespace dynreg::harness {

std::vector<SweepPoint> sweep(const ExperimentConfig& base, const std::vector<double>& xs,
                              const std::function<void(ExperimentConfig&, double)>& configure,
                              std::size_t seeds) {
  std::vector<SweepPoint> points;
  points.reserve(xs.size());
  for (const double x : xs) {
    SweepPoint point;
    point.x = x;
    point.runs.reserve(seeds);
    for (std::size_t s = 0; s < seeds; ++s) {
      ExperimentConfig cfg = base;
      configure(cfg, x);
      cfg.seed = base.seed + (s + 1) * 1009;
      point.runs.push_back(run_experiment(cfg));
    }
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace dynreg::harness
