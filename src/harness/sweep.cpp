#include "harness/sweep.h"

#include "harness/thread_pool.h"

namespace dynreg::harness {

std::uint64_t replica_seed(std::uint64_t base_seed, std::size_t index) {
  // Keep the original (PR 1) derivation so historical outputs stay valid.
  return base_seed + (static_cast<std::uint64_t>(index) + 1) * 1009;
}

std::vector<MetricsReport> run_replicas(const ExperimentConfig& base, std::size_t seeds,
                                        std::size_t jobs) {
  std::vector<MetricsReport> runs(seeds);
  parallel_for(jobs, seeds, [&](std::size_t s) {
    ExperimentConfig cfg = base;
    cfg.seed = replica_seed(base.seed, s);
    runs[s] = run_experiment(cfg);
  });
  return runs;
}

std::vector<SweepPoint> parallel_sweep(const ExperimentConfig& base,
                                       const std::vector<double>& xs,
                                       const ConfigureFn& configure, std::size_t seeds,
                                       std::size_t jobs) {
  std::vector<SweepPoint> points(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    points[i].x = xs[i];
    points[i].runs.resize(seeds);
  }
  // Flatten the (x, seed) grid: every replica gets a pre-assigned slot, so
  // the assembled result is independent of scheduling.
  parallel_for(jobs, xs.size() * seeds, [&](std::size_t task) {
    const std::size_t xi = task / seeds;
    const std::size_t s = task % seeds;
    ExperimentConfig cfg = base;
    configure(cfg, xs[xi]);
    cfg.seed = replica_seed(base.seed, s);
    points[xi].runs[s] = run_experiment(cfg);
  });
  return points;
}

std::vector<SweepPoint> sweep(const ExperimentConfig& base, const std::vector<double>& xs,
                              const ConfigureFn& configure, std::size_t seeds) {
  return parallel_sweep(base, xs, configure, seeds, /*jobs=*/1);
}

}  // namespace dynreg::harness
