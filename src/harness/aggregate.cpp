#include "harness/aggregate.h"

#include <algorithm>
#include <cmath>

namespace dynreg::harness {

namespace {

// Every projection below is a captureless lambda, so a plain function
// pointer erases them without any allocation or indirection table.
Aggregate over_runs(const std::vector<MetricsReport>& runs,
                    double (*fn)(const MetricsReport&)) {
  std::vector<double> samples;
  samples.reserve(runs.size());
  for (const auto& r : runs) samples.push_back(fn(r));
  return aggregate(std::move(samples));
}

}  // namespace

double percentile(const std::vector<double>& sorted, double p) {
  const std::size_t n = sorted.size();
  const auto idx = std::min(n - 1, static_cast<std::size_t>(p * static_cast<double>(n)));
  return sorted[idx];
}

Aggregate aggregate(std::vector<double> samples) {
  Aggregate a;
  if (samples.empty()) return a;
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<double>(samples.size());

  double total = 0.0;
  for (const double s : samples) total += s;
  a.mean = total / n;

  if (samples.size() >= 2) {
    double sq = 0.0;
    for (const double s : samples) sq += (s - a.mean) * (s - a.mean);
    a.stddev = std::sqrt(sq / (n - 1.0));
  }

  a.min = samples.front();
  a.max = samples.back();
  a.p50 = percentile(samples, 0.50);
  a.p99 = percentile(samples, 0.99);
  return a;
}

AggregatedMetrics aggregate_metrics(const std::vector<MetricsReport>& runs) {
  AggregatedMetrics m;
  m.seeds = runs.size();
  if (runs.empty()) return m;

  m.read_completion = over_runs(runs, [](const auto& r) { return r.read_completion_rate(); });
  m.write_completion =
      over_runs(runs, [](const auto& r) { return r.write_completion_rate(); });
  m.join_completion =
      over_runs(runs, [](const auto& r) { return r.join_completion_rate(); });
  m.read_latency = over_runs(runs, [](const auto& r) { return r.read_latency_mean; });
  m.read_latency_p50 = over_runs(runs, [](const auto& r) { return r.read_latency_p50; });
  m.read_latency_p99 = over_runs(runs, [](const auto& r) { return r.read_latency_p99; });
  m.write_latency = over_runs(runs, [](const auto& r) { return r.write_latency_mean; });
  m.write_latency_p50 =
      over_runs(runs, [](const auto& r) { return r.write_latency_p50; });
  m.write_latency_p99 =
      over_runs(runs, [](const auto& r) { return r.write_latency_p99; });
  m.join_latency = over_runs(runs, [](const auto& r) { return r.join_latency_mean; });
  m.ops_dropped = over_runs(runs, [](const auto& r) {
    return static_cast<double>(r.reads_dropped + r.writes_dropped);
  });
  m.ops_timed_out = over_runs(runs, [](const auto& r) {
    return static_cast<double>(r.reads_timed_out + r.writes_timed_out);
  });
  m.op_retries =
      over_runs(runs, [](const auto& r) { return static_cast<double>(r.op_retries); });
  m.violation_rate =
      over_runs(runs, [](const auto& r) { return r.regularity.violation_rate(); });
  m.reads_of_bottom =
      over_runs(runs, [](const auto& r) { return static_cast<double>(r.reads_of_bottom); });
  m.min_active_3delta = over_runs(runs, [](const auto& r) { return r.min_active_3delta; });

  std::size_t majority_ok = 0;
  for (const auto& r : runs) {
    const auto violations = static_cast<std::uint64_t>(r.regularity.violations.size());
    m.violations_total += violations;
    m.violations_max_seed = std::max(m.violations_max_seed, violations);
    const auto inversions = static_cast<std::uint64_t>(r.atomicity.inversion_count);
    m.inversions_total += inversions;
    m.inversions_max_seed = std::max(m.inversions_max_seed, inversions);
    if (r.majority_active_always) ++majority_ok;
  }
  m.majority_active_fraction =
      static_cast<double>(majority_ok) / static_cast<double>(runs.size());
  return m;
}

}  // namespace dynreg::harness
