// The dynamic system: hosts protocol nodes, orchestrates joins and leaves
// according to a churn model, and keeps the ground-truth chronicle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "churn/chronicle.h"
#include "churn/churn_model.h"
#include "net/network.h"
#include "node/context.h"
#include "node/node.h"
#include "sim/simulation.h"

namespace dynreg::churn {

/// Which member departs when the churn model calls for a leave.
enum class LeavePolicy {
  kUniform,            // uniform over non-exempt members
  kOldestActiveFirst,  // adversarial: kill the longest-active (most informed)
};

struct SystemConfig {
  std::size_t initial_size = 0;
  LeavePolicy leave_policy = LeavePolicy::kUniform;
  /// Processes never selected for departure (e.g. the paper's writer, which
  /// stays in the system).
  std::vector<sim::ProcessId> exempt;
  /// Granularity of churn arithmetic, in ticks.
  sim::Duration churn_tick = 1;
  /// Chronicle memory policy (default: full per-process records, the
  /// historical behavior; see churn::ChronicleOptions).
  ChronicleOptions chronicle;
};

/// Observes churn-driven membership actions as the system executes them —
/// the trace recorder's view of churn (src/replay/recorder.h). Bench- or
/// client-driven spawn()/leave() calls are NOT reported: they re-occur
/// naturally when the driving code runs again, so recording them would
/// double them on replay.
class ChurnObserver {
 public:
  virtual ~ChurnObserver() = default;
  virtual void on_churn_join(sim::Time t) = 0;
  virtual void on_churn_leave(sim::Time t, sim::ProcessId victim) = 0;
};

class System {
 public:
  /// Builds the protocol node for a process. `initial` distinguishes the
  /// bootstrap members (already active, holding the initial value) from
  /// joiners (which must run the join protocol). Invoked once per process
  /// join — which already heap-allocates the node itself — so std::function
  /// type-erasure here is noise, not an event-path allocation.
  // dynreg-lint: allow(std-function): invoked once per join (which allocates a whole node), never per message
  using NodeFactory = std::function<std::unique_ptr<node::Node>(
      sim::ProcessId id, node::Context& ctx, bool initial)>;

  System(sim::Simulation& sim, net::Network& net, SystemConfig config,
         std::unique_ptr<ChurnModel> churn, NodeFactory factory);

  /// Creates the initial members and starts the churn schedule. Call once,
  /// before running the simulation.
  void bootstrap();

  /// Adds one joining process now; returns its id.
  sim::ProcessId spawn();

  /// Removes a member now (in-flight messages to it will be dropped).
  void leave(sim::ProcessId id);

  /// The member's node, or nullptr if it is not (any longer) in the system.
  node::Node* find(sim::ProcessId id);

  /// Installs a non-owning observer of churn-driven joins/leaves (nullptr
  /// to clear). Configuration-time only; must outlive the run.
  void set_churn_observer(ChurnObserver* observer) { observer_ = observer; }

  [[nodiscard]] const Chronicle& chronicle() const { return chronicle_; }

  /// Ids of members whose join has completed, ascending. Returned by
  /// reference (no copy): clients pick a random target per operation, and at
  /// 1e5 members a per-op copy would dominate the op itself. The reference
  /// is invalidated by any join/leave/activation — take what you need before
  /// yielding to the simulation.
  [[nodiscard]] const std::vector<sim::ProcessId>& active_ids() const {
    return active_ids_;
  }

  [[nodiscard]] std::size_t member_count() const { return member_ids_.size(); }
  [[nodiscard]] std::size_t active_count() const { return active_ids_.size(); }

  // Join bookkeeping (joiners only; bootstrap members are not counted).
  [[nodiscard]] std::uint64_t joins_started() const { return joins_started_; }
  [[nodiscard]] std::uint64_t joins_completed() const { return joins_completed_; }
  /// Joins that ended because the joiner was churned out before activating.
  [[nodiscard]] std::uint64_t joins_abandoned() const { return joins_abandoned_; }
  /// Sum of (activation - enter) over completed joins.
  [[nodiscard]] std::uint64_t join_latency_total() const { return join_latency_total_; }

 private:
  sim::ProcessId add_member(bool initial);
  void churn_step();
  void scripted_churn_step();
  sim::ProcessId pick_victim();
  /// Grows the id-indexed columns to cover `id`.
  void ensure_slot(sim::ProcessId id);
  [[nodiscard]] bool is_member(sim::ProcessId id) const {
    return id < node_.size() && node_[id] != nullptr;
  }

  sim::Simulation& sim_;
  net::Network& net_;
  SystemConfig config_;
  std::unique_ptr<ChurnModel> churn_;
  NodeFactory factory_;

  // Member state as id-indexed struct-of-arrays columns (ids are dense and
  // never reused, so index == ProcessId; a null node_ entry means "not a
  // member"). The previous std::map<id, Member> cost a pointer chase per
  // lookup and O(members) node-hopping per iteration; the columns make
  // membership O(1) and iteration a contiguous sweep of the two sorted id
  // vectors. member_ids_ stays sorted for free (new ids are always the
  // largest); active_ids_ inserts in id order on activation. Both erase by
  // shift on leave — contiguous memmove, cheaper in practice than the old
  // tree rebalance, and the iteration order (ascending id) is bit-identical
  // to the map's, which the RNG draw sequence depends on.
  std::vector<std::unique_ptr<node::Context>> ctx_;   // column: per-id context
  std::vector<std::unique_ptr<node::Node>> node_;     // column: per-id node
  std::vector<sim::Time> activated_at_;               // column: activation time
  std::vector<std::uint8_t> active_flag_;             // column: join completed
  std::vector<sim::ProcessId> member_ids_;  // sorted ascending, live members
  std::vector<sim::ProcessId> active_ids_;  // sorted ascending, active members
  Chronicle chronicle_;
  ChurnObserver* observer_ = nullptr;  // non-owning
  sim::ProcessId next_id_ = 0;
  double churn_credit_ = 0.0;
  std::vector<ChurnAction> scripted_actions_;  // reused scratch buffer

  std::uint64_t joins_started_ = 0;
  std::uint64_t joins_completed_ = 0;
  std::uint64_t joins_abandoned_ = 0;
  std::uint64_t join_latency_total_ = 0;
};

}  // namespace dynreg::churn
