#include "churn/chronicle.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace dynreg::churn {

namespace {

/// min of the running prefix sum over diff[0..last] (the shared sweep of
/// both min_active queries). Empty-history sentinel collapses to 0.
std::size_t min_prefix(const std::vector<std::int64_t>& diff, sim::Time last) {
  std::int64_t running = 0;
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (sim::Time t = 0; t <= last; ++t) {
    running += diff[static_cast<std::size_t>(t)];
    best = std::min(best, running);
  }
  return best == std::numeric_limits<std::int64_t>::max()
             ? 0
             : static_cast<std::size_t>(std::max<std::int64_t>(0, best));
}

/// Prefix sum of diff[0..t].
std::int64_t prefix_at(const std::vector<std::int64_t>& diff, sim::Time t) {
  std::int64_t running = 0;
  for (sim::Time i = 0; i <= t; ++i) running += diff[static_cast<std::size_t>(i)];
  return running;
}

}  // namespace

Chronicle::Chronicle(const ChronicleOptions& options) : options_(options) {
  if (!options_.aggregate_only) return;
  last_start_ = options_.horizon >= options_.window
                    ? options_.horizon - options_.window
                    : 0;
  inst_diff_.assign(static_cast<std::size_t>(options_.horizon) + 2, 0);
  win_diff_.assign(static_cast<std::size_t>(last_start_) + 2, 0);
}

void Chronicle::note_enter(sim::ProcessId id, sim::Time at, bool initial) {
  Record r;
  r.entered = at;
  r.initial = initial;
  if (options_.aggregate_only) {
    live_[id] = r;
    return;
  }
  // Ids are handed out contiguously, so this is a push_back in the common
  // case; the resize keeps the dense-index invariant if one is ever skipped.
  if (id >= records_.size()) records_.resize(id + 1);
  records_[id] = r;
}

void Chronicle::note_activated(sim::ProcessId id, sim::Time at) {
  if (options_.aggregate_only) {
    const auto it = live_.find(id);
    if (it != live_.end()) it->second.activated = at;
    return;
  }
  records_[id].activated = at;
}

void Chronicle::note_left(sim::ProcessId id, sim::Time at) {
  if (options_.aggregate_only) {
    const auto it = live_.find(id);
    if (it == live_.end()) return;
    fold(it->second, at);
    live_.erase(it);
    return;
  }
  records_[id].left = at;
}

void Chronicle::fold(const Record& r, sim::Time left) {
  if (!r.activated) return;  // never active: contributes to no count
  const sim::Time act = *r.activated;
  // Instant counts: active over [act, left), clipped to [0, horizon].
  if (act <= options_.horizon) {
    inst_diff_[static_cast<std::size_t>(act)] += 1;
    if (left <= options_.horizon) inst_diff_[static_cast<std::size_t>(left)] -= 1;
  }
  // Window-start counts: covers start t iff act <= t and left > t + window,
  // i.e. t in [act, left - window - 1] — the same per-record range the
  // full-mode sweep derives.
  if (act <= last_start_ && left > act + options_.window) {
    const sim::Time hi = std::min<sim::Time>(last_start_, left - options_.window - 1);
    win_diff_[static_cast<std::size_t>(act)] += 1;
    win_diff_[static_cast<std::size_t>(hi) + 1] -= 1;
  }
}

const Chronicle::Record* Chronicle::record(sim::ProcessId id) const {
  if (options_.aggregate_only) {
    const auto it = live_.find(id);
    return it == live_.end() ? nullptr : &it->second;
  }
  return id < records_.size() ? &records_[id] : nullptr;
}

std::vector<std::int64_t> Chronicle::combined_instant() const {
  std::vector<std::int64_t> diff = inst_diff_;
  for (const auto& [id, r] : live_) {
    if (r.activated && *r.activated <= options_.horizon) {
      diff[static_cast<std::size_t>(*r.activated)] += 1;  // live: no end mark
    }
  }
  return diff;
}

std::vector<std::int64_t> Chronicle::combined_window() const {
  std::vector<std::int64_t> diff = win_diff_;
  for (const auto& [id, r] : live_) {
    if (r.activated && *r.activated <= last_start_) {
      diff[static_cast<std::size_t>(*r.activated)] += 1;  // covers through horizon
    }
  }
  return diff;
}

std::size_t Chronicle::active_at(sim::Time t) const {
  if (options_.aggregate_only) {
    const sim::Time at = std::min(t, options_.horizon);
    return static_cast<std::size_t>(
        std::max<std::int64_t>(0, prefix_at(combined_instant(), at)));
  }
  std::size_t n = 0;
  for (const Record& r : records_) {
    if (r.activated && *r.activated <= t && (!r.left || *r.left > t)) ++n;
  }
  return n;
}

std::size_t Chronicle::active_through(sim::Time t1, sim::Time t2) const {
  // A process is active over the half-open interval [activated, left), the
  // same convention as active_at, so A(t1, t2) is a subset of every A(t)
  // with t in [t1, t2].
  if (options_.aggregate_only) {
    // Only the registered window's starts are folded; other spans would
    // silently undercount, so they answer 0 (aggregate callers — the
    // harness — only ever ask for the registered window).
    if (t2 - t1 != options_.window || t1 > last_start_) return 0;
    return static_cast<std::size_t>(
        std::max<std::int64_t>(0, prefix_at(combined_window(), t1)));
  }
  std::size_t n = 0;
  for (const Record& r : records_) {
    if (r.activated && *r.activated <= t1 && (!r.left || *r.left > t2)) ++n;
  }
  return n;
}

std::size_t Chronicle::min_active_through_window(sim::Duration window,
                                                sim::Time horizon) const {
  if (options_.aggregate_only) {
    if (horizon < window) return active_through(0, window);
    const sim::Time last = std::min(horizon - window, last_start_);
    return min_prefix(combined_window(), last);
  }
  if (horizon < window) return active_through(0, window);
  const sim::Time last_start = horizon - window;
  // A record counts for window-start t iff activated <= t and left > t +
  // window, i.e. for the contiguous range t in [activated, left - window - 1].
  std::vector<std::int64_t> diff(static_cast<std::size_t>(last_start) + 2, 0);
  for (const Record& r : records_) {
    if (!r.activated) continue;
    const sim::Time lo = *r.activated;
    if (lo > last_start) continue;
    sim::Time hi = last_start;
    if (r.left) {
      if (*r.left <= lo + window) continue;  // never covers a full window
      hi = std::min<sim::Time>(hi, *r.left - window - 1);
    }
    diff[static_cast<std::size_t>(lo)] += 1;
    diff[static_cast<std::size_t>(hi) + 1] -= 1;
  }
  return min_prefix(diff, last_start);
}

std::size_t Chronicle::min_active_at(sim::Time horizon) const {
  if (options_.aggregate_only) {
    return min_prefix(combined_instant(), std::min(horizon, options_.horizon));
  }
  std::vector<std::int64_t> diff(static_cast<std::size_t>(horizon) + 2, 0);
  for (const Record& r : records_) {
    if (!r.activated || *r.activated > horizon) continue;
    diff[static_cast<std::size_t>(*r.activated)] += 1;
    if (r.left && *r.left <= horizon) diff[static_cast<std::size_t>(*r.left)] -= 1;
  }
  return min_prefix(diff, horizon);
}

}  // namespace dynreg::churn
