#include "churn/chronicle.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace dynreg::churn {

void Chronicle::note_enter(sim::ProcessId id, sim::Time at, bool initial) {
  // Ids are handed out contiguously, so this is a push_back in the common
  // case; the resize keeps the dense-index invariant if one is ever skipped.
  if (id >= records_.size()) records_.resize(id + 1);
  Record r;
  r.entered = at;
  r.initial = initial;
  records_[id] = r;
}

void Chronicle::note_activated(sim::ProcessId id, sim::Time at) {
  records_[id].activated = at;
}

void Chronicle::note_left(sim::ProcessId id, sim::Time at) {
  records_[id].left = at;
}

std::size_t Chronicle::active_at(sim::Time t) const {
  std::size_t n = 0;
  for (const Record& r : records_) {
    if (r.activated && *r.activated <= t && (!r.left || *r.left > t)) ++n;
  }
  return n;
}

std::size_t Chronicle::active_through(sim::Time t1, sim::Time t2) const {
  // A process is active over the half-open interval [activated, left), the
  // same convention as active_at, so A(t1, t2) is a subset of every A(t)
  // with t in [t1, t2].
  std::size_t n = 0;
  for (const Record& r : records_) {
    if (r.activated && *r.activated <= t1 && (!r.left || *r.left > t2)) ++n;
  }
  return n;
}

std::size_t Chronicle::min_active_through_window(sim::Duration window,
                                                sim::Time horizon) const {
  if (horizon < window) return active_through(0, window);
  const sim::Time last_start = horizon - window;
  // A record counts for window-start t iff activated <= t and left > t +
  // window, i.e. for the contiguous range t in [activated, left - window - 1].
  std::vector<std::int64_t> diff(static_cast<std::size_t>(last_start) + 2, 0);
  for (const Record& r : records_) {
    if (!r.activated) continue;
    const sim::Time lo = *r.activated;
    if (lo > last_start) continue;
    sim::Time hi = last_start;
    if (r.left) {
      if (*r.left <= lo + window) continue;  // never covers a full window
      hi = std::min<sim::Time>(hi, *r.left - window - 1);
    }
    diff[static_cast<std::size_t>(lo)] += 1;
    diff[static_cast<std::size_t>(hi) + 1] -= 1;
  }
  std::int64_t running = 0;
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (sim::Time t = 0; t <= last_start; ++t) {
    running += diff[static_cast<std::size_t>(t)];
    best = std::min(best, running);
  }
  return best == std::numeric_limits<std::int64_t>::max()
             ? 0
             : static_cast<std::size_t>(std::max<std::int64_t>(0, best));
}

std::size_t Chronicle::min_active_at(sim::Time horizon) const {
  std::vector<std::int64_t> diff(static_cast<std::size_t>(horizon) + 2, 0);
  for (const Record& r : records_) {
    if (!r.activated || *r.activated > horizon) continue;
    diff[static_cast<std::size_t>(*r.activated)] += 1;
    if (r.left && *r.left <= horizon) diff[static_cast<std::size_t>(*r.left)] -= 1;
  }
  std::int64_t running = 0;
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (sim::Time t = 0; t <= horizon; ++t) {
    running += diff[static_cast<std::size_t>(t)];
    best = std::min(best, running);
  }
  return best == std::numeric_limits<std::int64_t>::max()
             ? 0
             : static_cast<std::size_t>(std::max<std::int64_t>(0, best));
}

}  // namespace dynreg::churn
