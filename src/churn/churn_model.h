// Churn models. The paper's model: at each time unit a fraction c of the n
// processes joins and the same fraction leaves, so the system size is
// constant while its composition changes continuously.
//
// A model is either *rate-based* (the system's credit arithmetic decides
// when a join/leave pair fires; the victim is picked by policy + rng) or
// *scripted* (the model dictates the exact ordered actions per tick — how
// trace replay and schedule perturbation drive churn, see src/replay/).
#pragma once

#include <vector>

#include "sim/event_queue.h"

namespace dynreg::churn {

/// One membership action a scripted model dictates. Joins carry no id: the
/// system assigns process ids deterministically (next_id_), so replaying
/// the same join sequence reproduces the same ids.
struct ChurnAction {
  bool join = false;
  sim::ProcessId victim = 0;  ///< leaves only
};

class ChurnModel {
 public:
  virtual ~ChurnModel() = default;

  /// Fraction of the (constant) system size that joins — and leaves — per
  /// time unit. Rate-based models only; ignored when scripted() is true.
  virtual double rate() const = 0;

  /// Scripted models bypass the rate/credit arithmetic: the system runs its
  /// churn tick loop and executes actions_at() verbatim each tick.
  [[nodiscard]] virtual bool scripted() const { return false; }

  /// Appends this tick's ordered actions (scripted models only). Called
  /// once per churn tick with a monotonically increasing `now`; a model
  /// must emit each action exactly once (actions stamped earlier than a
  /// missed tick are caught up on the next call).
  virtual void actions_at(sim::Time now, std::vector<ChurnAction>& out) {
    (void)now;
    (void)out;
  }
};

class NoChurn final : public ChurnModel {
 public:
  double rate() const override { return 0.0; }
};

class ConstantChurn final : public ChurnModel {
 public:
  explicit ConstantChurn(double c) : c_(c < 0.0 ? 0.0 : c) {}
  double rate() const override { return c_; }

 private:
  double c_;
};

}  // namespace dynreg::churn
