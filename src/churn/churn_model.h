// Churn models. The paper's model: at each time unit a fraction c of the n
// processes joins and the same fraction leaves, so the system size is
// constant while its composition changes continuously.
#pragma once

namespace dynreg::churn {

class ChurnModel {
 public:
  virtual ~ChurnModel() = default;

  /// Fraction of the (constant) system size that joins — and leaves — per
  /// time unit.
  virtual double rate() const = 0;
};

class NoChurn final : public ChurnModel {
 public:
  double rate() const override { return 0.0; }
};

class ConstantChurn final : public ChurnModel {
 public:
  explicit ConstantChurn(double c) : c_(c < 0.0 ? 0.0 : c) {}
  double rate() const override { return c_; }

 private:
  double c_;
};

}  // namespace dynreg::churn
