// Ground-truth record of every process's lifetime: when it entered, when its
// join completed (it became active), and when it left. The consistency and
// Lemma 2 analyses are computed against this record, never against protocol
// state — the chronicle is the omniscient observer the paper's proofs reason
// with (A(t), A(t1, t2)).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "sim/simulation.h"

namespace dynreg::churn {

/// Memory policy for the chronicle. The default (full mode) retains one
/// Record per process that ever entered — O(joins) memory, which a 1e5-scale
/// sharded run pays once per shard. Aggregate-only mode keeps the A(t)
/// accounting exact while holding only *live* members: when a process
/// leaves, its completed [activated, left) interval is folded into
/// difference-array counters over [0, horizon] (instant counts plus
/// window-start counts for the one pre-registered window), and the record is
/// dropped. min_active_at / min_active_through_window / active_at answer
/// identically to full mode (regression-tested); records() is empty and
/// active_through is only answerable for the registered window.
struct ChronicleOptions {
  bool aggregate_only = false;
  /// The one A(t, t + window) window aggregate mode can answer (the harness
  /// queries 3*delta). Ignored in full mode.
  sim::Duration window = 0;
  /// Run horizon bounding the counter arrays. Queries clamp to it. Ignored
  /// in full mode.
  sim::Time horizon = 0;
};

class Chronicle {
 public:
  struct Record {
    sim::Time entered = 0;
    std::optional<sim::Time> activated;  // unset: join never completed
    std::optional<sim::Time> left;       // unset: still in the system
    bool initial = false;
  };

  Chronicle() = default;
  explicit Chronicle(const ChronicleOptions& options);

  void note_enter(sim::ProcessId id, sim::Time at, bool initial);
  void note_activated(sim::ProcessId id, sim::Time at);
  void note_left(sim::ProcessId id, sim::Time at);

  /// Dense, id-indexed records: System hands out ids contiguously from 0, so
  /// index == ProcessId. (Was a std::map; at 1e5 processes the analyses
  /// below walk the whole history, and a contiguous sweep beats a pointer
  /// chase per process.) Empty in aggregate-only mode — departed processes
  /// survive only as counter contributions there.
  [[nodiscard]] const std::vector<Record>& records() const { return records_; }

  /// The record for `id`. Full mode: nullptr only if the id never entered.
  /// Aggregate mode: live members only (nullptr once the process left).
  [[nodiscard]] const Record* record(sim::ProcessId id) const;

  /// |A(t)|: processes active at instant t (activated <= t, not yet left).
  std::size_t active_at(sim::Time t) const;

  /// |A(t1, t2)|: processes active throughout the whole interval [t1, t2] —
  /// the quantity of the paper's Lemma 2. Aggregate mode answers only for
  /// t2 - t1 == options.window (the pre-registered window).
  std::size_t active_through(sim::Time t1, sim::Time t2) const;

  /// min over t in [0, horizon - window] of |A(t, t + window)|, computed with
  /// one difference-array sweep (linear in horizon + records, not quadratic).
  std::size_t min_active_through_window(sim::Duration window, sim::Time horizon) const;

  /// min over t in [0, horizon] of |A(t)|.
  std::size_t min_active_at(sim::Time horizon) const;

 private:
  /// Folds a departed member's completed intervals into the counters
  /// (aggregate mode only).
  void fold(const Record& r, sim::Time left);

  /// Instant/window counts covering [0, t], folded + live combined.
  [[nodiscard]] std::vector<std::int64_t> combined_instant() const;
  [[nodiscard]] std::vector<std::int64_t> combined_window() const;

  ChronicleOptions options_;
  std::vector<Record> records_;  // indexed by ProcessId (full mode)

  // Aggregate mode state. live_ holds members that entered and have not
  // left (std::map: ordered, pointer-stable — record() hands out pointers).
  std::map<sim::ProcessId, Record> live_;
  /// last window start: options.horizon - window, floored at 0.
  sim::Time last_start_ = 0;
  std::vector<std::int64_t> inst_diff_;  // diff array over instants [0, horizon]
  std::vector<std::int64_t> win_diff_;   // diff array over window starts [0, last_start_]
};

}  // namespace dynreg::churn
