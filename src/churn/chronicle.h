// Ground-truth record of every process's lifetime: when it entered, when its
// join completed (it became active), and when it left. The consistency and
// Lemma 2 analyses are computed against this record, never against protocol
// state — the chronicle is the omniscient observer the paper's proofs reason
// with (A(t), A(t1, t2)).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "sim/simulation.h"

namespace dynreg::churn {

class Chronicle {
 public:
  struct Record {
    sim::Time entered = 0;
    std::optional<sim::Time> activated;  // unset: join never completed
    std::optional<sim::Time> left;       // unset: still in the system
    bool initial = false;
  };

  void note_enter(sim::ProcessId id, sim::Time at, bool initial);
  void note_activated(sim::ProcessId id, sim::Time at);
  void note_left(sim::ProcessId id, sim::Time at);

  /// Dense, id-indexed records: System hands out ids contiguously from 0, so
  /// index == ProcessId. (Was a std::map; at 1e5 processes the analyses
  /// below walk the whole history, and a contiguous sweep beats a pointer
  /// chase per process.)
  [[nodiscard]] const std::vector<Record>& records() const { return records_; }

  /// The record for `id`, or nullptr if that id never entered.
  [[nodiscard]] const Record* record(sim::ProcessId id) const {
    return id < records_.size() ? &records_[id] : nullptr;
  }

  /// |A(t)|: processes active at instant t (activated <= t, not yet left).
  std::size_t active_at(sim::Time t) const;

  /// |A(t1, t2)|: processes active throughout the whole interval [t1, t2] —
  /// the quantity of the paper's Lemma 2.
  std::size_t active_through(sim::Time t1, sim::Time t2) const;

  /// min over t in [0, horizon - window] of |A(t, t + window)|, computed with
  /// one difference-array sweep (linear in horizon + records, not quadratic).
  std::size_t min_active_through_window(sim::Duration window, sim::Time horizon) const;

  /// min over t in [0, horizon] of |A(t)|.
  std::size_t min_active_at(sim::Time horizon) const;

 private:
  std::vector<Record> records_;  // indexed by ProcessId
};

}  // namespace dynreg::churn
