#include "churn/system.h"

#include <algorithm>
#include <utility>

namespace dynreg::churn {

namespace {

// Sorted-vector erase; no-op when absent. Keeps ascending order (and with it
// the deterministic iteration / RNG draw sequence) without a tree.
void erase_sorted(std::vector<sim::ProcessId>& ids, sim::ProcessId id) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it != ids.end() && *it == id) ids.erase(it);
}

void insert_sorted(std::vector<sim::ProcessId>& ids, sim::ProcessId id) {
  ids.insert(std::lower_bound(ids.begin(), ids.end(), id), id);
}

}  // namespace

System::System(sim::Simulation& sim, net::Network& net, SystemConfig config,
               std::unique_ptr<ChurnModel> churn, NodeFactory factory)
    : sim_(sim),
      net_(net),
      config_(std::move(config)),
      churn_(std::move(churn)),
      factory_(std::move(factory)),
      chronicle_(config_.chronicle) {}

void System::bootstrap() {
  for (std::size_t i = 0; i < config_.initial_size; ++i) add_member(/*initial=*/true);
  if (churn_ && (churn_->rate() > 0.0 || churn_->scripted())) {
    sim_.schedule_after(config_.churn_tick, [this] { churn_step(); });
  }
}

sim::ProcessId System::spawn() {
  ++joins_started_;
  return add_member(/*initial=*/false);
}

void System::ensure_slot(sim::ProcessId id) {
  if (id < node_.size()) return;
  const std::size_t n = id + 1;
  ctx_.resize(n);
  node_.resize(n);
  activated_at_.resize(n, 0);
  active_flag_.resize(n, 0);
}

sim::ProcessId System::add_member(bool initial) {
  const sim::ProcessId id = next_id_++;
  chronicle_.note_enter(id, sim_.now(), initial);
  // Grow the columns before the node exists: a bootstrap node's constructor
  // notifies activation synchronously, and the callback writes the columns.
  ensure_slot(id);

  auto ctx = std::make_unique<node::Context>(sim_, net_, id, [this, id] {
    // Runs when the node's join protocol completes (or immediately, for
    // bootstrap members). The node_ column entry may not be set yet when a
    // constructor notifies, so only chronicle/active bookkeeping lives here.
    const Chronicle::Record* rec = chronicle_.record(id);
    const bool initial_member = rec != nullptr && rec->initial;
    chronicle_.note_activated(id, sim_.now());
    activated_at_[id] = sim_.now();
    active_flag_[id] = 1;
    insert_sorted(active_ids_, id);
    if (!initial_member) {
      ++joins_completed_;
      join_latency_total_ +=
          sim_.now() - (rec != nullptr ? rec->entered : sim_.now());
    }
  });
  std::unique_ptr<node::Node> node = factory_(id, *ctx, initial);

  ctx_[id] = std::move(ctx);
  node_[id] = std::move(node);
  member_ids_.push_back(id);  // ids are monotone: append keeps the order
  node::Node* raw = node_[id].get();
  net_.attach(id, [raw](sim::ProcessId from, const net::Payload& payload) {
    raw->on_message(from, payload);
  });
  return id;
}

void System::leave(sim::ProcessId id) {
  if (!is_member(id)) return;
  if (active_flag_[id] == 0) ++joins_abandoned_;
  chronicle_.note_left(id, sim_.now());
  net_.detach(id);
  ctx_[id]->invalidate();
  // Clear every membership column *before* resolving the node's in-flight
  // operations: a resolution hook that synchronously issues a new operation
  // must observe the departure (find() returning nullptr, the id absent
  // from active_ids()) rather than a half-torn-down node whose completion
  // would leak. Timers are already dead and the network slot gone, so the
  // resolutions can schedule follow-up events (e.g. client retries) but can
  // no longer reach this node.
  std::unique_ptr<node::Context> ctx = std::move(ctx_[id]);
  std::unique_ptr<node::Node> node = std::move(node_[id]);
  active_flag_[id] = 0;
  erase_sorted(active_ids_, id);
  erase_sorted(member_ids_, id);
  node->on_departure();
}

node::Node* System::find(sim::ProcessId id) {
  return is_member(id) ? node_[id].get() : nullptr;
}

void System::churn_step() {
  if (churn_->scripted()) {
    scripted_churn_step();
  } else {
    // The paper's model: c * n processes join and c * n leave per time unit,
    // with n constant. Fractional amounts accumulate across ticks.
    churn_credit_ += churn_->rate() * static_cast<double>(config_.initial_size) *
                     static_cast<double>(config_.churn_tick);
    while (churn_credit_ >= 1.0) {
      churn_credit_ -= 1.0;
      if (observer_ != nullptr) observer_->on_churn_join(sim_.now());
      spawn();
      const sim::ProcessId victim = pick_victim();
      if (is_member(victim)) {
        if (observer_ != nullptr) observer_->on_churn_leave(sim_.now(), victim);
        leave(victim);
      }
    }
  }
  sim_.schedule_after(config_.churn_tick, [this] { churn_step(); });
}

void System::scripted_churn_step() {
  // Scripted churn (trace replay / schedule perturbation): execute the
  // model's actions verbatim, in order, preserving the spawn/leave
  // interleaving of the recorded run — the interleave decides which
  // broadcasts the victim still receives, so it is part of the schedule.
  scripted_actions_.clear();
  churn_->actions_at(sim_.now(), scripted_actions_);
  for (const ChurnAction& action : scripted_actions_) {
    if (action.join) {
      if (observer_ != nullptr) observer_->on_churn_join(sim_.now());
      spawn();
    } else if (is_member(action.victim)) {
      // A perturbed trace may name a victim that already left (or was
      // never spawned on the diverged path); the leave simply has no
      // effect, mirroring the rate-based path's membership check.
      if (observer_ != nullptr) observer_->on_churn_leave(sim_.now(), action.victim);
      leave(action.victim);
    }
  }
}

sim::ProcessId System::pick_victim() {
  auto exempt = [this](sim::ProcessId id) {
    return std::find(config_.exempt.begin(), config_.exempt.end(), id) !=
           config_.exempt.end();
  };

  if (config_.leave_policy == LeavePolicy::kOldestActiveFirst) {
    // Adversarial: remove the member that has been active longest — the one
    // most likely to hold the register value (Lemma 2's worst case). The
    // ascending-id sweep reproduces the old map's tie-break (lowest id).
    sim::ProcessId best = 0;
    bool found = false;
    sim::Time best_at = 0;
    for (const sim::ProcessId id : active_ids_) {
      if (exempt(id)) continue;
      if (!found || activated_at_[id] < best_at) {
        best = id;
        best_at = activated_at_[id];
        found = true;
      }
    }
    if (found) return best;
    // No active candidates: fall through to a uniform pick among everyone.
  }

  std::vector<sim::ProcessId> candidates;
  candidates.reserve(member_ids_.size());
  for (const sim::ProcessId id : member_ids_) {
    if (!exempt(id)) candidates.push_back(id);
  }
  if (candidates.empty()) return next_id_;  // nobody eligible; no-op leave
  const std::uint64_t idx = sim_.rng().uniform_int(0, candidates.size() - 1);
  return candidates[static_cast<std::size_t>(idx)];
}

}  // namespace dynreg::churn
