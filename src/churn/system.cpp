#include "churn/system.h"

#include <algorithm>
#include <utility>

namespace dynreg::churn {

System::System(sim::Simulation& sim, net::Network& net, SystemConfig config,
               std::unique_ptr<ChurnModel> churn, NodeFactory factory)
    : sim_(sim),
      net_(net),
      config_(std::move(config)),
      churn_(std::move(churn)),
      factory_(std::move(factory)) {}

void System::bootstrap() {
  for (std::size_t i = 0; i < config_.initial_size; ++i) add_member(/*initial=*/true);
  if (churn_ && (churn_->rate() > 0.0 || churn_->scripted())) {
    sim_.schedule_after(config_.churn_tick, [this] { churn_step(); });
  }
}

sim::ProcessId System::spawn() {
  ++joins_started_;
  return add_member(/*initial=*/false);
}

sim::ProcessId System::add_member(bool initial) {
  const sim::ProcessId id = next_id_++;
  chronicle_.note_enter(id, sim_.now(), initial);

  Member member;
  member.ctx = std::make_unique<node::Context>(sim_, net_, id, [this, id] {
    // Runs when the node's join protocol completes (or immediately, for
    // bootstrap members). The member map entry may not exist yet when a
    // constructor notifies, so only chronicle/active bookkeeping lives here.
    const auto rec = chronicle_.records().find(id);
    const bool initial_member = rec != chronicle_.records().end() && rec->second.initial;
    chronicle_.note_activated(id, sim_.now());
    active_.emplace(id, sim_.now());
    const auto it = members_.find(id);
    if (it != members_.end()) it->second.active = true;
    if (!initial_member) {
      ++joins_completed_;
      join_latency_total_ += sim_.now() - (rec != chronicle_.records().end()
                                               ? rec->second.entered
                                               : sim_.now());
    }
  });
  member.node = factory_(id, *member.ctx, initial);

  auto [it, inserted] = members_.emplace(id, std::move(member));
  if (active_.count(id) != 0) it->second.active = true;  // ctor notified already
  node::Node* raw = it->second.node.get();
  net_.attach(id, [raw](sim::ProcessId from, const net::Payload& payload) {
    raw->on_message(from, payload);
  });
  return id;
}

void System::leave(sim::ProcessId id) {
  const auto it = members_.find(id);
  if (it == members_.end()) return;
  if (!it->second.active) ++joins_abandoned_;
  chronicle_.note_left(id, sim_.now());
  net_.detach(id);
  it->second.ctx->invalidate();
  // Remove the member from every map *before* resolving its in-flight
  // operations: a resolution hook that synchronously issues a new operation
  // must observe the departure (find() returning nullptr, the id absent
  // from active_ids()) rather than a half-torn-down node whose completion
  // would leak. Timers are already dead and the network slot gone, so the
  // resolutions can schedule follow-up events (e.g. client retries) but can
  // no longer reach this node.
  Member member = std::move(it->second);
  active_.erase(id);
  members_.erase(it);
  member.node->on_departure();
}

node::Node* System::find(sim::ProcessId id) {
  const auto it = members_.find(id);
  return it == members_.end() ? nullptr : it->second.node.get();
}

std::vector<sim::ProcessId> System::active_ids() const {
  std::vector<sim::ProcessId> ids;
  ids.reserve(active_.size());
  for (const auto& [id, at] : active_) ids.push_back(id);
  return ids;
}

void System::churn_step() {
  if (churn_->scripted()) {
    scripted_churn_step();
  } else {
    // The paper's model: c * n processes join and c * n leave per time unit,
    // with n constant. Fractional amounts accumulate across ticks.
    churn_credit_ += churn_->rate() * static_cast<double>(config_.initial_size) *
                     static_cast<double>(config_.churn_tick);
    while (churn_credit_ >= 1.0) {
      churn_credit_ -= 1.0;
      if (observer_ != nullptr) observer_->on_churn_join(sim_.now());
      spawn();
      const sim::ProcessId victim = pick_victim();
      if (members_.count(victim) != 0) {
        if (observer_ != nullptr) observer_->on_churn_leave(sim_.now(), victim);
        leave(victim);
      }
    }
  }
  sim_.schedule_after(config_.churn_tick, [this] { churn_step(); });
}

void System::scripted_churn_step() {
  // Scripted churn (trace replay / schedule perturbation): execute the
  // model's actions verbatim, in order, preserving the spawn/leave
  // interleaving of the recorded run — the interleave decides which
  // broadcasts the victim still receives, so it is part of the schedule.
  scripted_actions_.clear();
  churn_->actions_at(sim_.now(), scripted_actions_);
  for (const ChurnAction& action : scripted_actions_) {
    if (action.join) {
      if (observer_ != nullptr) observer_->on_churn_join(sim_.now());
      spawn();
    } else if (members_.count(action.victim) != 0) {
      // A perturbed trace may name a victim that already left (or was
      // never spawned on the diverged path); the leave simply has no
      // effect, mirroring the rate-based path's members_ check.
      if (observer_ != nullptr) observer_->on_churn_leave(sim_.now(), action.victim);
      leave(action.victim);
    }
  }
}

sim::ProcessId System::pick_victim() {
  auto exempt = [this](sim::ProcessId id) {
    return std::find(config_.exempt.begin(), config_.exempt.end(), id) !=
           config_.exempt.end();
  };

  if (config_.leave_policy == LeavePolicy::kOldestActiveFirst) {
    // Adversarial: remove the member that has been active longest — the one
    // most likely to hold the register value (Lemma 2's worst case).
    sim::ProcessId best = 0;
    bool found = false;
    sim::Time best_at = 0;
    for (const auto& [id, at] : active_) {
      if (exempt(id)) continue;
      if (!found || at < best_at) {
        best = id;
        best_at = at;
        found = true;
      }
    }
    if (found) return best;
    // No active candidates: fall through to a uniform pick among everyone.
  }

  std::vector<sim::ProcessId> candidates;
  candidates.reserve(members_.size());
  for (const auto& [id, m] : members_) {
    if (!exempt(id)) candidates.push_back(id);
  }
  if (candidates.empty()) return next_id_;  // nobody eligible; no-op leave
  const std::uint64_t idx = sim_.rng().uniform_int(0, candidates.size() - 1);
  return candidates[static_cast<std::size_t>(idx)];
}

}  // namespace dynreg::churn
