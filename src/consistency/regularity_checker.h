// Consistency checkers.
//
// RegularityChecker verifies the (generalized, concurrent-write-ready)
// regular-register predicate: every completed read must return either the
// value of a write concurrent with it, or the value of a completed write not
// superseded by another write that completed before the read began. A "stale
// read" — a value strictly older than the latest completed write — is the
// violation Theorem 1 forbids below the churn threshold.
//
// AtomicityChecker counts new/old inversions: a read that returns an older
// value than a read that finished strictly before it started. Regular
// registers permit these (Section 1's figure); atomic ones do not.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "consistency/history.h"
#include "dynreg/types.h"

namespace dynreg::consistency {

struct Violation {
  OpId read = 0;
  Value returned = kBottom;
  std::string detail;
};

struct [[nodiscard]] RegularityReport {
  std::size_t reads_checked = 0;
  /// Pairs of (real) writes whose intervals overlap — the generalized
  /// predicate's concurrency measure, reported by the multi-writer bench.
  std::size_t concurrent_write_pairs = 0;
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  double violation_rate() const {
    return reads_checked == 0
               ? 0.0
               : static_cast<double>(violations.size()) /
                     static_cast<double>(reads_checked);
  }
};

class RegularityChecker {
 public:
  /// Checks every completed read in `history` against the generalized
  /// regular-register predicate; pure function of the history, safe to run
  /// concurrently on different histories.
  RegularityReport check(const History& history) const;
};

struct [[nodiscard]] InversionReport {
  std::size_t reads_checked = 0;
  std::size_t inversion_count = 0;
};

class AtomicityChecker {
 public:
  /// Counts new/old inversions among completed, non-concurrent read pairs.
  InversionReport check(const History& history) const;
};

}  // namespace dynreg::consistency
