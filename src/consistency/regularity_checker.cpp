#include "consistency/regularity_checker.h"

#include <algorithm>
#include <map>
#include <set>

namespace dynreg::consistency {

RegularityReport RegularityChecker::check(const History& history) const {
  RegularityReport report;
  const auto& writes = history.writes();
  const auto& reads = history.reads();

  // Concurrent-write pairs (real writes only; incomplete writes extend to
  // infinity).
  for (std::size_t i = 1; i < writes.size(); ++i) {
    for (std::size_t j = i + 1; j < writes.size(); ++j) {
      const auto& a = writes[i];
      const auto& b = writes[j];
      const bool disjoint = (a.end && *a.end < b.begin) || (b.end && *b.end < a.begin);
      if (!disjoint) ++report.concurrent_write_pairs;
    }
  }

  for (std::size_t ri = 0; ri < reads.size(); ++ri) {
    const auto& r = reads[ri];
    if (!r.end) continue;  // the predicate constrains completed reads only
    ++report.reads_checked;

    // B* = the latest begin among writes completed strictly before the read
    // began. A completed write is superseded iff some such write began
    // strictly after it ended; equivalently iff its end < B*. Boundary ties
    // (a write completing exactly when the read begins) count as concurrent,
    // so same-tick event ordering inside the simulator can never manufacture
    // a violation.
    sim::Time latest_begin = 0;
    for (const auto& w : writes) {
      if (w.end && *w.end < r.begin) latest_begin = std::max(latest_begin, w.begin);
    }

    std::set<Value> legal;
    for (const auto& w : writes) {
      const bool completed_before = w.end && *w.end < r.begin;
      const bool concurrent = !completed_before && w.begin <= *r.end;
      if (concurrent) {
        legal.insert(w.value);
      } else if (completed_before && *w.end >= latest_begin) {
        legal.insert(w.value);
      }
    }

    if (legal.count(r.value) == 0) {
      Violation v;
      v.read = ri;
      v.returned = r.value;
      v.detail = r.value == kBottom ? "read returned bottom" : "stale read";
      report.violations.push_back(v);
    }
  }
  return report;
}

InversionReport AtomicityChecker::check(const History& history) const {
  InversionReport report;
  const auto& writes = history.writes();
  const auto& reads = history.reads();

  // Map each returned value to the write that produced it. The workload
  // driver issues globally unique values, so the mapping is unambiguous;
  // reads of unknown values (e.g. bottom) are excluded from the analysis.
  std::map<Value, std::size_t> write_index;
  for (std::size_t wi = 0; wi < writes.size(); ++wi) {
    write_index.emplace(writes[wi].value, wi);
  }

  struct Entry {
    sim::Time begin = 0;
    sim::Time end = 0;
    std::size_t widx = 0;
  };
  std::vector<Entry> done;
  for (const auto& r : reads) {
    if (!r.end) continue;
    const auto it = write_index.find(r.value);
    if (it == write_index.end()) continue;
    done.push_back(Entry{r.begin, *r.end, it->second});
  }
  report.reads_checked = done.size();

  // A read is inverted if some read that finished strictly before it began
  // returned a strictly newer write — "newer" in the completed-before
  // partial order (w precedes w' iff w completed before w' began), which is
  // well defined for concurrent multi-writer histories where insertion
  // order is not recency. Sweep reads by begin time while keeping a running
  // prefix-max of the returned writes' begin times ordered by read end.
  std::vector<std::size_t> by_end(done.size());
  for (std::size_t i = 0; i < done.size(); ++i) by_end[i] = i;
  std::sort(by_end.begin(), by_end.end(), [&done](std::size_t a, std::size_t b) {
    return done[a].end < done[b].end;
  });
  std::vector<std::size_t> by_begin(done.size());
  for (std::size_t i = 0; i < done.size(); ++i) by_begin[i] = i;
  std::sort(by_begin.begin(), by_begin.end(), [&done](std::size_t a, std::size_t b) {
    return done[a].begin < done[b].begin;
  });

  std::size_t cursor = 0;
  sim::Time max_prev_write_begin = 0;
  bool any_seen = false;
  for (const std::size_t i : by_begin) {
    while (cursor < by_end.size() && done[by_end[cursor]].end < done[i].begin) {
      max_prev_write_begin =
          std::max(max_prev_write_begin, writes[done[by_end[cursor]].widx].begin);
      any_seen = true;
      ++cursor;
    }
    const auto& w = writes[done[i].widx];
    // Inverted iff this read's write completed before an earlier-returned
    // write even began. Incomplete writes precede nothing.
    if (any_seen && w.end && *w.end < max_prev_write_begin) ++report.inversion_count;
  }
  return report;
}

}  // namespace dynreg::consistency
