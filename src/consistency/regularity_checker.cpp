#include "consistency/regularity_checker.h"

#include <algorithm>
#include <map>
#include <utility>

namespace dynreg::consistency {

RegularityReport RegularityChecker::check(const History& history) const {
  RegularityReport report;
  const auto& writes = history.writes();
  const auto& reads = history.reads();

  // Everything below is sort-once + indexed lookup; the previous
  // implementation rescanned the whole write vector per pair and per read,
  // which was quadratic in long sweep histories.

  // Completed writes ordered by end time, with a running prefix-max of
  // their begin times. Answers, by binary search on r.begin, both "how many
  // writes completed strictly before this read began" and "what is the
  // latest begin among them" (B*).
  struct CompletedWrite {
    sim::Time end = 0;
    sim::Time begin = 0;
  };
  std::vector<CompletedWrite> by_end;
  by_end.reserve(writes.size());
  for (const auto& w : writes) {
    if (w.end) by_end.push_back(CompletedWrite{*w.end, w.begin});
  }
  std::sort(by_end.begin(), by_end.end(),
            [](const CompletedWrite& a, const CompletedWrite& b) { return a.end < b.end; });
  std::vector<sim::Time> prefix_max_begin(by_end.size());
  sim::Time running = 0;
  for (std::size_t i = 0; i < by_end.size(); ++i) {
    running = std::max(running, by_end[i].begin);
    prefix_max_begin[i] = running;
  }
  const auto completed_before = [&by_end](sim::Time at) {
    // Number of writes with end strictly < at == index of the first end >= at.
    return static_cast<std::size_t>(
        std::lower_bound(by_end.begin(), by_end.end(), at,
                         [](const CompletedWrite& w, sim::Time t) { return w.end < t; }) -
        by_end.begin());
  };

  // Concurrent-write pairs (real writes only — the initial pseudo-write at
  // index 0 is excluded; incomplete writes extend to infinity). Two write
  // intervals are disjoint iff one completes strictly before the other
  // begins, and at most one of the two orderings can hold, so
  //   concurrent = all pairs - sum over writes of |{completed ends < begin}|.
  // Counted over the real writes only, hence the dedicated sorted-ends
  // array rather than by_end (which serves the reads and includes index 0).
  {
    std::vector<sim::Time> real_ends;
    real_ends.reserve(writes.size());
    for (std::size_t i = 1; i < writes.size(); ++i) {
      if (writes[i].end) real_ends.push_back(*writes[i].end);
    }
    std::sort(real_ends.begin(), real_ends.end());
    const std::size_t m = writes.empty() ? 0 : writes.size() - 1;
    std::size_t disjoint = 0;
    for (std::size_t i = 1; i < writes.size(); ++i) {
      disjoint += static_cast<std::size_t>(
          std::lower_bound(real_ends.begin(), real_ends.end(), writes[i].begin) -
          real_ends.begin());
    }
    report.concurrent_write_pairs = m * (m - 1) / 2 - disjoint;
  }

  // Writes indexed by value, so the legality test for a read touches only
  // the writes that could have produced its value (the workload driver
  // issues globally unique values, so typically exactly one). A sorted
  // (value, write index) array + binary search rather than a hash map: the
  // candidate scan below iterates the per-value bucket, and hash-map bucket
  // order is whatever the hasher made of it — this keeps the scan in write
  // order deterministically (and drops the per-node allocations).
  std::vector<std::pair<Value, std::size_t>> writes_by_value;
  writes_by_value.reserve(writes.size());
  for (std::size_t wi = 0; wi < writes.size(); ++wi) {
    writes_by_value.emplace_back(writes[wi].value, wi);
  }
  std::sort(writes_by_value.begin(), writes_by_value.end());

  for (std::size_t ri = 0; ri < reads.size(); ++ri) {
    const auto& r = reads[ri];
    if (!r.end) continue;  // the predicate constrains completed reads only
    ++report.reads_checked;

    // B* = the latest begin among writes completed strictly before the read
    // began. A completed write is superseded iff some such write began
    // strictly after it ended; equivalently iff its end < B*. Boundary ties
    // (a write completing exactly when the read begins) count as concurrent,
    // so same-tick event ordering inside the simulator can never manufacture
    // a violation.
    const std::size_t k = completed_before(r.begin);
    const sim::Time latest_begin = k == 0 ? 0 : prefix_max_begin[k - 1];

    // The returned value is legal iff some write of that value is either
    // concurrent with the read or completed-before but not superseded.
    bool legal = false;
    for (auto it = std::lower_bound(
             writes_by_value.begin(), writes_by_value.end(), r.value,
             [](const std::pair<Value, std::size_t>& p, Value v) { return p.first < v; });
         it != writes_by_value.end() && it->first == r.value; ++it) {
      const auto& w = writes[it->second];
      const bool w_completed_before = w.end && *w.end < r.begin;
      if (w_completed_before ? *w.end >= latest_begin : w.begin <= *r.end) {
        legal = true;
        break;
      }
    }

    if (!legal) {
      Violation v;
      v.read = ri;
      v.returned = r.value;
      v.detail = r.value == kBottom ? "read returned bottom" : "stale read";
      report.violations.push_back(v);
    }
  }
  return report;
}

InversionReport AtomicityChecker::check(const History& history) const {
  InversionReport report;
  const auto& writes = history.writes();
  const auto& reads = history.reads();

  // Map each returned value to the write that produced it. The workload
  // driver issues globally unique values, so the mapping is unambiguous;
  // reads of unknown values (e.g. bottom) are excluded from the analysis.
  std::map<Value, std::size_t> write_index;
  for (std::size_t wi = 0; wi < writes.size(); ++wi) {
    write_index.emplace(writes[wi].value, wi);
  }

  struct Entry {
    sim::Time begin = 0;
    sim::Time end = 0;
    std::size_t widx = 0;
  };
  std::vector<Entry> done;
  for (const auto& r : reads) {
    if (!r.end) continue;
    const auto it = write_index.find(r.value);
    if (it == write_index.end()) continue;
    done.push_back(Entry{r.begin, *r.end, it->second});
  }
  report.reads_checked = done.size();

  // A read is inverted if some read that finished strictly before it began
  // returned a strictly newer write — "newer" in the completed-before
  // partial order (w precedes w' iff w completed before w' began), which is
  // well defined for concurrent multi-writer histories where insertion
  // order is not recency. Sweep reads by begin time while keeping a running
  // prefix-max of the returned writes' begin times ordered by read end.
  std::vector<std::size_t> by_end(done.size());
  for (std::size_t i = 0; i < done.size(); ++i) by_end[i] = i;
  std::sort(by_end.begin(), by_end.end(), [&done](std::size_t a, std::size_t b) {
    return done[a].end < done[b].end;
  });
  std::vector<std::size_t> by_begin(done.size());
  for (std::size_t i = 0; i < done.size(); ++i) by_begin[i] = i;
  std::sort(by_begin.begin(), by_begin.end(), [&done](std::size_t a, std::size_t b) {
    return done[a].begin < done[b].begin;
  });

  std::size_t cursor = 0;
  sim::Time max_prev_write_begin = 0;
  bool any_seen = false;
  for (const std::size_t i : by_begin) {
    while (cursor < by_end.size() && done[by_end[cursor]].end < done[i].begin) {
      max_prev_write_begin =
          std::max(max_prev_write_begin, writes[done[by_end[cursor]].widx].begin);
      any_seen = true;
      ++cursor;
    }
    const auto& w = writes[done[i].widx];
    // Inverted iff this read's write completed before an earlier-returned
    // write even began. Incomplete writes precede nothing.
    if (any_seen && w.end && *w.end < max_prev_write_begin) ++report.inversion_count;
  }
  return report;
}

}  // namespace dynreg::consistency
