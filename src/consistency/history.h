// Operation history: the ground-truth log of read/write invocations and
// responses, recorded by the experiment driver (never by protocol nodes).
// The checkers run over it post-hoc.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "dynreg/types.h"
#include "sim/simulation.h"

namespace dynreg::consistency {

using OpId = std::size_t;

class History {
 public:
  struct WriteOp {
    sim::ProcessId writer = 0;
    sim::Time begin = 0;
    std::optional<sim::Time> end;  // unset: never completed
    Value value = kBottom;
  };
  struct ReadOp {
    sim::ProcessId reader = 0;
    sim::Time begin = 0;
    std::optional<sim::Time> end;  // unset: never completed
    Value value = kBottom;
  };

  /// The register's initial value is modeled as a pseudo-write (index 0)
  /// that began and completed at time 0 before everything else.
  explicit History(Value initial);

  /// Records a write invocation; returns the id to pass to complete_write.
  /// Writes that never complete stay open (end unset) and are treated as
  /// concurrent with everything after their begin.
  OpId begin_write(sim::ProcessId writer, sim::Time at, Value v);
  void complete_write(OpId id, sim::Time at);

  /// Records a read invocation; the returned value is supplied at
  /// completion time (reads that never complete are never checked).
  OpId begin_read(sim::ProcessId reader, sim::Time at);
  void complete_read(OpId id, sim::Time at, Value v);

  /// All writes; writes()[0] is the initial pseudo-write.
  [[nodiscard]] const std::vector<WriteOp>& writes() const { return writes_; }
  [[nodiscard]] const std::vector<ReadOp>& reads() const { return reads_; }
  [[nodiscard]] Value initial_value() const { return writes_[0].value; }

 private:
  std::vector<WriteOp> writes_;
  std::vector<ReadOp> reads_;
};

}  // namespace dynreg::consistency
