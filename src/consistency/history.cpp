#include "consistency/history.h"

namespace dynreg::consistency {

History::History(Value initial) {
  WriteOp w0;
  w0.begin = 0;
  w0.end = 0;
  w0.value = initial;
  writes_.push_back(w0);
}

OpId History::begin_write(sim::ProcessId writer, sim::Time at, Value v) {
  WriteOp w;
  w.writer = writer;
  w.begin = at;
  w.value = v;
  writes_.push_back(w);
  return writes_.size() - 1;
}

void History::complete_write(OpId id, sim::Time at) { writes_[id].end = at; }

OpId History::begin_read(sim::ProcessId reader, sim::Time at) {
  ReadOp r;
  r.reader = reader;
  r.begin = at;
  reads_.push_back(r);
  return reads_.size() - 1;
}

void History::complete_read(OpId id, sim::Time at, Value v) {
  reads_[id].end = at;
  reads_[id].value = v;
}

}  // namespace dynreg::consistency
