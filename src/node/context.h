// Per-node capability handle: everything a protocol node may do to the world.
//
// A node only ever touches the simulation through its Context. The context
// guards scheduled callbacks with a liveness token so that a timer set by a
// node that has since been churned out fires into nothing instead of into
// freed memory.
#pragma once

#include <memory>
#include <utility>

#include "net/network.h"
#include "net/payload.h"
#include "sim/inline_task.h"
#include "sim/simulation.h"

namespace dynreg::node {

class Context {
 public:
  Context(sim::Simulation& sim, net::Network& net, sim::ProcessId id,
          sim::InlineTask on_active)
      : sim_(sim),
        net_(net),
        id_(id),
        on_active_(std::move(on_active)),
        alive_(std::make_shared<bool>(true)) {}

  [[nodiscard]] sim::Time now() const { return sim_.now(); }
  [[nodiscard]] sim::ProcessId id() const { return id_; }
  sim::Rng& rng() { return sim_.rng(); }

  /// Schedules fn after d ticks; silently cancelled if the node leaves first.
  /// Templated so the liveness wrapper stays within the scheduler's inline
  /// capture budget instead of forcing a std::function allocation per timer.
  template <typename F>
  void schedule_after(sim::Duration d, F fn) {
    sim_.schedule_after(d, [alive = alive_, fn = std::move(fn)]() mutable {
      if (*alive) fn();
    });
  }

  void send(sim::ProcessId to, net::PayloadPtr payload) {
    net_.send(id_, to, std::move(payload));
  }

  /// Builds a payload in the simulation's epoch arena (the hot-path
  /// replacement for net::make_payload's per-message heap allocation).
  template <typename T, typename... Args>
  net::PayloadPtr make_payload(Args&&... args) {
    return net::make_payload_in<T>(sim_.arena(), std::forward<Args>(args)...);
  }

  void broadcast(net::PayloadPtr payload) { net_.broadcast(id_, std::move(payload)); }

  /// The simulation's epoch arena, for pending-operation node containers
  /// (see sim/arena.h for the lifetime contract).
  [[nodiscard]] sim::Arena& arena() { return sim_.arena(); }

  /// Called by the node when its join protocol completes and it becomes an
  /// active replica (initial nodes call it on construction).
  void notify_active() {
    if (on_active_) on_active_();
  }

  /// System calls this when the node departs; cancels all pending timers.
  void invalidate() { *alive_ = false; }

 private:
  sim::Simulation& sim_;
  net::Network& net_;
  sim::ProcessId id_;
  sim::InlineTask on_active_;
  std::shared_ptr<bool> alive_;
};

}  // namespace dynreg::node
