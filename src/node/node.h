// Base class for protocol processes hosted by churn::System.
#pragma once

#include "net/payload.h"
#include "sim/simulation.h"

namespace dynreg::node {

class Node {
 public:
  explicit Node(sim::ProcessId id) : id_(id) {}
  virtual ~Node() = default;

  virtual void on_message(sim::ProcessId from, const net::Payload& payload) = 0;

  /// Called by churn::System when this node departs, after its timers are
  /// cancelled and its network slot detached but before it is destroyed.
  /// Protocols override it to resolve every in-flight operation with
  /// OpOutcome::kDroppedOnDeparture instead of leaking the completions.
  virtual void on_departure() {}

  [[nodiscard]] sim::ProcessId id() const { return id_; }

 private:
  sim::ProcessId id_;
};

}  // namespace dynreg::node
