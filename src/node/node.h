// Base class for protocol processes hosted by churn::System.
#pragma once

#include "net/payload.h"
#include "sim/simulation.h"

namespace dynreg::node {

class Node {
 public:
  explicit Node(sim::ProcessId id) : id_(id) {}
  virtual ~Node() = default;

  virtual void on_message(sim::ProcessId from, const net::Payload& payload) = 0;

  sim::ProcessId id() const { return id_; }

 private:
  sim::ProcessId id_;
};

}  // namespace dynreg::node
