#include "replay/search.h"

#include <algorithm>
#include <set>
#include <vector>

#include "harness/thread_pool.h"
#include "replay/hooks.h"
#include "replay/trace_io.h"
#include "sim/rng.h"

namespace dynreg::replay {

bool violates(const harness::MetricsReport& report) {
  return !report.regularity.violations.empty();
}

namespace {

/// Makes net record `i` arrive strictly after record `j` (same destination,
/// j later in send order) by stretching i's delay — the targeted reordering
/// operator. Best-effort: the new delay is clamped to the envelope, so a
/// reorder across a long gap may only narrow the margin.
void reorder_after(Trace& t, std::size_t i, std::size_t j, sim::Duration envelope) {
  const NetRecord& later = t.net[j];
  NetRecord& earlier = t.net[i];
  const sim::Time arrival_j = later.time + later.delay;
  sim::Duration needed =
      arrival_j > earlier.time ? (arrival_j - earlier.time) + 1 : sim::Duration{1};
  if (needed > envelope) needed = envelope;
  if (needed < 1) needed = 1;
  earlier.lost = false;
  earlier.delay = needed;
}

}  // namespace

Trace perturb(const Trace& base, std::uint64_t variant_seed, const SearchOptions& opt) {
  Trace t = base;
  t.seed = variant_seed;
  t.recorded_hash = 0;  // a perturbed schedule has no recorded hash to match
  sim::Rng rng(variant_seed);
  const sim::Duration envelope = base.max_delay() + opt.delay_slack;
  const std::uint32_t max_ops = opt.mutations < 1 ? 1 : opt.mutations;
  const std::uint64_t ops = rng.uniform_int(1, max_ops);

  bool churn_shifted = false;
  // The fault-word operator only exists when the base run recorded fault
  // decisions: fault-free traces keep the exact historical operator set and
  // draw sequence, so established search baselines stay byte-identical.
  const std::uint64_t op_kinds = base.faults.empty() ? 3 : 4;
  for (std::uint64_t op = 0; op < ops; ++op) {
    switch (rng.uniform_int(0, op_kinds)) {
      case 0: {  // delay jitter
        if (t.net.empty()) break;
        NetRecord& r = t.net[static_cast<std::size_t>(
            rng.uniform_int(0, t.net.size() - 1))];
        r.lost = false;
        r.delay = rng.uniform_int(1, envelope);
        break;
      }
      case 1: {  // targeted reordering: overtake the next same-destination copy
        if (t.net.size() < 2) break;
        const std::size_t i = static_cast<std::size_t>(
            rng.uniform_int(0, t.net.size() - 2));
        const std::size_t window_end = std::min(t.net.size(), i + 1 + 16);
        for (std::size_t j = i + 1; j < window_end; ++j) {
          if (t.net[j].to == t.net[i].to && !t.net[j].lost) {
            reorder_after(t, i, j, envelope);
            break;
          }
        }
        break;
      }
      case 2: {  // loss toggle: drop a delivered copy / revive a lost one
        if (t.net.empty()) break;
        NetRecord& r = t.net[static_cast<std::size_t>(
            rng.uniform_int(0, t.net.size() - 1))];
        if (!opt.toggle_loss) {  // gated: jitter instead, same draw count
          r.lost = false;
          r.delay = rng.uniform_int(1, envelope);
          break;
        }
        r.lost = !r.lost;
        r.delay = r.lost ? 0 : rng.uniform_int(1, envelope);
        break;
      }
      case 3: {  // churn-time shift
        if (t.churn.empty()) break;
        ChurnRecord& r = t.churn[static_cast<std::size_t>(
            rng.uniform_int(0, t.churn.size() - 1))];
        const sim::Duration shift = rng.uniform_int(1, envelope);
        if (rng.uniform_int(0, 1) == 0 && r.time > shift) {
          r.time -= shift;
        } else {
          r.time += shift;
        }
        churn_shifted = true;
        break;
      }
      case 4: {  // fault-word scramble: a different-but-legal fault decision
        // Replacing the raw word at one decision point gives the injector a
        // different victim / partition side salt / Byzantine transform at
        // the same schedule position — the fault analogue of delay jitter.
        FaultRecord& r = t.faults[static_cast<std::size_t>(
            rng.uniform_int(0, t.faults.size() - 1))];
        r.value = rng.next();
        break;
      }
    }
  }
  if (churn_shifted) {
    // The churn stream is consumed in time order (ReplayChurnModel) and
    // delta-encoded on disk; restore monotonicity, preserving the relative
    // order of equal-time records.
    std::stable_sort(t.churn.begin(), t.churn.end(),
                     [](const ChurnRecord& a, const ChurnRecord& b) {
                       return a.time < b.time;
                     });
  }
  return t;
}

Trace record_base(const harness::ExperimentConfig& cfg) {
  Trace trace;
  trace.fingerprint = fingerprint(cfg);
  trace.seed = cfg.seed;
  RunHooks hooks;
  hooks.record = &trace;
  const harness::MetricsReport report = harness::run_experiment(cfg, hooks);
  trace.recorded_hash = report.trace_hash;
  return trace;
}

SearchResult search(const harness::ExperimentConfig& cfg, const Trace& base,
                    const SearchOptions& opt) {
  SearchResult result;
  result.executed = opt.budget;

  struct Slot {
    bool violating = false;
    bool inverted = false;
    std::uint64_t hash = 0;
  };
  std::vector<Slot> slots(opt.budget);

  harness::parallel_for(opt.jobs, opt.budget, [&](std::size_t i) {
    const Trace variant = perturb(base, fold64(opt.seed, i), opt);
    RunHooks hooks;
    hooks.replay = &variant;
    const harness::MetricsReport report = harness::run_experiment(cfg, hooks);
    slots[i] = Slot{violates(report), report.atomicity.inversion_count > 0,
                    report.trace_hash};
  });

  std::set<std::uint64_t> distinct;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].violating) {
      ++result.violating;
      if (!result.first_violation) result.first_violation = i;
    }
    if (slots[i].inverted) ++result.inverted;
    if (slots[i].hash != 0) distinct.insert(slots[i].hash);
  }
  result.distinct_schedules = distinct.size();

  if (result.first_violation) {
    // Regenerate the winning variant (perturb is pure) and re-run it for
    // the full report — cheaper than keeping every variant's report alive.
    result.counterexample = perturb(base, fold64(opt.seed, *result.first_violation), opt);
    RunHooks hooks;
    hooks.replay = &result.counterexample;
    result.counterexample_report = harness::run_experiment(cfg, hooks);
  }
  return result;
}

}  // namespace dynreg::replay
