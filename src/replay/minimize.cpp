#include "replay/minimize.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "net/payload_type.h"
#include "replay/hooks.h"
#include "replay/search.h"

namespace dynreg::replay {

namespace {

/// One neutralizable decision: a churn record (neutralize = delete) or a
/// non-canonical net record (neutralize = deliver at the canonical delay).
struct Atom {
  bool is_churn = false;
  std::size_t index = 0;  ///< into trace.churn / trace.net
  sim::Time time = 0;
};

/// The trace's canonical ("boring") delay: the median recorded delivery
/// delay, >= 1. Neutralized net records deliver at exactly this.
sim::Duration canonical_delay(const Trace& t) {
  std::vector<sim::Duration> delays;
  delays.reserve(t.net.size());
  for (const NetRecord& r : t.net) {
    if (!r.lost) delays.push_back(r.delay);
  }
  if (delays.empty()) return 1;
  std::nth_element(delays.begin(), delays.begin() + delays.size() / 2, delays.end());
  const sim::Duration median = delays[delays.size() / 2];
  return median < 1 ? 1 : median;
}

/// Rebuilds the trace with every atom outside `keep` neutralized. `keep`
/// holds indices into `atoms`, in any order.
Trace apply_keep(const Trace& base, const std::vector<Atom>& atoms,
                 const std::vector<std::size_t>& keep, sim::Duration canon) {
  std::vector<bool> kept(atoms.size(), false);
  for (const std::size_t a : keep) kept[a] = true;

  Trace out = base;
  std::vector<bool> drop_churn(base.churn.size(), false);
  bool any_drop = false;
  for (std::size_t a = 0; a < atoms.size(); ++a) {
    if (kept[a]) continue;
    if (atoms[a].is_churn) {
      drop_churn[atoms[a].index] = true;
      any_drop = true;
    } else {
      NetRecord& r = out.net[atoms[a].index];
      r.lost = false;
      r.delay = canon;
    }
  }
  if (any_drop) {
    std::vector<ChurnRecord> remaining;
    remaining.reserve(base.churn.size());
    for (std::size_t i = 0; i < base.churn.size(); ++i) {
      if (!drop_churn[i]) remaining.push_back(base.churn[i]);
    }
    out.churn = std::move(remaining);
  }
  return out;
}

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

const char* protocol_name(harness::Protocol p) {
  switch (p) {
    case harness::Protocol::kSync: return "sync";
    case harness::Protocol::kSyncNoWait: return "sync_no_wait";
    case harness::Protocol::kEventuallySync: return "es";
    case harness::Protocol::kAbd: return "abd";
  }
  return "?";
}

std::string payload_name(net::PayloadTypeId id) {
  if (id < net::PayloadTypeRegistry::count()) {
    return std::string(net::PayloadTypeRegistry::name(id));
  }
  return "type#" + std::to_string(id);  // trace from a foreign build
}

std::string render_narrative(const harness::ExperimentConfig& cfg, const Trace& trace,
                             const std::vector<Atom>& atoms,
                             const std::vector<std::size_t>& keep,
                             const harness::MetricsReport& report, sim::Duration canon,
                             std::size_t total_decisions) {
  std::string out;
  out += "counterexample: " + std::to_string(keep.size()) + " essential decision(s) (of " +
         std::to_string(atoms.size()) + " atoms; " + std::to_string(total_decisions) +
         " recorded decisions)\n";
  out += std::string("scenario: protocol=") + protocol_name(cfg.protocol) +
         " n=" + std::to_string(cfg.n) + " delta=" + std::to_string(cfg.delta) +
         " churn=" + fmt("%.4f", cfg.churn_rate) +
         " duration=" + std::to_string(cfg.duration) +
         " seed=" + std::to_string(trace.seed) +
         " canonical_delay=" + std::to_string(canon) + "\n";
  out += "violation: " + std::to_string(report.regularity.violations.size()) +
         " stale read(s), " + std::to_string(report.atomicity.inversion_count) +
         " new/old inversion(s)\n";
  if (!report.regularity.violations.empty()) {
    out += "  first: " + report.regularity.violations.front().detail + "\n";
  }

  std::vector<std::size_t> ordered = keep;
  std::sort(ordered.begin(), ordered.end(), [&](std::size_t a, std::size_t b) {
    if (atoms[a].time != atoms[b].time) return atoms[a].time < atoms[b].time;
    if (atoms[a].is_churn != atoms[b].is_churn) return !atoms[a].is_churn;
    return atoms[a].index < atoms[b].index;
  });
  std::size_t line = 0;
  for (const std::size_t a : ordered) {
    const Atom& atom = atoms[a];
    out += "  " + std::to_string(++line) + ". t=" + std::to_string(atom.time) + " ";
    if (atom.is_churn) {
      const ChurnRecord& r = trace.churn[atom.index];
      out += r.join ? "churn: join" : ("churn: leave p" + std::to_string(r.victim));
    } else {
      const NetRecord& r = trace.net[atom.index];
      out += "net: p" + std::to_string(r.from) + " -> p" + std::to_string(r.to) + " " +
             payload_name(r.type);
      if (r.lost) {
        out += " LOST";
      } else {
        out += " delayed " + std::to_string(r.delay);
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace

MinimizeResult minimize(const harness::ExperimentConfig& cfg,
                        const Trace& violating_trace, const MinimizeOptions& opt) {
  MinimizeResult result;
  result.trace = violating_trace;

  harness::MetricsReport report;
  const auto run = [&cfg, &result, &opt, &report](const Trace& t) {
    if (result.tests >= opt.max_tests) return false;  // budget-exhausted: keep
    ++result.tests;
    RunHooks hooks;
    hooks.replay = &t;
    report = harness::run_experiment(cfg, hooks);
    return violates(report);
  };

  if (!run(violating_trace)) {
    result.narrative = "input trace does not violate regularity; nothing to minimize\n";
    return result;
  }

  const sim::Duration canon = canonical_delay(violating_trace);
  std::vector<Atom> atoms;
  for (std::size_t i = 0; i < violating_trace.churn.size(); ++i) {
    atoms.push_back({true, i, violating_trace.churn[i].time});
  }
  for (std::size_t i = 0; i < violating_trace.net.size(); ++i) {
    const NetRecord& r = violating_trace.net[i];
    if (r.lost || r.delay != canon) atoms.push_back({false, i, r.time});
  }
  result.atoms = atoms.size();

  // ddmin over atom indices: find a small subset to KEEP original (all
  // others neutralized) such that the replay still violates.
  std::vector<std::size_t> current(atoms.size());
  for (std::size_t i = 0; i < atoms.size(); ++i) current[i] = i;

  const auto test_keep = [&](const std::vector<std::size_t>& keep) {
    return run(apply_keep(violating_trace, atoms, keep, canon));
  };

  std::size_t n = 2;
  while (current.size() >= 2 && result.tests < opt.max_tests) {
    const std::size_t chunk = (current.size() + n - 1) / n;
    bool reduced = false;
    // Try each chunk alone.
    for (std::size_t start = 0; start < current.size() && !reduced; start += chunk) {
      const std::size_t end = std::min(current.size(), start + chunk);
      std::vector<std::size_t> subset(current.begin() + start, current.begin() + end);
      if (test_keep(subset)) {
        current = std::move(subset);
        n = 2;
        reduced = true;
      }
    }
    // Try each complement (redundant at n == 2: it is the other chunk).
    if (!reduced && n > 2) {
      for (std::size_t start = 0; start < current.size() && !reduced; start += chunk) {
        const std::size_t end = std::min(current.size(), start + chunk);
        std::vector<std::size_t> complement;
        complement.reserve(current.size() - (end - start));
        complement.insert(complement.end(), current.begin(), current.begin() + start);
        complement.insert(complement.end(), current.begin() + end, current.end());
        if (test_keep(complement)) {
          current = std::move(complement);
          n = n > 3 ? n - 1 : 2;
          reduced = true;
        }
      }
    }
    if (!reduced) {
      if (n >= current.size()) break;
      n = std::min(n * 2, current.size());
    }
  }

  // Greedy 1-minimal pass: drop any single atom that proves removable.
  for (std::size_t i = 0; i < current.size() && result.tests < opt.max_tests;) {
    std::vector<std::size_t> candidate;
    candidate.reserve(current.size() - 1);
    candidate.insert(candidate.end(), current.begin(), current.begin() + i);
    candidate.insert(candidate.end(), current.begin() + i + 1, current.end());
    if (test_keep(candidate)) {
      current = std::move(candidate);
    } else {
      ++i;
    }
  }

  result.trace = apply_keep(violating_trace, atoms, current, canon);
  // Final confirmation run also provides the report the narrative cites.
  ++result.tests;
  RunHooks hooks;
  hooks.replay = &result.trace;
  report = harness::run_experiment(cfg, hooks);
  result.violating = violates(report);
  result.essential = current.size();
  result.narrative = render_narrative(cfg, violating_trace, atoms, current, report,
                                      canon, violating_trace.size());
  return result;
}

}  // namespace dynreg::replay
