// Per-run replay hooks for harness::run_experiment. Exactly one of the two
// pointers may be set:
//
//   record   capture the run's schedule into *record (the caller pre-fills
//            fingerprint/seed/churn_loop; recorded_hash is the caller's to
//            stamp from the returned report);
//   replay   drive the run from *replay instead of the rng (see
//            replay/replayer.h for the divergence semantics).
//
// The hooks overload never consults the global replay::Session — that is
// what lets the schedule searcher and the minimizer run thousands of nested
// replays while a CLI-level record/replay session is in flight.
#pragma once

#include "replay/trace.h"

namespace dynreg::replay {

struct RunHooks {
  Trace* record = nullptr;
  const Trace* replay = nullptr;
};

}  // namespace dynreg::replay
