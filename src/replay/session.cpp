#include "replay/session.h"

#include <string>

#include "replay/trace_io.h"

namespace dynreg::replay {

Session& Session::instance() {
  static Session session;
  return session;
}

void Session::begin_record() {
  std::lock_guard<std::mutex> lock(mutex_);
  mode_ = Mode::kRecord;
  traces_.clear();
  replays_ = 0;
  hash_mismatches_ = 0;
}

void Session::begin_replay(std::vector<Trace> traces) {
  std::lock_guard<std::mutex> lock(mutex_);
  mode_ = Mode::kReplay;
  traces_.clear();
  replays_ = 0;
  hash_mismatches_ = 0;
  for (Trace& t : traces) {
    const Key key{t.fingerprint, t.seed};
    traces_.emplace(key, std::make_shared<const Trace>(std::move(t)));
  }
}

void Session::end() {
  std::lock_guard<std::mutex> lock(mutex_);
  mode_ = Mode::kOff;
  traces_.clear();
  replays_ = 0;
  hash_mismatches_ = 0;
}

Session::Mode Session::mode() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mode_;
}

void Session::commit(Trace trace) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (mode_ != Mode::kRecord) return;
  const Key key{trace.fingerprint, trace.seed};
  traces_.emplace(key, std::make_shared<const Trace>(std::move(trace)));
}

std::shared_ptr<const Trace> Session::find(std::uint64_t fingerprint,
                                           std::uint64_t seed) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = traces_.find(Key{fingerprint, seed});
  if (it == traces_.end()) {
    throw TraceError("no trace recorded for config fingerprint " +
                     std::to_string(fingerprint) + ", seed " + std::to_string(seed) +
                     " — the trace file does not cover this run (different "
                     "experiment options?)");
  }
  return it->second;
}

void Session::note_replay(bool hash_match) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++replays_;
  if (!hash_match) ++hash_mismatches_;
}

std::vector<Trace> Session::collected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Trace> out;
  out.reserve(traces_.size());
  for (const auto& [key, trace] : traces_) out.push_back(*trace);
  return out;
}

std::size_t Session::replays() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return replays_;
}

std::size_t Session::hash_mismatches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hash_mismatches_;
}

}  // namespace dynreg::replay
