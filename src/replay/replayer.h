// Trace replay: DelayModel / ChurnModel / TargetChooser implementations
// that re-feed a recorded (or perturbed) Trace into a run instead of the
// rng. The streams are consumed *positionally* — the k-th transmit gets the
// k-th net record — and the run's own sim::Rng is never drawn, so:
//
//   unperturbed trace   the replayed run re-makes every decision the
//                       recording made and is byte-identical to it (same
//                       trace_hash, same emitter output);
//   perturbed trace     the run follows the perturbed schedule until it
//                       diverges from the recording; past that point later
//                       records land on different messages (which is the
//                       point of schedule search — it explores neighbours,
//                       not exact replays), and exhausted streams fall back
//                       to a seeded private Rng, keeping even deeply
//                       diverged variants fully deterministic.
//
// All three components hold a shared_ptr to the trace, so a TraceReplayer
// may be destroyed before the Network/System that own the models it built.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "churn/churn_model.h"
#include "client/client.h"
#include "net/delay_model.h"
#include "replay/trace.h"
#include "sim/rng.h"

namespace dynreg::replay {

/// Salts separating the three fallback rng streams from each other and from
/// anything the recorded run derived from its seed.
inline constexpr std::uint64_t kNetFallbackSalt = 0x6e65742d66616c6cULL;    // "net-fall"
inline constexpr std::uint64_t kPickFallbackSalt = 0x7069636b2d66616cULL;   // "pick-fal"

/// Replays the net stream. Loss rate and the wrapped model's delay
/// distribution are ignored while records last; exhausted, it draws loss
/// from `loss_rate` and delays uniform in [1, trace.max_delay()] from its
/// private fallback rng.
class ReplayDelayModel final : public net::DelayModel {
 public:
  explicit ReplayDelayModel(std::shared_ptr<const Trace> trace)
      : trace_(std::move(trace)),
        max_delay_(trace_->max_delay()),
        fallback_(fold64(trace_->seed, kNetFallbackSalt)) {}

  sim::Duration delay(sim::Time, sim::ProcessId, sim::ProcessId, const net::Payload&,
                      sim::Rng&) override {
    return fallback_.uniform_int(1, max_delay_);
  }

  Verdict verdict(sim::Time, sim::ProcessId, sim::ProcessId, const net::Payload&,
                  double loss_rate, sim::Rng&) override {
    if (next_ < trace_->net.size()) {
      const NetRecord& r = trace_->net[next_++];
      if (r.lost) return {true, 0};
      return {false, r.delay < 1 ? sim::Duration{1} : r.delay};
    }
    ++fallback_draws_;
    if (loss_rate > 0.0 && fallback_.bernoulli(loss_rate)) return {true, 0};
    return {false, fallback_.uniform_int(1, max_delay_)};
  }

  [[nodiscard]] std::size_t consumed() const { return next_; }
  [[nodiscard]] std::uint64_t fallback_draws() const { return fallback_draws_; }

 private:
  std::shared_ptr<const Trace> trace_;
  sim::Duration max_delay_;
  sim::Rng fallback_;
  std::size_t next_ = 0;
  std::uint64_t fallback_draws_ = 0;
};

/// Replays the churn stream as a scripted model: each churn tick executes,
/// in recorded order, every action stamped at or before `now` that has not
/// run yet (perturbation may shift a record between ticks; catch-up keeps
/// every action executed exactly once). Install only when the recorded run
/// drove a churn tick loop (Trace::churn_loop) so the tick-event cadence —
/// part of the audited event stream — matches the recording.
class ReplayChurnModel final : public churn::ChurnModel {
 public:
  explicit ReplayChurnModel(std::shared_ptr<const Trace> trace)
      : trace_(std::move(trace)) {}

  /// Shard-filtered variant for sharded runs: this model executes only the
  /// records tagged `shard`, skipping (and permanently passing over) the
  /// rest. Every shard's model scans the shared stream with its own cursor;
  /// all shards tick at the same cadence, so each record is executed by
  /// exactly its owner exactly once.
  ReplayChurnModel(std::shared_ptr<const Trace> trace, std::uint32_t shard)
      : trace_(std::move(trace)), shard_(shard), filtered_(true) {}

  double rate() const override { return 0.0; }
  [[nodiscard]] bool scripted() const override { return true; }

  void actions_at(sim::Time now, std::vector<churn::ChurnAction>& out) override {
    while (next_ < trace_->churn.size() && trace_->churn[next_].time <= now) {
      const ChurnRecord& r = trace_->churn[next_++];
      if (filtered_ && r.shard != shard_) continue;
      out.push_back({r.join, r.victim});
    }
  }

 private:
  std::shared_ptr<const Trace> trace_;
  std::size_t next_ = 0;
  std::uint32_t shard_ = 0;
  bool filtered_ = false;
};

/// Replays client target picks. A recorded pick that is no longer active
/// (possible only after divergence) falls back to a deterministic draw over
/// the current actives, as does an exhausted stream.
class ReplayTargetChooser final : public client::TargetChooser {
 public:
  explicit ReplayTargetChooser(std::shared_ptr<const Trace> trace)
      : trace_(std::move(trace)),
        fallback_(fold64(trace_->seed, kPickFallbackSalt)) {}

  sim::ProcessId choose_target(sim::Time,
                               const std::vector<sim::ProcessId>& actives) override {
    if (next_ < trace_->picks.size()) {
      const sim::ProcessId chosen = trace_->picks[next_++].chosen;
      for (const sim::ProcessId id : actives) {
        if (id == chosen) return chosen;
      }
    }
    return actives[static_cast<std::size_t>(
        fallback_.uniform_int(0, actives.size() - 1))];
  }

 private:
  std::shared_ptr<const Trace> trace_;
  sim::Rng fallback_;
  std::size_t next_ = 0;
};

/// Non-owning forwarding view over a shared ReplayDelayModel — what each
/// shard's Network owns in a sharded replay. Recording interleaved every
/// shard's verdicts into the ONE net stream in execution order, so replay
/// must consume them through one shared positional cursor; the wrappers give
/// every Network its own DelayModel object (networks own their models) while
/// the cursor stays shared. The TraceReplayer owns the real model and must
/// outlive every Network holding a view.
class SharedDelayModelView final : public net::DelayModel {
 public:
  explicit SharedDelayModelView(ReplayDelayModel* shared) : shared_(shared) {}

  sim::Duration delay(sim::Time now, sim::ProcessId from, sim::ProcessId to,
                      const net::Payload& payload, sim::Rng& rng) override {
    return shared_->delay(now, from, to, payload, rng);
  }

  Verdict verdict(sim::Time now, sim::ProcessId from, sim::ProcessId to,
                  const net::Payload& payload, double loss_rate, sim::Rng& rng) override {
    return shared_->verdict(now, from, to, payload, loss_rate, rng);
  }

 private:
  ReplayDelayModel* shared_;  // non-owning
};

/// Bundles the three replay components for one run. Owns the target chooser
/// (the Client only holds a non-owning pointer), hands delay/churn model
/// ownership to the Network/System; must outlive the run it drives.
class TraceReplayer {
 public:
  explicit TraceReplayer(std::shared_ptr<const Trace> trace)
      : trace_(std::move(trace)), chooser_(trace_) {}

  [[nodiscard]] std::unique_ptr<net::DelayModel> make_delay_model() {
    auto model = std::make_unique<ReplayDelayModel>(trace_);
    delay_model_ = model.get();
    return model;
  }

  /// Sharded replay: a forwarding view over one replayer-owned shared
  /// cursor (see SharedDelayModelView). Call once per shard Network; the
  /// replayer must outlive them all.
  [[nodiscard]] std::unique_ptr<net::DelayModel> make_delay_model_view() {
    if (!shared_delay_) {
      shared_delay_ = std::make_unique<ReplayDelayModel>(trace_);
      delay_model_ = shared_delay_.get();
    }
    return std::make_unique<SharedDelayModelView>(shared_delay_.get());
  }

  /// ReplayChurnModel when the recording drove a churn loop, NoChurn
  /// otherwise (then no tick events existed to reproduce).
  [[nodiscard]] std::unique_ptr<churn::ChurnModel> make_churn_model() const {
    if (trace_->churn_loop) return std::make_unique<ReplayChurnModel>(trace_);
    return std::make_unique<churn::NoChurn>();
  }

  /// Shard-filtered churn model for shard `shard` of a sharded replay.
  [[nodiscard]] std::unique_ptr<churn::ChurnModel> make_churn_model(
      std::uint32_t shard) const {
    if (trace_->churn_loop) return std::make_unique<ReplayChurnModel>(trace_, shard);
    return std::make_unique<churn::NoChurn>();
  }

  [[nodiscard]] client::TargetChooser* target_chooser() { return &chooser_; }

  /// The delay model built by make_delay_model / make_delay_model_view
  /// (null before); valid while the owning Network (respectively this
  /// replayer) lives. For post-run divergence diagnostics.
  [[nodiscard]] const ReplayDelayModel* delay_model() const { return delay_model_; }

 private:
  std::shared_ptr<const Trace> trace_;
  ReplayTargetChooser chooser_;
  ReplayDelayModel* delay_model_ = nullptr;  // non-owning
  std::unique_ptr<ReplayDelayModel> shared_delay_;  // sharded replay only
};

}  // namespace dynreg::replay
