// Adversarial schedule search: perturb a recorded trace thousands of ways
// and replay each variant, hunting for runs where the perturbed schedule
// breaks regularity (a stale read — Theorem 1's property) or produces a
// new/old inversion. FoundationDB-style schedule fuzzing for the register:
// the recorded trace anchors the search in a schedule the timing model
// actually produced, and each variant explores its neighbourhood.
//
// Everything is deterministic: variant i's perturbation rng is seeded by
// fold64(opt.seed, i), variants run via harness::parallel_for into
// pre-assigned slots, and the reported counterexample is the *lowest-index*
// violating variant — so results are identical at any --jobs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "harness/experiment.h"
#include "replay/trace.h"

namespace dynreg::replay {

struct SearchOptions {
  std::uint64_t seed = 1;    ///< root of the per-variant perturbation rngs
  std::size_t budget = 1000; ///< perturbed schedules to execute
  std::size_t jobs = 1;      ///< worker threads (0 = one per hardware thread)
  /// Perturbation operators applied per variant (uniform in [1, mutations]).
  std::uint32_t mutations = 4;
  /// Extra delay headroom beyond the recorded envelope (trace.max_delay()).
  /// 0 keeps every perturbed delay within the bound the recorded timing
  /// model obeyed — perturbations then stay "legal" schedules.
  sim::Duration delay_slack = 0;
  /// Include the loss-toggle operator (drop a delivered copy / revive a
  /// lost one). Disable to restrict the search to schedules legal under a
  /// reliable-channel timing model (e.g. Theorem 1's synchronous system,
  /// where an omission fault would void the claim being probed); the draw
  /// sequence is unchanged, so variant i differs from its toggling twin
  /// only in the gated operator.
  bool toggle_loss = true;
};

struct SearchResult {
  std::size_t executed = 0;   ///< variants run (== budget)
  std::size_t violating = 0;  ///< variants with >= 1 regularity violation
  std::size_t inverted = 0;   ///< variants with >= 1 new/old inversion
  /// Distinct event-stream hashes among the variants — how much of the
  /// neighbourhood the budget actually explored (0 without DYNREG_AUDIT).
  std::size_t distinct_schedules = 0;
  /// Lowest violating variant index; the fields below are valid iff set.
  std::optional<std::size_t> first_violation;
  Trace counterexample;
  harness::MetricsReport counterexample_report;
};

/// The search's violation predicate: a regularity (stale-read) violation.
bool violates(const harness::MetricsReport& report);

/// Deterministic perturbation of `base`: 1..opt.mutations operators (delay
/// jitter, targeted same-destination message reordering, loss toggling,
/// churn-time shifts), drawn from an rng seeded with `variant_seed`. Pure
/// function of its arguments. The variant's Trace::seed is set to
/// `variant_seed` so post-divergence fallback draws differ per variant.
Trace perturb(const Trace& base, std::uint64_t variant_seed, const SearchOptions& opt);

/// Records the schedule of one plain run of `cfg` (no session involvement)
/// — the base every search/minimize starts from.
Trace record_base(const harness::ExperimentConfig& cfg);

/// Replays opt.budget perturbed variants of `base` against `cfg`.
SearchResult search(const harness::ExperimentConfig& cfg, const Trace& base,
                    const SearchOptions& opt);

}  // namespace dynreg::replay
