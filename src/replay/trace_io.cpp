#include "replay/trace_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <utility>

namespace dynreg::replay {

namespace {

// ---------------------------------------------------------------- encoding

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/// LEB128: 7 value bits per byte, high bit = continuation.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_double(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

// ---------------------------------------------------------------- decoding

/// Bounds-checked cursor over the byte buffer. Every read validates the
/// remaining length first; violations throw TraceError naming the offset.
class Reader {
 public:
  Reader(const std::vector<std::uint8_t>& bytes, std::size_t pos)
      : bytes_(&bytes), pos_(pos) {}

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return bytes_->size() - pos_; }

  std::uint8_t u8() {
    need(1, "byte");
    return (*bytes_)[pos_++];
  }

  std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{(*bytes_)[pos_++]} << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{(*bytes_)[pos_++]} << (8 * i);
    return v;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      need(1, "varint");
      const std::uint8_t byte = (*bytes_)[pos_++];
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        // Reject non-canonical bits beyond 64 (shift 63 leaves 1 usable bit).
        if (shift == 63 && (byte & 0x7e) != 0) fail("varint overflows 64 bits");
        return v;
      }
    }
    fail("varint longer than 10 bytes");
    return 0;  // unreachable
  }

  double dbl() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str() {
    const std::uint64_t len = varint();
    need(len, "string body");
    std::string s(reinterpret_cast<const char*>(bytes_->data()) + pos_,
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  void need(std::uint64_t n, const char* what) const {
    if (n > remaining()) {
      fail(std::string("truncated: need ") + what + " at offset " +
           std::to_string(pos_));
    }
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw TraceError("trace decode error at offset " + std::to_string(pos_) + ": " + why);
  }

 private:
  const std::vector<std::uint8_t>* bytes_;  // pointer: Reader is reassignable
  std::size_t pos_;
};

std::uint8_t enum_u8(Reader& r, std::uint8_t max, const char* what) {
  const std::uint8_t v = r.u8();
  if (v > max) r.fail(std::string("bad ") + what + " tag " + std::to_string(v));
  return v;
}

std::optional<sim::Duration> get_opt_duration(Reader& r) {
  if (r.u8() == 0) return std::nullopt;
  return static_cast<sim::Duration>(r.varint());
}

void put_opt_duration(std::vector<std::uint8_t>& out,
                      const std::optional<sim::Duration>& v) {
  put_u8(out, v.has_value() ? 1 : 0);
  if (v.has_value()) put_varint(out, *v);
}

// ------------------------------------------------------------ trace bodies

void encode_trace(const Trace& t, std::vector<std::uint8_t>& out) {
  put_varint(out, t.fingerprint);
  put_varint(out, t.seed);
  put_u64(out, t.recorded_hash);
  put_u8(out, t.churn_loop ? 1 : 0);

  put_varint(out, t.net.size());
  sim::Time prev = 0;
  for (const NetRecord& r : t.net) {
    put_varint(out, r.time - prev);  // streams are recorded in time order
    prev = r.time;
    put_varint(out, r.from);
    put_varint(out, r.to);
    put_varint(out, r.type);
    put_u8(out, r.lost ? 1 : 0);
    if (!r.lost) put_varint(out, r.delay);
  }

  put_varint(out, t.churn.size());
  prev = 0;
  for (const ChurnRecord& r : t.churn) {
    put_varint(out, r.time - prev);
    prev = r.time;
    put_u8(out, r.join ? 1 : 0);
    if (!r.join) put_varint(out, r.victim);
    put_varint(out, r.shard);  // v4: joins need routing too, so every record
  }

  put_varint(out, t.picks.size());
  prev = 0;
  for (const PickRecord& r : t.picks) {
    put_varint(out, r.time - prev);
    prev = r.time;
    put_varint(out, r.chosen);
  }

  put_varint(out, t.faults.size());
  prev = 0;
  for (const FaultRecord& r : t.faults) {
    put_varint(out, r.time - prev);
    prev = r.time;
    put_varint(out, r.value);
  }
}

Trace decode_trace(Reader& r) {
  Trace t;
  t.fingerprint = r.varint();
  t.seed = r.varint();
  t.recorded_hash = r.u64();
  t.churn_loop = r.u8() != 0;

  // Counts are not trusted for allocation: each record consumes bytes, so a
  // lying count hits a truncation error before the vector outgrows the file.
  std::uint64_t count = r.varint();
  if (count > r.remaining()) r.fail("net record count exceeds file size");
  sim::Time prev = 0;
  t.net.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    NetRecord rec;
    prev += r.varint();
    rec.time = prev;
    rec.from = static_cast<sim::ProcessId>(r.varint());
    rec.to = static_cast<sim::ProcessId>(r.varint());
    rec.type = static_cast<net::PayloadTypeId>(r.varint());
    rec.lost = r.u8() != 0;
    rec.delay = rec.lost ? 0 : static_cast<sim::Duration>(r.varint());
    t.net.push_back(rec);
  }

  count = r.varint();
  if (count > r.remaining()) r.fail("churn record count exceeds file size");
  prev = 0;
  t.churn.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    ChurnRecord rec;
    prev += r.varint();
    rec.time = prev;
    rec.join = r.u8() != 0;
    rec.victim = rec.join ? 0 : static_cast<sim::ProcessId>(r.varint());
    rec.shard = static_cast<std::uint32_t>(r.varint());
    t.churn.push_back(rec);
  }

  count = r.varint();
  if (count > r.remaining()) r.fail("pick record count exceeds file size");
  prev = 0;
  t.picks.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    PickRecord rec;
    prev += r.varint();
    rec.time = prev;
    rec.chosen = static_cast<sim::ProcessId>(r.varint());
    t.picks.push_back(rec);
  }

  count = r.varint();
  if (count > r.remaining()) r.fail("fault record count exceeds file size");
  prev = 0;
  t.faults.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    FaultRecord rec;
    prev += r.varint();
    rec.time = prev;
    rec.value = r.varint();
    t.faults.push_back(rec);
  }
  return t;
}

/// fold64 over the buffer, 8 bytes at a time (zero-padded tail), length
/// folded in last so appended zero bytes change the digest.
std::uint64_t checksum(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0x445254522d763101ULL;  // "DRTR-v1" + 0x01
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t chunk = 0;
    std::memcpy(&chunk, data + i, 8);
    h = fold64(h, chunk);
  }
  if (i < size) {
    std::uint64_t chunk = 0;
    std::memcpy(&chunk, data + i, size - i);
    h = fold64(h, chunk);
  }
  return fold64(h, size);
}

}  // namespace

void encode_config(const harness::ExperimentConfig& cfg, std::vector<std::uint8_t>& out) {
  put_u8(out, static_cast<std::uint8_t>(cfg.protocol));
  put_u8(out, static_cast<std::uint8_t>(cfg.timing));
  put_varint(out, cfg.n);
  put_varint(out, cfg.delta);
  put_varint(out, cfg.duration);
  put_varint(out, cfg.seed);
  put_u8(out, static_cast<std::uint8_t>(cfg.churn_kind));
  put_double(out, cfg.churn_rate);
  put_u8(out, static_cast<std::uint8_t>(cfg.leave_policy));
  put_varint(out, cfg.gst);
  put_varint(out, cfg.pre_gst_max);
  put_double(out, cfg.loss_rate);
  put_u8(out, cfg.es_atomic_reads ? 1 : 0);
  put_opt_duration(out, cfg.sync_delta_pp);
  put_opt_duration(out, cfg.sync_refresh_interval);
  put_u8(out, static_cast<std::uint8_t>(cfg.workload.kind));
  put_varint(out, cfg.workload.read_interval);
  put_varint(out, cfg.workload.write_interval);
  put_u8(out, cfg.workload.writes_enabled ? 1 : 0);
  put_u8(out, static_cast<std::uint8_t>(cfg.workload.writer_mode));
  put_varint(out, cfg.workload.concurrent_writers);
  put_varint(out, cfg.workload.clients);
  put_varint(out, cfg.workload.think_time);
  put_varint(out, cfg.workload.burst_on);
  put_varint(out, cfg.workload.burst_off);
  put_u8(out, static_cast<std::uint8_t>(cfg.dissemination));
  put_varint(out, cfg.tree_fanout);
  // Format v3 appendix: per-op client policy, ES hardening, fault::Plan.
  put_varint(out, cfg.workload.op_deadline);
  put_varint(out, cfg.workload.retry_max_attempts);
  put_varint(out, cfg.workload.retry_backoff);
  put_u8(out, cfg.workload.retry_exponential ? 1 : 0);
  put_u8(out, cfg.es_retransmit_backoff ? 1 : 0);
  put_u8(out, cfg.es_validate_replies ? 1 : 0);
  put_double(out, cfg.fault.crash.rate);
  put_double(out, cfg.fault.crash.recover_fraction);
  put_varint(out, cfg.fault.crash.recovery_delay);
  put_u8(out, static_cast<std::uint8_t>(cfg.fault.crash.restart));
  put_double(out, cfg.fault.partition.rate);
  put_varint(out, cfg.fault.partition.duration);
  put_double(out, cfg.fault.partition.fraction);
  put_u8(out, cfg.fault.partition.asymmetric ? 1 : 0);
  put_double(out, cfg.fault.byzantine.fraction);
  put_double(out, cfg.fault.byzantine.transform_rate);
  put_u8(out, static_cast<std::uint8_t>((cfg.fault.byzantine.equivocate ? 1 : 0) |
                                        (cfg.fault.byzantine.stale_replay ? 2 : 0) |
                                        (cfg.fault.byzantine.forge ? 4 : 0) |
                                        (cfg.fault.byzantine.corrupt ? 8 : 0)));
  put_varint(out, cfg.fault.tick);
  // Format v4 appendix: the shard layer and the keyed workload. (The
  // chronicle_aggregate flag is deliberately NOT encoded: it changes memory
  // accounting only, never results, so it must not split fingerprints.)
  put_varint(out, cfg.shard_count);
  put_varint(out, cfg.workload.key_count);
  put_double(out, cfg.workload.zipf_s);
  put_double(out, cfg.workload.read_frac);
  put_varint(out, cfg.workload.storm_every);
  put_varint(out, cfg.workload.storm_len);
}

harness::ExperimentConfig decode_config(const std::vector<std::uint8_t>& bytes,
                                        std::size_t& pos) {
  Reader r(bytes, pos);
  harness::ExperimentConfig cfg;
  cfg.protocol = static_cast<harness::Protocol>(enum_u8(r, 3, "protocol"));
  cfg.timing = static_cast<harness::Timing>(enum_u8(r, 1, "timing"));
  cfg.n = static_cast<std::size_t>(r.varint());
  cfg.delta = static_cast<sim::Duration>(r.varint());
  cfg.duration = static_cast<sim::Time>(r.varint());
  cfg.seed = r.varint();
  cfg.churn_kind = static_cast<harness::ChurnKind>(enum_u8(r, 1, "churn kind"));
  cfg.churn_rate = r.dbl();
  cfg.leave_policy = static_cast<churn::LeavePolicy>(enum_u8(r, 1, "leave policy"));
  cfg.gst = static_cast<sim::Time>(r.varint());
  cfg.pre_gst_max = static_cast<sim::Duration>(r.varint());
  cfg.loss_rate = r.dbl();
  cfg.es_atomic_reads = r.u8() != 0;
  cfg.sync_delta_pp = get_opt_duration(r);
  cfg.sync_refresh_interval = get_opt_duration(r);
  cfg.workload.kind = static_cast<workload::Kind>(enum_u8(r, 2, "workload kind"));
  cfg.workload.read_interval = static_cast<sim::Duration>(r.varint());
  cfg.workload.write_interval = static_cast<sim::Duration>(r.varint());
  cfg.workload.writes_enabled = r.u8() != 0;
  cfg.workload.writer_mode = static_cast<workload::WriterMode>(enum_u8(r, 1, "writer mode"));
  cfg.workload.concurrent_writers = static_cast<std::size_t>(r.varint());
  cfg.workload.clients = static_cast<std::size_t>(r.varint());
  cfg.workload.think_time = static_cast<sim::Duration>(r.varint());
  cfg.workload.burst_on = static_cast<sim::Duration>(r.varint());
  cfg.workload.burst_off = static_cast<sim::Duration>(r.varint());
  cfg.dissemination =
      static_cast<harness::Dissemination>(enum_u8(r, 1, "dissemination"));
  cfg.tree_fanout = static_cast<std::size_t>(r.varint());
  cfg.workload.op_deadline = static_cast<sim::Duration>(r.varint());
  cfg.workload.retry_max_attempts = static_cast<std::uint32_t>(r.varint());
  cfg.workload.retry_backoff = static_cast<sim::Duration>(r.varint());
  cfg.workload.retry_exponential = r.u8() != 0;
  cfg.es_retransmit_backoff = r.u8() != 0;
  cfg.es_validate_replies = r.u8() != 0;
  cfg.fault.crash.rate = r.dbl();
  cfg.fault.crash.recover_fraction = r.dbl();
  cfg.fault.crash.recovery_delay = static_cast<sim::Duration>(r.varint());
  cfg.fault.crash.restart =
      static_cast<fault::RestartState>(enum_u8(r, 1, "restart state"));
  cfg.fault.partition.rate = r.dbl();
  cfg.fault.partition.duration = static_cast<sim::Duration>(r.varint());
  cfg.fault.partition.fraction = r.dbl();
  cfg.fault.partition.asymmetric = r.u8() != 0;
  cfg.fault.byzantine.fraction = r.dbl();
  cfg.fault.byzantine.transform_rate = r.dbl();
  const std::uint8_t byz_kinds = enum_u8(r, 15, "byzantine kinds");
  cfg.fault.byzantine.equivocate = (byz_kinds & 1) != 0;
  cfg.fault.byzantine.stale_replay = (byz_kinds & 2) != 0;
  cfg.fault.byzantine.forge = (byz_kinds & 4) != 0;
  cfg.fault.byzantine.corrupt = (byz_kinds & 8) != 0;
  cfg.fault.tick = static_cast<sim::Duration>(r.varint());
  cfg.shard_count = static_cast<std::size_t>(r.varint());
  cfg.workload.key_count = static_cast<std::size_t>(r.varint());
  cfg.workload.zipf_s = r.dbl();
  cfg.workload.read_frac = r.dbl();
  cfg.workload.storm_every = static_cast<sim::Duration>(r.varint());
  cfg.workload.storm_len = static_cast<sim::Duration>(r.varint());
  pos = r.pos();
  return cfg;
}

std::uint64_t fingerprint(const harness::ExperimentConfig& cfg) {
  harness::ExperimentConfig keyed = cfg;
  keyed.seed = 0;  // traces are keyed (fingerprint, seed); keep them orthogonal
  std::vector<std::uint8_t> bytes;
  encode_config(keyed, bytes);
  const std::uint64_t h = checksum(bytes.data(), bytes.size());
  return h == 0 ? 1 : h;
}

std::vector<std::uint8_t> encode(const TraceFile& file) {
  std::vector<std::uint8_t> out;
  put_u32(out, kTraceMagic);
  put_u32(out, kTraceVersion);
  put_string(out, file.experiment);
  put_varint(out, file.seeds.size());
  for (const std::uint64_t s : file.seeds) put_varint(out, s);
  put_u8(out, file.config.has_value() ? 1 : 0);
  if (file.config.has_value()) encode_config(*file.config, out);
  put_varint(out, file.traces.size());
  for (const Trace& t : file.traces) encode_trace(t, out);
  put_u64(out, checksum(out.data(), out.size()));
  return out;
}

TraceFile decode(const std::vector<std::uint8_t>& bytes) {
  Reader header(bytes, 0);
  const std::uint32_t magic = header.u32();
  if (magic != kTraceMagic) {
    throw TraceError("not a dynreg trace file (bad magic 0x" + [magic] {
      char buf[9];
      std::snprintf(buf, sizeof(buf), "%08x", magic);
      return std::string(buf);
    }() + ", expected DRTR)");
  }
  const std::uint32_t version = header.u32();
  if (version != kTraceVersion) {
    throw TraceError("unsupported trace format version " + std::to_string(version) +
                     " (this build reads version " + std::to_string(kTraceVersion) + ")");
  }
  if (bytes.size() < 16) throw TraceError("truncated: no room for checksum");
  Reader tail(bytes, bytes.size() - 8);
  const std::uint64_t stored = tail.u64();
  const std::uint64_t actual = checksum(bytes.data(), bytes.size() - 8);
  if (stored != actual) {
    throw TraceError("checksum mismatch: file is corrupted (stored " +
                     std::to_string(stored) + ", computed " + std::to_string(actual) + ")");
  }

  TraceFile file;
  file.experiment = header.str();
  const std::uint64_t seed_count = header.varint();
  if (seed_count > header.remaining()) header.fail("seed count exceeds file size");
  file.seeds.reserve(static_cast<std::size_t>(seed_count));
  for (std::uint64_t i = 0; i < seed_count; ++i) file.seeds.push_back(header.varint());
  if (header.u8() != 0) {
    std::size_t pos = header.pos();
    file.config = decode_config(bytes, pos);
    header = Reader(bytes, pos);
  }
  const std::uint64_t trace_count = header.varint();
  if (trace_count > header.remaining()) header.fail("trace count exceeds file size");
  file.traces.reserve(static_cast<std::size_t>(trace_count));
  for (std::uint64_t i = 0; i < trace_count; ++i) {
    file.traces.push_back(decode_trace(header));
  }
  return file;
}

void write_file(const std::string& path, const TraceFile& file) {
  const std::vector<std::uint8_t> bytes = encode(file);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw TraceError("cannot open '" + path + "' for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw TraceError("short write to '" + path + "'");
}

TraceFile read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceError("cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (in.bad()) throw TraceError("read error on '" + path + "'");
  return decode(bytes);
}

}  // namespace dynreg::replay
