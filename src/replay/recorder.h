// Trace recording: observer + wrapper objects that capture one run's
// nondeterminism-relevant decisions into a replay::Trace as the run makes
// them. Pure pass-through — a recorded run consumes exactly the same rng
// draws in exactly the same order as an unrecorded one, so recording never
// changes the run it records.
#pragma once

#include <memory>
#include <utility>

#include "churn/system.h"
#include "client/client.h"
#include "net/delay_model.h"
#include "replay/trace.h"

namespace dynreg::replay {

/// Captures churn-driven membership actions and client target picks.
/// Install via System::set_churn_observer + Client::set_target_observer;
/// must outlive the run. Network decisions are captured separately by
/// RecordingDelayModel (the network owns its delay model, so a wrapper —
/// not an observer — is the natural seam there).
class TraceRecorder final : public churn::ChurnObserver, public client::TargetObserver {
 public:
  explicit TraceRecorder(Trace& out) : out_(out) {}

  void on_churn_join(sim::Time t) override { out_.churn.push_back({t, true, 0}); }
  void on_churn_leave(sim::Time t, sim::ProcessId victim) override {
    out_.churn.push_back({t, false, victim});
  }
  void on_target(sim::Time now, sim::ProcessId chosen) override {
    out_.picks.push_back({now, chosen});
  }

 private:
  Trace& out_;
};

/// Per-shard churn recorder for sharded runs (src/shard/): each shard's
/// System gets its own observer tagging records with the shard id, all
/// appending to the one shared Trace in execution order. Replay routes each
/// record back to its shard's ReplayChurnModel by this tag (replayer.h) —
/// ids and churn-tick times repeat across shards, so an untagged stream
/// could not be demultiplexed.
class ShardChurnRecorder final : public churn::ChurnObserver {
 public:
  ShardChurnRecorder(Trace& out, std::uint32_t shard) : out_(out), shard_(shard) {}

  void on_churn_join(sim::Time t) override {
    out_.churn.push_back({t, true, 0, shard_});
  }
  void on_churn_leave(sim::Time t, sim::ProcessId victim) override {
    out_.churn.push_back({t, false, victim, shard_});
  }

 private:
  Trace& out_;
  std::uint32_t shard_;
};

/// Wraps the run's real delay model, appending every verdict (loss decision
/// + delivery delay) to the trace's net stream in transmit order.
class RecordingDelayModel final : public net::DelayModel {
 public:
  RecordingDelayModel(std::unique_ptr<net::DelayModel> inner, Trace& out)
      : inner_(std::move(inner)), out_(out) {}

  sim::Duration delay(sim::Time now, sim::ProcessId from, sim::ProcessId to,
                      const net::Payload& payload, sim::Rng& rng) override {
    // Unreached through the network (verdict() is the single entry point),
    // but the contract must hold for direct callers too.
    return inner_->delay(now, from, to, payload, rng);
  }

  Verdict verdict(sim::Time now, sim::ProcessId from, sim::ProcessId to,
                  const net::Payload& payload, double loss_rate, sim::Rng& rng) override {
    const Verdict v = inner_->verdict(now, from, to, payload, loss_rate, rng);
    out_.net.push_back(
        {now, from, to, payload.type_id(), v.lost, v.lost ? sim::Duration{0} : v.delay});
    return v;
  }

 private:
  std::unique_ptr<net::DelayModel> inner_;
  Trace& out_;
};

}  // namespace dynreg::replay
