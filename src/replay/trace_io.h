// Versioned binary serialization for schedule traces, and the canonical
// ExperimentConfig encoding that both the trace file format and the replay
// session's config fingerprint are built on.
//
// File format (all integers little-endian; "varint" is LEB128):
//
//   u32  magic    0x52545244 ("DRTR")
//   u32  version  1
//   varint experiment-name length + bytes   (registry id, may be empty)
//   varint seed count + varint seeds        (the run set recorded)
//   u8   has-config; if 1: canonical ExperimentConfig encoding (the single
//        scenario the file's traces drive — search/minimize artifacts)
//   varint trace count
//   per trace:
//     varint fingerprint, varint seed, u64 recorded-hash, u8 churn-loop
//     four streams (net, churn, picks, faults), each varint count + records
//     with delta-encoded times and varint fields; net records carry the
//     interned payload type id and a flags byte (lost); fault records carry
//     the raw 64-bit decision word
//   u64  checksum   fold64 over every preceding byte
//
// The decoder is fully bounds-checked and throws TraceError (with a
// position-stamped message) on truncation, bad magic, unknown version, or a
// checksum mismatch — never UB, whatever the bytes. trace_format_test
// fuzzes it with seeded corruptions under ASan/UBSan.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "replay/trace.h"

namespace dynreg::replay {

inline constexpr std::uint32_t kTraceMagic = 0x52545244u;  // "DRTR"
// Version 2 appended the dissemination mode + tree fanout to the embedded
// config. Version 3 added the fault-decision stream per trace (crash /
// partition / Byzantine words, see replay/trace.h) and appended the per-op
// client policy, ES hardening flags, and the fault::Plan to the embedded
// config. Version 4 tags every churn record with its owning shard and
// appends the shard layer (shard_count) and keyed-workload fields
// (key_count, zipf_s, read_frac, storm_every, storm_len) to the embedded
// config, so sharded runs record/replay/search like everything else. Older
// files are rejected (no binary traces are kept as fixtures; recordings are
// artifacts of the session that made them).
inline constexpr std::uint32_t kTraceVersion = 4u;

/// Malformed trace bytes (truncation, bad magic, version from the future,
/// corrupted body). The message names the offending offset or field.
class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Canonical binary encoding of an ExperimentConfig — every field, in a
/// fixed order, appended to `out`. The encoding (not the in-memory struct)
/// is the unit of config identity: fingerprint() folds over it, and trace
/// files embed it for scenario artifacts.
void encode_config(const harness::ExperimentConfig& cfg, std::vector<std::uint8_t>& out);

/// Inverse of encode_config; throws TraceError on malformed bytes.
/// Advances `pos` past the encoding.
harness::ExperimentConfig decode_config(const std::vector<std::uint8_t>& bytes,
                                        std::size_t& pos);

/// Identity of a run's scenario: fold64 over the canonical encoding of the
/// config with its seed field zeroed (the replay session keys traces by
/// (fingerprint, seed), so the seed must not leak into the fingerprint).
/// Never 0 (0 means "no fingerprint").
std::uint64_t fingerprint(const harness::ExperimentConfig& cfg);

/// One trace artifact: a recorded run set (experiment + seeds, many traces)
/// or a single scenario schedule (embedded config, one trace — what search
/// and minimize write).
struct TraceFile {
  std::string experiment;                           ///< registry id, may be ""
  std::vector<std::uint64_t> seeds;                 ///< recorded seed set
  std::optional<harness::ExperimentConfig> config;  ///< scenario artifacts only
  std::vector<Trace> traces;
};

std::vector<std::uint8_t> encode(const TraceFile& file);
TraceFile decode(const std::vector<std::uint8_t>& bytes);

/// Writes encode(file) to `path` (throws TraceError on I/O failure).
void write_file(const std::string& path, const TraceFile& file);
/// Reads and decodes `path` (throws TraceError on I/O or format failure).
TraceFile read_file(const std::string& path);

}  // namespace dynreg::replay
