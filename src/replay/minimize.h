// Counterexample minimization: shrink a violating schedule trace to a
// locally-minimal set of essential decisions via delta debugging (Zeller's
// ddmin over "atoms"), then render it as a human-readable event narrative.
//
// An *atom* is one decision that can be neutralized independently:
//
//   churn record   neutralize = delete it (the join/leave never happens);
//   net record     neutralize = canonicalize it (delivered, not lost, at
//                  the trace's canonical delay — the median recorded delay)
//                  — records already canonical are not atoms.
//
// Client picks are left untouched: they describe the workload (who was
// asked to read), not the schedule, and the violation's reads are named by
// the checker's report instead. The minimizer searches for the smallest
// atom subset whose original values keep the replayed run violating; all
// other atoms are neutralized. A greedy 1-minimal pass then drops any
// single atom that proves removable, so the result is locally minimal:
// neutralizing any one remaining essential decision makes the violation
// disappear.
//
// Fully deterministic: atom order, chunking, and the test sequence are pure
// functions of the input trace.
#pragma once

#include <cstddef>
#include <string>

#include "harness/experiment.h"
#include "replay/trace.h"

namespace dynreg::replay {

struct MinimizeOptions {
  /// Hard cap on replays executed; the search stops (keeping the best
  /// reduction so far) when exhausted. ddmin is O(atoms^2) worst case, so
  /// the cap bounds pathological inputs, not typical ones.
  std::size_t max_tests = 4000;
};

struct MinimizeResult {
  /// The minimized schedule: every non-essential atom neutralized. Still
  /// violates on replay (violating == true unless the input did not).
  Trace trace;
  std::size_t essential = 0;      ///< essential decisions kept
  std::size_t atoms = 0;          ///< atoms in the input trace
  std::size_t tests = 0;          ///< replays executed
  bool violating = false;         ///< the minimized trace still violates
  /// Ordered human-readable counterexample: scenario line, the violation
  /// the checker reports, then the essential decisions in time order.
  std::string narrative;
};

/// Minimizes `violating_trace` (a trace whose replay against `cfg` breaks
/// regularity — typically SearchResult::counterexample). If the input does
/// not actually violate, returns it unchanged with violating == false.
MinimizeResult minimize(const harness::ExperimentConfig& cfg,
                        const Trace& violating_trace,
                        const MinimizeOptions& opt = {});

}  // namespace dynreg::replay
