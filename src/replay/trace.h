// The schedule trace: every nondeterminism-relevant decision one simulated
// run makes, in the order it makes them.
//
// A run's behaviour is a pure function of (config, seed) — the PR-6 audit
// hash enforces that end to end. A Trace captures the *decisions* that the
// seed feeds into the run, at the four points where the shared sim::Rng is
// consulted:
//
//   net     per message copy: the loss decision and the delivery delay
//           (net::DelayModel::verdict), tagged with send time, endpoints,
//           and the interned payload type id;
//   churn   every churn-driven join and leave, in execution order (the
//           victim pick is the rng draw being captured);
//   picks   every client target selection (open-loop reads, sessions,
//           retry re-targeting all flow through Client::random_active);
//   faults  every fault-engine decision (fault::DecisionSource raw draws:
//           crash victims, partition salts, Byzantine transform choices),
//           in draw order — format v3.
//
// Re-feeding a trace through the replay models (replay/replayer.h) consumes
// these streams *positionally* — the k-th transmit gets the k-th net
// record — and never touches the run's Rng, so an unperturbed replay is
// byte-identical to the original (same trace_hash, same emitter output).
// A perturbed trace (replay/search.h) deliberately diverges: once the
// replayed run stops lining up with the recording, later records land on
// different messages and exhausted streams fall back to a seeded
// fallback Rng — still fully deterministic, just a different schedule.
//
// Serialization lives in replay/trace_io.h (versioned binary format).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "net/payload_type.h"
#include "sim/event_queue.h"

namespace dynreg::replay {

/// One network transmit decision (loss + delay), as seen by the delay model.
struct NetRecord {
  sim::Time time = 0;  ///< send time (the transmit's `now`)
  sim::ProcessId from = 0;
  sim::ProcessId to = 0;
  net::PayloadTypeId type = 0;
  bool lost = false;          ///< omission fault: the copy never arrives
  sim::Duration delay = 1;    ///< delivery delay (unused when lost)
};

/// One churn-driven membership action. Joins carry no id (process ids are
/// assigned deterministically by the system); leaves name their victim.
/// Sharded runs (src/shard/) tag each record with the shard whose System
/// executed it: the shard's replay churn model consumes only its own
/// records, because ids and churn ticks repeat across shards and a shared
/// positional cursor would misroute them. Unsharded runs leave shard == 0.
struct ChurnRecord {
  sim::Time time = 0;
  bool join = false;
  sim::ProcessId victim = 0;  ///< leaves only
  std::uint32_t shard = 0;    ///< owning shard (format v4; 0 when unsharded)
};

/// One client target selection (Client::random_active draw).
struct PickRecord {
  sim::Time time = 0;
  sim::ProcessId chosen = 0;
};

/// One fault-engine decision: the raw 64-bit word a fault::DecisionSource
/// draw produced. Recording the word (rather than the derived crash victim /
/// transform choice) keeps the stream independent of how the injector
/// interprets it, so the schedule search can scramble the word and get a
/// different-but-legal fault at the same decision point.
struct FaultRecord {
  sim::Time time = 0;
  std::uint64_t value = 0;
};

/// The recorded schedule of one run.
struct Trace {
  std::uint64_t fingerprint = 0;    ///< config/scenario key (see trace_io.h)
  std::uint64_t seed = 0;           ///< the recorded run's seed
  /// sim::Simulation::trace_hash() of the recorded run; 0 when the build
  /// carries no auditor (release preset). Replay compares when nonzero.
  std::uint64_t recorded_hash = 0;
  /// Whether the recorded run drove a churn tick loop (ConstantChurn with
  /// rate > 0). Replay must reproduce the loop's event cadence exactly, so
  /// this is recorded rather than inferred from the (possibly empty) churn
  /// stream.
  bool churn_loop = false;

  std::vector<NetRecord> net;
  std::vector<ChurnRecord> churn;
  std::vector<PickRecord> picks;
  std::vector<FaultRecord> faults;

  /// Largest recorded delivery delay (>= 1). Doubles as the legal-schedule
  /// envelope: perturbations that stay under it keep the schedule within
  /// whatever timing assumption the recorded model obeyed, and exhausted
  /// replay streams draw fallback delays from [1, max_delay()].
  [[nodiscard]] sim::Duration max_delay() const {
    sim::Duration m = 1;
    for (const NetRecord& r : net) {
      if (!r.lost && r.delay > m) m = r.delay;
    }
    return m;
  }

  /// Total recorded decisions (all streams).
  [[nodiscard]] std::size_t size() const {
    return net.size() + churn.size() + picks.size() + faults.size();
  }
};

/// splitmix64-style fold, the repo's standard mixing step (same finalizer as
/// sim::Rng / Simulation::audit_note). Used for fingerprints and scenario
/// keys; never on an event path.
inline std::uint64_t fold64(std::uint64_t h, std::uint64_t v) {
  std::uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Key for a scripted scenario (benches that build their world by hand and
/// have no ExperimentConfig): a salted fold of the scenario name and its
/// distinguishing parameters. Shares the fingerprint keyspace of
/// replay::fingerprint (collisions are astronomically unlikely and would
/// only conflate two identical-keyed scenarios).
inline std::uint64_t scenario_key(const char* name,
                                  std::initializer_list<std::uint64_t> parts) {
  std::uint64_t h = 0x5343454e4152494fULL;  // "SCENARIO"
  for (const char* p = name; *p != '\0'; ++p) {
    h = fold64(h, static_cast<unsigned char>(*p));
  }
  for (const std::uint64_t v : parts) h = fold64(h, v);
  return h == 0 ? 1 : h;  // 0 is "no scenario key"
}

}  // namespace dynreg::replay
