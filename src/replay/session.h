// The process-wide record/replay session. harness::run_experiment consults
// it on every no-hooks run: in record mode each run is captured and
// committed here; in replay mode each run is driven from the trace filed
// under its (config fingerprint, seed) key.
//
// The session is the bridge between the CLI (`dynreg_exp record|replay`,
// which sets the mode around a whole experiment invocation) and the runs an
// experiment's sweep spawns — possibly thousands, possibly concurrently
// (parallel_sweep). All entry points are thread-safe. Determinism across
// --jobs holds because a run's trace is a pure function of (config, seed):
// when a sweep runs identical (config, seed) replicas, whichever commits
// first wins and the rest are byte-identical duplicates, so the collected
// trace set is independent of scheduling.
//
// Nested replay machinery (schedule search, the minimizer) bypasses the
// session entirely via the run_experiment(cfg, RunHooks) overload.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "replay/trace.h"

namespace dynreg::replay {

class Session {
 public:
  enum class Mode { kOff, kRecord, kReplay };

  static Session& instance();

  /// Enters record mode (discarding any previous state).
  void begin_record();

  /// Enters replay mode over the given traces, keyed by (fingerprint, seed).
  void begin_replay(std::vector<Trace> traces);

  /// Returns to kOff and clears all state.
  void end();

  [[nodiscard]] Mode mode() const;

  /// Record mode: files one run's trace. First commit per key wins (see
  /// header comment); later identical commits are dropped.
  void commit(Trace trace);

  /// Replay mode: the trace for this key. Throws TraceError when the
  /// session holds no such trace — a replay that silently fell back to
  /// fresh randomness would defeat the whole point.
  [[nodiscard]] std::shared_ptr<const Trace> find(std::uint64_t fingerprint,
                                                  std::uint64_t seed) const;

  /// Replay mode: tallies one completed replayed run and whether its audit
  /// hash matched the recording (hash_match must be true when either side
  /// ran without DYNREG_AUDIT — there is nothing to compare).
  void note_replay(bool hash_match);

  /// Snapshot of the committed traces in deterministic (fingerprint, seed)
  /// order — what `dynreg_exp record` serializes.
  [[nodiscard]] std::vector<Trace> collected() const;

  [[nodiscard]] std::size_t replays() const;
  [[nodiscard]] std::size_t hash_mismatches() const;

 private:
  Session() = default;

  using Key = std::pair<std::uint64_t, std::uint64_t>;  // (fingerprint, seed)

  mutable std::mutex mutex_;
  Mode mode_ = Mode::kOff;
  std::map<Key, std::shared_ptr<const Trace>> traces_;
  std::size_t replays_ = 0;
  std::size_t hash_mismatches_ = 0;
};

}  // namespace dynreg::replay
