#include "client/client.h"

#include <algorithm>
#include <utility>

namespace dynreg::client {

namespace {

/// splitmix64 finalizer — the repo's standard mixing step, duplicated here
/// (rather than pulling replay/trace.h into the client) because the client
/// sits *below* the replay layer and must not depend on it.
std::uint64_t mix64(std::uint64_t v) {
  std::uint64_t z = v + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Client::Client(sim::Simulation& sim, churn::System& system,
               consistency::History& history, sim::Time horizon)
    : sim_(sim), system_(system), history_(history), horizon_(horizon) {}

sim::Duration Client::retry_delay(const OpRecord& rec) const {
  const RetryPolicy& retry = rec.options.retry;
  if (!retry.exponential || retry.backoff == 0) return retry.backoff;
  const std::uint32_t exp = std::min<std::uint32_t>(rec.attempts - 1, 5);
  const sim::Duration base = retry.backoff << exp;
  // Jitter from a pure hash of (seed, op, attempt): deterministic per run,
  // different across ops/attempts, zero Rng draws (replay-transparent).
  const std::uint64_t h =
      mix64(mix64(sim_.seed() ^ (rec.id * 0x9e3779b97f4a7c15ULL)) ^ rec.attempts);
  return base + static_cast<sim::Duration>(h % retry.backoff);
}

RegisterNode* Client::node(sim::ProcessId id) {
  return dynamic_cast<RegisterNode*>(system_.find(id));
}

OpRecord& Client::new_record(OpType type, sim::ProcessId target, OpOptions options,
                             OpHook done) {
  records_.emplace_back();
  OpRecord& rec = records_.back();
  rec.id = static_cast<OpId>(records_.size() - 1);
  rec.type = type;
  rec.target = target;
  rec.options = std::move(options);
  rec.invoked_at = sim_.now();
  rec.on_resolved = std::move(done);
  return rec;
}

OpHandle Client::read(sim::ProcessId target, OpOptions options, OpHook done) {
  OpRecord& rec = new_record(OpType::kRead, target, std::move(options), std::move(done));
  start_attempt(rec);
  return OpHandle(&rec);
}

OpHandle Client::write(sim::ProcessId target, Value v, OpOptions options, OpHook done) {
  OpRecord& rec = new_record(OpType::kWrite, target, std::move(options), std::move(done));
  rec.value = v;
  start_attempt(rec);
  return OpHandle(&rec);
}

OpHandle Client::session_read(sim::ProcessId target, OpOptions options, OpHook done) {
  OpRecord& rec = new_record(OpType::kRead, target, std::move(options), std::move(done));
  rec.session = true;
  enqueue_session(rec);
  return OpHandle(&rec);
}

OpHandle Client::session_write(sim::ProcessId target, Value v, OpOptions options,
                               OpHook done) {
  OpRecord& rec = new_record(OpType::kWrite, target, std::move(options), std::move(done));
  rec.value = v;
  rec.session = true;
  enqueue_session(rec);
  return OpHandle(&rec);
}

std::optional<sim::ProcessId> Client::random_active() {
  const auto& actives = system_.active_ids();
  if (actives.empty()) return std::nullopt;
  const sim::ProcessId chosen =
      chooser_ != nullptr
          ? chooser_->choose_target(sim_.now(), actives)
          : actives[static_cast<std::size_t>(
                sim_.rng().uniform_int(0, actives.size() - 1))];
  if (target_observer_ != nullptr) target_observer_->on_target(sim_.now(), chosen);
  return chosen;
}

void Client::enqueue_session(OpRecord& rec) {
  rec.station = rec.target;
  Station& st = stations_[rec.target];
  if (st.busy) {
    st.queue.push_back(rec.id);
  } else {
    st.busy = true;
    start_attempt(rec);
  }
}

void Client::start_attempt(OpRecord& rec) {
  ++rec.attempts;
  if (rec.attempts > 1) ++stats_.retries;  // a re-dispatch, not the first issue
  rec.attempt_open = true;
  RegisterNode* reg = node(rec.target);
  if (reg == nullptr) {
    // Nothing went on the wire (not counted as issued): the target departed
    // before this attempt could start — e.g. a queued session op whose
    // station process left, or a retry against the original target.
    finish_attempt(rec, OpOutcome::kDroppedOnDeparture, kBottom);
    return;
  }
  const sim::Time now = sim_.now();
  const OpContext ctx{rec.id, now};
  if (rec.type == OpType::kRead) {
    // Issued counts operations, not dispatches: a retry re-enters here but
    // is accounted under stats_.retries, so completion rates stay per-op.
    if (rec.attempts == 1) ++stats_.reads_issued;
    rec.history_op = history_.begin_read(rec.target, now);
    reg->read(ctx, [this, id = rec.id, attempt = rec.attempts](OpOutcome o, Value v) {
      on_node_completion(id, attempt, o, v);
    });
  } else {
    if (rec.attempts == 1) ++stats_.writes_issued;
    rec.history_op = history_.begin_write(rec.target, now, rec.value);
    reg->write(ctx, rec.value, [this, id = rec.id, attempt = rec.attempts](OpOutcome o) {
      on_node_completion(id, attempt, o, kBottom);
    });
  }
  // The attempt may already have resolved (sync reads complete inside the
  // invocation); only a still-open attempt needs its deadline armed.
  if (rec.attempt_open && rec.options.deadline) {
    sim_.schedule_after(*rec.options.deadline,
                        [this, id = rec.id, attempt = rec.attempts] {
                          on_deadline(id, attempt);
                        });
  }
}

void Client::on_node_completion(OpId id, std::uint32_t attempt, OpOutcome outcome,
                                Value v) {
  OpRecord& rec = records_[id];
  // Late (post-timeout) or stale (previous attempt's) completions are
  // discarded: the record resolves exactly once, and each attempt is
  // accounted exactly once.
  if (rec.resolved || !rec.attempt_open || rec.attempts != attempt) return;
  finish_attempt(rec, outcome, v);
}

void Client::on_deadline(OpId id, std::uint32_t attempt) {
  OpRecord& rec = records_[id];
  if (rec.resolved || !rec.attempt_open || rec.attempts != attempt) return;
  finish_attempt(rec, OpOutcome::kTimedOut, kBottom);
}

void Client::finish_attempt(OpRecord& rec, OpOutcome outcome, Value v) {
  rec.attempt_open = false;
  const sim::Time now = sim_.now();
  if (outcome == OpOutcome::kOk) {
    if (rec.type == OpType::kRead) {
      history_.complete_read(rec.history_op, now, v);
      ++stats_.reads_completed;
      if (v == kBottom) ++stats_.reads_of_bottom;
      stats_.read_latencies.push_back(static_cast<double>(now - rec.invoked_at));
      rec.value = v;
    } else {
      history_.complete_write(rec.history_op, now);
      ++stats_.writes_completed;
      stats_.write_latencies.push_back(static_cast<double>(now - rec.invoked_at));
    }
    resolve(rec, OpOutcome::kOk);
    return;
  }

  // Failed attempt. Its history interval stays open: the operation may have
  // taken partial effect (a dropped write's broadcast may have landed), and
  // an open interval is exactly how the checkers model that.
  if (rec.type == OpType::kRead) {
    if (outcome == OpOutcome::kDroppedOnDeparture) {
      ++stats_.reads_dropped;
    } else {
      ++stats_.reads_timed_out;
    }
  } else {
    if (outcome == OpOutcome::kDroppedOnDeparture) {
      ++stats_.writes_dropped;
    } else {
      ++stats_.writes_timed_out;
    }
  }

  if (rec.attempts < rec.options.retry.max_attempts && now < horizon_) {
    // The failed service attempt is over: free its station slot now so the
    // FIFO keeps draining during the backoff (the retry re-enters a
    // station); the retry itself is counted when it actually re-issues.
    if (rec.station != OpRecord::kNoStation) {
      const sim::ProcessId st = rec.station;
      rec.station = OpRecord::kNoStation;
      release_station(st);
    }
    sim_.schedule_after(retry_delay(rec),
                        [this, id = rec.id, attempt = rec.attempts + 1] {
                          retry_attempt(id, attempt);
                        });
    return;
  }
  resolve(rec, outcome);
}

void Client::retry_attempt(OpId id, std::uint32_t attempt) {
  OpRecord& rec = records_[id];
  if (rec.resolved || rec.attempt_open || rec.attempts + 1 != attempt) return;
  if (node(rec.target) == nullptr) {
    if (rec.type == OpType::kWrite) {
      // Writes stay pinned to their writer; with the writer gone the
      // operation cannot be re-issued.
      resolve(rec, OpOutcome::kDroppedOnDeparture);
      return;
    }
    // Reads reconnect: re-target a uniformly random active process.
    const auto target = random_active();
    if (!target) {
      resolve(rec, OpOutcome::kDroppedOnDeparture);
      return;
    }
    rec.target = *target;
  }
  if (rec.session) {
    enqueue_session(rec);  // re-enter the new target's FIFO, never bypass it
  } else {
    start_attempt(rec);
  }
}

void Client::resolve(OpRecord& rec, OpOutcome outcome) {
  rec.resolved = true;
  rec.outcome = outcome;
  rec.responded_at = sim_.now();
  if (rec.on_resolved) {
    OpHook hook = std::move(rec.on_resolved);
    hook(OpHandle(&rec));
  }
  if (rec.station != OpRecord::kNoStation) {
    const sim::ProcessId st = rec.station;
    rec.station = OpRecord::kNoStation;
    release_station(st);
  }
}

void Client::release_station(sim::ProcessId target) {
  Station& st = stations_[target];
  if (st.queue.empty()) {
    st.busy = false;
    return;
  }
  // Hand the slot to the next queued op at a fresh event: resolution may be
  // running inside System::leave's drop cascade, where the departing target
  // is still half-attached — dispatching now would issue into a node that
  // is being torn down.
  sim_.schedule_after(0, [this, target] { pump_station(target); });
}

void Client::pump_station(sim::ProcessId target) {
  Station& st = stations_[target];
  if (st.queue.empty()) {
    st.busy = false;
    return;
  }
  const OpId id = st.queue.front();
  st.queue.pop_front();
  start_attempt(records_[id]);
}

void ClientSession::next_op() {
  if (sim_.now() >= config_.horizon) return;
  // Always advance at least one tick per cycle (see Config::think_time):
  // instantaneous reads would otherwise re-issue at the same timestamp
  // forever and the run would never finish.
  const sim::Duration pause = std::max<sim::Duration>(1, config_.think_time);
  const auto target = client_.random_active();
  if (!target) {
    sim_.schedule_after(pause, [this] { next_op(); });
    return;
  }
  ++ops_issued_;
  // Fire-and-forget: the session reacts through the resolution hook and
  // never inspects the op again, so the handle is intentionally dropped.
  (void)client_.session_read(*target, config_.op_options,
                             [this, pause](const OpHandle&) {
                               sim_.schedule_after(pause, [this] { next_op(); });
                             });
}

}  // namespace dynreg::client
