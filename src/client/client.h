// The client layer: issues register operations against the deployed system
// and owns everything the protocols should not — operation identity, typed
// outcomes, history recording, latency capture, per-op deadlines, retries,
// and closed-loop session scheduling.
//
// Before this layer, every bench re-implemented its own invoke/record glue
// around bare callbacks. Now a single Client fronts the system:
//
//   Client::read/write     issue one operation and return an OpHandle; the
//                          operation resolves with a typed OpOutcome.
//   Client::session_read   closed-loop entry point: operations against the
//                          same process serialize FIFO (a process serves one
//                          client operation at a time), which is what makes
//                          latency grow with client count under load.
//   ClientSession          one closed-loop client: issue, await resolution,
//                          think, repeat.
//
// Determinism contract (see docs/ARCHITECTURE.md): a Client draws randomness
// only from the run's one sim::Rng (retry re-targeting, session targeting),
// so a (config, seed) pair fully determines every record. OpRecords live in
// a std::deque owned by the Client — OpHandles are non-owning views that
// stay valid for the Client's lifetime and are never invalidated by later
// operations.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "churn/system.h"
#include "consistency/history.h"
#include "dynreg/operation.h"
#include "dynreg/register_node.h"
#include "sim/simulation.h"

namespace dynreg::client {

/// Re-issue policy for failed attempts (dropped on departure or timed out).
/// A retried read re-targets a uniformly random active process when its
/// original target is gone; a retried write stays pinned to its writer (and
/// resolves as dropped if the writer left). Each attempt opens a fresh
/// history interval — the failed attempt's interval stays open, which the
/// checkers already treat correctly (concurrent with everything after it).
struct RetryPolicy {
  /// Total attempts allowed, first issue included; 1 means no retry.
  std::uint32_t max_attempts = 1;
  /// Delay between a failed attempt and its re-issue (the base delay under
  /// exponential backoff).
  sim::Duration backoff = 0;
  /// Exponential backoff with deterministic jitter: the k-th retry waits
  /// backoff * 2^min(k-1, 5) plus a jitter in [0, backoff) hashed purely
  /// from (run seed, op id, attempt). The jitter consumes no Rng draw, so
  /// it is invisible to the record/replay streams and retries of different
  /// operations still decorrelate (no retry convoys after a partition
  /// heals). false keeps the historical fixed backoff byte-identically.
  bool exponential = false;
};

struct OpOptions {
  /// Resolve the operation as kTimedOut if it has not resolved this many
  /// ticks after an attempt is issued. The protocol-side operation keeps
  /// running; a late completion is discarded by the client (exactly-once
  /// resolution).
  std::optional<sim::Duration> deadline;
  RetryPolicy retry;
};

class OpHandle;

/// Fires when an operation resolves (any outcome), after metrics/history
/// are recorded. InlineTask-style move-only callable.
using OpHook = sim::InlineFunction<void(const OpHandle&)>;

/// One operation's full client-side record.
struct OpRecord {
  /// Marker for `station`: the op does not occupy a session FIFO.
  static constexpr sim::ProcessId kNoStation = ~sim::ProcessId{0};

  OpId id = 0;
  OpType type = OpType::kRead;
  sim::ProcessId target = 0;
  /// Written value (writes, from issue) / read value (reads, once kOk).
  Value value = kBottom;
  /// Client-perceived invocation time — session queue wait included.
  sim::Time invoked_at = 0;
  sim::Time responded_at = 0;  ///< set when resolved
  OpOutcome outcome = OpOutcome::kOk;
  std::uint32_t attempts = 0;  ///< attempts dispatched so far
  bool resolved = false;
  bool attempt_open = false;  ///< current attempt still awaiting the node
  OpOptions options;
  consistency::OpId history_op = 0;  ///< current attempt's history record
  bool session = false;  ///< issued via session_read: dispatch through stations
  sim::ProcessId station = kNoStation;  ///< station FIFO this attempt occupies
  OpHook on_resolved;
};

/// Non-owning view of an OpRecord; valid for the issuing Client's lifetime.
/// [[nodiscard]]: a dropped handle is a leaked operation result (issue sites
/// that intentionally fire-and-forget cast to void and say why).
class [[nodiscard]] OpHandle {
 public:
  OpHandle() = default;

  [[nodiscard]] bool valid() const { return rec_ != nullptr; }
  [[nodiscard]] OpId id() const { return rec_->id; }
  [[nodiscard]] OpType type() const { return rec_->type; }
  /// Whether the operation has resolved; outcome()/responded_at() are only
  /// meaningful afterwards. Operations pending at the run horizon never
  /// resolve.
  [[nodiscard]] bool resolved() const { return rec_->resolved; }
  [[nodiscard]] OpOutcome outcome() const { return rec_->outcome; }
  [[nodiscard]] sim::Time invoked_at() const { return rec_->invoked_at; }
  [[nodiscard]] sim::Time responded_at() const { return rec_->responded_at; }
  /// Written value; for reads, the value returned (kOk resolutions only).
  [[nodiscard]] Value value() const { return rec_->value; }
  [[nodiscard]] std::uint32_t attempts() const { return rec_->attempts; }

 private:
  friend class Client;
  explicit OpHandle(const OpRecord* rec) : rec_(rec) {}
  const OpRecord* rec_ = nullptr;
};

/// Operation counters and latency samples, harvested by the experiment
/// harness into its MetricsReport after the run. Latency samples are the
/// client-perceived invoke-to-response times of kOk resolutions, in
/// resolution order. Dropped/timed-out counters count failed *attempts*.
struct OpStats {
  std::uint64_t reads_issued = 0;
  std::uint64_t reads_completed = 0;
  std::uint64_t reads_of_bottom = 0;
  std::uint64_t writes_issued = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t reads_dropped = 0;
  std::uint64_t writes_dropped = 0;
  std::uint64_t reads_timed_out = 0;
  std::uint64_t writes_timed_out = 0;
  std::uint64_t retries = 0;
  std::vector<double> read_latencies;
  std::vector<double> write_latencies;
};

/// Replaces the rng draw in Client::random_active — the trace replayer's
/// view of target selection (src/replay/replayer.h). Consulted only when at
/// least one process is active; must return one of `actives`.
class TargetChooser {
 public:
  virtual ~TargetChooser() = default;
  virtual sim::ProcessId choose_target(sim::Time now,
                                       const std::vector<sim::ProcessId>& actives) = 0;
};

/// Observes every target selection random_active makes — the trace
/// recorder's view (src/replay/recorder.h).
class TargetObserver {
 public:
  virtual ~TargetObserver() = default;
  virtual void on_target(sim::Time now, sim::ProcessId chosen) = 0;
};

class Client {
 public:
  /// `horizon` bounds retries (no attempt is re-issued at or after it);
  /// pass the run duration. History completions and metrics are recorded
  /// for every resolution, whenever it happens.
  Client(sim::Simulation& sim, churn::System& system, consistency::History& history,
         sim::Time horizon);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// The target's register node, or nullptr if it is not in the system.
  RegisterNode* node(sim::ProcessId id);

  /// Issues one read against `target`. If the target is not in the system
  /// the operation resolves immediately as kDroppedOnDeparture (without
  /// counting as issued — nothing was put on the wire).
  OpHandle read(sim::ProcessId target, OpOptions options = {}, OpHook done = {});

  /// Issues one write of `v` against `target`.
  OpHandle write(sim::ProcessId target, Value v, OpOptions options = {},
                 OpHook done = {});

  /// Closed-loop entry point: like read(), but operations against the same
  /// target serialize FIFO — the op waits until the target's previous
  /// session op resolves. Queue wait counts toward the op's latency. A
  /// retried session read re-enters the FIFO of its new target, so the
  /// one-client-op-per-process invariant holds across retries.
  OpHandle session_read(sim::ProcessId target, OpOptions options = {},
                        OpHook done = {});

  /// Closed-loop write: like write(), but serialized through the target's
  /// session FIFO exactly as session_read — the shard layer's write path,
  /// where every keyed write funnels to the shard's designated writer and
  /// the FIFO is what makes aggregate write throughput scale with shard
  /// count (one serialized writer per shard).
  OpHandle session_write(sim::ProcessId target, Value v, OpOptions options = {},
                         OpHook done = {});

  /// A uniformly random active process (one rng draw), or nullopt when no
  /// process is active — the one selection routine every traffic source
  /// (open-loop ticks, sessions, retry re-targeting) shares, so their RNG
  /// draw sequences stay identical by construction.
  std::optional<sim::ProcessId> random_active();

  /// The workload's write-value sequence (1, 2, 3, ...).
  Value next_value() { return next_value_++; }

  /// Installs a non-owning chooser/observer for random_active (nullptr to
  /// clear). Configuration-time only; must outlive the run. With a chooser
  /// installed random_active draws nothing from the rng.
  void set_target_chooser(TargetChooser* chooser) { chooser_ = chooser; }
  void set_target_observer(TargetObserver* observer) { target_observer_ = observer; }

  OpStats& stats() { return stats_; }
  [[nodiscard]] const std::deque<OpRecord>& records() const { return records_; }
  [[nodiscard]] OpHandle handle(OpId id) const { return OpHandle(&records_[id]); }

 private:
  struct Station {
    bool busy = false;
    std::deque<OpId> queue;
  };

  /// Delay before the next retry of `rec` (its attempts count has already
  /// been charged for the failed attempt).
  [[nodiscard]] sim::Duration retry_delay(const OpRecord& rec) const;
  OpRecord& new_record(OpType type, sim::ProcessId target, OpOptions options,
                       OpHook done);
  void enqueue_session(OpRecord& rec);
  void start_attempt(OpRecord& rec);
  void on_node_completion(OpId id, std::uint32_t attempt, OpOutcome outcome, Value v);
  void on_deadline(OpId id, std::uint32_t attempt);
  void finish_attempt(OpRecord& rec, OpOutcome outcome, Value v);
  void retry_attempt(OpId id, std::uint32_t attempt);
  void resolve(OpRecord& rec, OpOutcome outcome);
  void release_station(sim::ProcessId target);
  void pump_station(sim::ProcessId target);

  sim::Simulation& sim_;
  churn::System& system_;
  consistency::History& history_;
  sim::Time horizon_;

  std::deque<OpRecord> records_;  // deque: stable addresses for OpHandles
  std::map<sim::ProcessId, Station> stations_;
  Value next_value_ = 1;
  TargetChooser* chooser_ = nullptr;          // non-owning
  TargetObserver* target_observer_ = nullptr;  // non-owning
  OpStats stats_;
};

/// One closed-loop client: pick a uniformly random active process, issue a
/// session read, and once it resolves (any outcome) think for `think_time`
/// and repeat, until the horizon. When no process is active the session
/// backs off one think interval (minimum 1 tick) and probes again.
class ClientSession {
 public:
  struct Config {
    /// Ticks between an op's resolution and the next issue. A session
    /// always advances at least one tick per cycle (think_time 0 behaves
    /// as 1): instantaneous reads (the sync protocol) would otherwise
    /// re-issue at the same timestamp forever and the event queue would
    /// never drain.
    sim::Duration think_time = 0;
    sim::Time horizon = 0;
    OpOptions op_options;
  };

  ClientSession(Client& client, sim::Simulation& sim, Config config)
      : client_(client), sim_(sim), config_(config) {}

  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  /// Issues the session's first operation (call once, before the run).
  void start() { next_op(); }

  [[nodiscard]] std::uint64_t ops_issued() const { return ops_issued_; }

 private:
  void next_op();

  Client& client_;
  sim::Simulation& sim_;
  Config config_;
  std::uint64_t ops_issued_ = 0;
};

}  // namespace dynreg::client
