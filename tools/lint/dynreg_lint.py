#!/usr/bin/env python3
"""dynreg-lint: the repo's determinism contract as machine-checked rules.

Every invariant ROADMAP.md calls "standing" — per-seed bit-determinism, the
jobs=1-vs-8 byte-identity gate, sanitizer-clean tests — is only as strong as
the code patterns that uphold it. This linter bans the patterns that break
them (see tools/lint/rules/ for the rule set and docs/ANALYSIS.md for the
contract each rule encodes) and fails the build on any unannotated use.

Suppressing a finding requires an explicit, reasoned annotation on the
offending line or the line directly above it:

    // dynreg-lint: allow(<rule>): <reason>

An annotation without a reason is itself an error; an annotation that
suppresses nothing is reported as stale (warning by default, error with
--strict-annotations) so suppressions cannot outlive the code they excuse.

Usage:
    dynreg_lint.py [--root DIR] [PATH...]     # lint files/dirs (default: src bench tests)
    dynreg_lint.py --self-test                # run the golden-fixture suite
    dynreg_lint.py --list-rules               # print the rule table

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, List, Tuple

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from rules import RULES, Finding, Rule  # noqa: E402

CXX_EXTENSIONS = (".h", ".hpp", ".hh", ".c", ".cc", ".cpp", ".cxx")

ANNOTATION_RE = re.compile(
    r"//\s*dynreg-lint:\s*allow\(\s*([A-Za-z0-9_-]+)\s*\)\s*(?::\s*(\S.*?))?\s*$"
)


def strip_comments_and_strings(text: str) -> str:
    """Returns `text` with comment and string/char-literal *contents* blanked.

    Line structure is preserved exactly (every '\n' survives), so findings in
    the stripped text map 1:1 onto source lines. Rules therefore never fire
    on prose in comments ("std::function heap-allocates...") or on string
    literals ("wall-clock").
    """
    out = []
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR, RAW_STRING = range(6)
    state = NORMAL
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal: R"delim( ... )delim"
                m = re.match(r'R"([^()\\ \t\n]{0,16})\(', text[max(0, i - 1):i + 18])
                if i > 0 and text[i - 1] == "R" and m and m.start() == 0:
                    raw_delim = ")" + m.group(1) + '"'
                    state = RAW_STRING
                    out.append('"')
                    i += 1
                    continue
                state = STRING
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = CHAR
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                out.append("\n")
            elif c == "\\" and nxt == "\n":  # line-continued // comment
                out.append(" \n")
                i += 1
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
        elif state == STRING:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = NORMAL
                out.append('"')
            else:
                out.append("\n" if c == "\n" else " ")
            i += 1
        elif state == CHAR:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = NORMAL
                out.append("'")
            else:
                out.append(" ")
            i += 1
        elif state == RAW_STRING:
            if text.startswith(raw_delim, i):
                out.append(" " * (len(raw_delim) - 1) + '"')
                i += len(raw_delim)
                state = NORMAL
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
    return "".join(out)


class Annotations:
    """Per-file `// dynreg-lint: allow(rule): reason` suppressions.

    An annotation covers its own line and, when it is the only thing on its
    line, the next line as well. `used` tracks consumption so stale
    suppressions can be reported.
    """

    def __init__(self, raw_lines: List[str]):
        # (line, rule) -> used flag; plus annotations missing their reason.
        self.scopes: Dict[Tuple[int, str], bool] = {}
        self.missing_reason: List[Tuple[int, str]] = []
        for lineno, line in enumerate(raw_lines, start=1):
            m = ANNOTATION_RE.search(line)
            if not m:
                continue
            rule, reason = m.group(1), m.group(2)
            if not reason:
                self.missing_reason.append((lineno, rule))
                continue
            self.scopes[(lineno, rule)] = False
            # A standalone annotation line guards the line below it.
            if line[: m.start()].strip() == "":
                self.scopes[(lineno + 1, rule)] = False

    def suppresses(self, lineno: int, rule: str) -> bool:
        for key in ((lineno, rule), (lineno, "all")):
            if key in self.scopes:
                self.scopes[key] = True
                return True
        return False

    def stale(self) -> List[Tuple[int, str]]:
        # A standalone annotation registers two scopes (its line + the next);
        # it is stale only if *neither* was consumed.
        by_rule: Dict[Tuple[int, str], bool] = {}
        for (lineno, rule), used in sorted(self.scopes.items()):
            prev = (lineno - 1, rule)
            if prev in by_rule:
                by_rule[prev] = by_rule[prev] or used
            else:
                by_rule[(lineno, rule)] = used
        return [key for key, used in sorted(by_rule.items()) if not used]


def lint_file(root: str, relpath: str, strict_annotations: bool) -> List[Finding]:
    path = os.path.join(root, relpath)
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [Finding(relpath, 0, "io-error", str(e))]

    raw_lines = text.splitlines()
    stripped_lines = strip_comments_and_strings(text).splitlines()
    annotations = Annotations(raw_lines)

    findings: List[Finding] = []
    for lineno, rule in annotations.missing_reason:
        findings.append(
            Finding(relpath, lineno, "annotation-syntax",
                    f"allow({rule}) annotation is missing its reason — write "
                    f"`// dynreg-lint: allow({rule}): <why this is safe>`"))

    norm = relpath.replace(os.sep, "/")
    for rule in RULES:
        if not rule.applies_to(norm):
            continue
        for lineno, message in rule.scan(stripped_lines, norm):
            if annotations.suppresses(lineno, rule.name):
                continue
            findings.append(Finding(relpath, lineno, rule.name, message))

    for lineno, rule_name in annotations.stale():
        msg = (f"stale suppression: allow({rule_name}) matches no finding "
               f"on this or the next line — delete it")
        if strict_annotations:
            findings.append(Finding(relpath, lineno, "stale-annotation", msg))
        else:
            print(f"{relpath}:{lineno}: warning: {msg}", file=sys.stderr)
    return findings


def collect_files(root: str, paths: List[str]) -> List[str]:
    rels: List[str] = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            rels.append(os.path.relpath(full, root))
        elif os.path.isdir(full):
            for dirpath, dirnames, filenames in os.walk(full):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(CXX_EXTENSIONS):
                        rels.append(os.path.relpath(os.path.join(dirpath, name), root))
        else:
            print(f"dynreg-lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return sorted(set(rels))


def run_lint(root: str, paths: List[str], strict_annotations: bool) -> List[Finding]:
    findings: List[Finding] = []
    for rel in collect_files(root, paths):
        findings.extend(lint_file(root, rel, strict_annotations))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def self_test(script_dir: str) -> int:
    """Golden-fixture suite: lints tools/lint/testdata/ (a miniature repo
    tree) and compares the findings against testdata/expected.txt. A rule
    that stops firing — or fires where it must not — fails here, so a broken
    rule fails CI instead of silently passing everything."""
    testdata = os.path.join(script_dir, "testdata")
    expected_path = os.path.join(testdata, "expected.txt")
    with open(expected_path, "r", encoding="utf-8") as f:
        expected = sorted(
            line.strip() for line in f
            if line.strip() and not line.lstrip().startswith("#"))

    findings = run_lint(testdata, ["src", "bench", "tests"], strict_annotations=True)
    actual = sorted(f"{f.path.replace(os.sep, '/')}:{f.line}:{f.rule}" for f in findings)

    ok = True
    for miss in sorted(set(expected) - set(actual)):
        print(f"self-test: MISSING expected finding: {miss}")
        ok = False
    for extra in sorted(set(actual) - set(expected)):
        print(f"self-test: UNEXPECTED finding: {extra}")
        ok = False
    if not ok:
        return 1
    print(f"self-test: OK ({len(expected)} expected findings matched, "
          f"clean fixtures stayed clean)")
    return 0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(prog="dynreg-lint", add_help=True)
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the golden-fixture rule tests")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--strict-annotations", action="store_true",
                        help="treat stale allow() annotations as errors")
    parser.add_argument("paths", nargs="*", default=[],
                        help="files or directories to lint (default: src bench tests)")
    args = parser.parse_args(argv)

    script_dir = os.path.dirname(os.path.abspath(__file__))
    if args.list_rules:
        for rule in RULES:
            scope = ", ".join(rule.paths) if rule.paths else "all scanned paths"
            print(f"{rule.name:24} [{scope}]\n    {rule.description}")
        return 0
    if args.self_test:
        return self_test(script_dir)

    root = args.root or os.path.dirname(os.path.dirname(script_dir))
    paths = args.paths or ["src", "bench", "tests"]
    findings = run_lint(root, paths, args.strict_annotations)
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if findings:
        print(f"\ndynreg-lint: {len(findings)} finding(s). Fix the pattern or, if "
              f"it is provably safe, annotate it:\n"
              f"  // dynreg-lint: allow(<rule>): <reason>\n"
              f"See docs/ANALYSIS.md for what each rule protects.")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
