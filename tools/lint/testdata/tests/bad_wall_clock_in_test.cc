// Fixture: the determinism rules apply to tests/ too — a test that reads
// the host clock or ambient entropy is flaky by construction.
#include <ctime>

namespace fixture {

bool flaky_timeout(long start) {
  return time(nullptr) - start > 5;  // MUST-FLAG wall-clock
}

}  // namespace fixture
