// Fixture: direct Rng access inside src/fault/ bypasses the decision layer.
#include "sim/rng.h"
#include "sim/simulation.h"

namespace fixture {

struct BadInjector {
  sim::Rng scratch{42};  // MUST-FLAG fault-rng-bypass

  unsigned long pick_victim(sim::Simulation& sim) {
    return sim.rng().next();  // MUST-FLAG fault-rng-bypass
  }

  // dynreg-lint: allow(fault-rng-bypass): annotated uses stay allowed
  double annotated(sim::Rng& rng) { return rng.uniform01(); }
};

}  // namespace fixture
