// Fixture: a clean hot-path file. Mentions of banned patterns in comments
// and string literals must NOT fire: std::function, std::unordered_map,
// time(), rand(), std::random_device, system_clock.
#include <cstdint>
#include <random>

namespace fixture {

/* Block comment mentioning std::function<void()> and srand(1). */
struct Sim {
  std::uint64_t now = 0;

  // next_time() and next_event_time() are member calls, not libc time().
  std::uint64_t next_time() const { return now; }
};

std::uint64_t drive(Sim& sim) {
  const char* msg = "calls time() and rand() and std::chrono::system_clock";
  (void)msg;
  // Seeded mt19937 is allowed: the engine's sequence is standard-specified,
  // and the property tests use it as a portable scenario generator.
  std::mt19937 gen(12345);
  sim.now += gen() % 7;
  return sim.next_time();
}

}  // namespace fixture
