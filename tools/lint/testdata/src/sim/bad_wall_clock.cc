// Fixture: every line marked MUST-FLAG below must produce a finding.
#include <chrono>
#include <ctime>
#include <random>

namespace fixture {

long wall_now() {
  auto t = std::chrono::system_clock::now();  // MUST-FLAG wall-clock
  auto s = std::chrono::steady_clock::now();  // MUST-FLAG wall-clock
  (void)s;
  return std::chrono::duration_cast<std::chrono::seconds>(t.time_since_epoch()).count();
}

long libc_now() {
  return time(nullptr);  // MUST-FLAG wall-clock
}

unsigned ambient() {
  std::random_device rd;  // MUST-FLAG ambient-randomness
  srand(42);              // MUST-FLAG ambient-randomness
  return rd() + static_cast<unsigned>(rand());  // MUST-FLAG ambient-randomness
}

}  // namespace fixture
