// Fixture: std::function in a hot-path layer (src/sim/) must be flagged.
#include <functional>

namespace fixture {

struct Scheduler {
  std::function<void()> callback;  // MUST-FLAG std-function
};

void set(Scheduler& s, std::function<void()> cb) {  // MUST-FLAG std-function
  s.callback = cb;
}

}  // namespace fixture
