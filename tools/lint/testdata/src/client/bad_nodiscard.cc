// Fixture: result-carrying type definitions without [[nodiscard]] must be
// flagged; forward declarations and annotated definitions must not.
namespace fixture {

class GoodHandle;  // forward declaration: must NOT flag

struct [[nodiscard]] AnnotatedReport {  // must NOT flag
  int value = 0;
};

struct BareReport {  // MUST-FLAG nodiscard-outcome
  int value = 0;
};

class BareHandle {  // MUST-FLAG nodiscard-outcome
 public:
  int id() const { return id_; }

 private:
  int id_ = 0;
};

enum class BareOutcome {  // MUST-FLAG nodiscard-outcome
  kOk,
  kFailed,
};

enum class [[nodiscard]] AnnotatedOutcome {  // must NOT flag
  kOk,
};

// A handle-suffixed name with the '{' on a later line is still a definition.
struct WrappedReport  // MUST-FLAG nodiscard-outcome
    : BareReport {
  int extra = 0;
};

}  // namespace fixture
