// Fixture: properly annotated suppressions must produce no findings.
#include <cstddef>
#include <functional>
#include <unordered_map>

namespace fixture {

struct Sweep {
  // dynreg-lint: allow(std-function): configure runs once per sweep point, not per event
  std::function<void(double)> configure;

  std::function<void()> post;  // dynreg-lint: allow(std-function): report-time only, O(runs) not O(events)
};

int lookup(std::size_t key) {
  // dynreg-lint: allow(unordered-container): point lookups only; never iterated
  std::unordered_map<std::size_t, int> cache;
  return cache[key];
}

}  // namespace fixture
