// Fixture: annotation misuse. A reason-less allow() is an error; an allow()
// that suppresses nothing is stale (an error under --strict-annotations,
// which the self-test uses).
#include <functional>

namespace fixture {

struct Broken {
  // dynreg-lint: allow(std-function)
  std::function<void()> no_reason;  // MUST-FLAG std-function (suppression invalid: no reason)

  // dynreg-lint: allow(unordered-container): nothing here uses one
  int stale_suppression = 0;  // MUST-FLAG stale-annotation (on the line above)
};

}  // namespace fixture
