// Fixture: unannotated std::unordered_* in src/ must be flagged.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

int count(std::uint64_t key) {
  std::unordered_map<std::uint64_t, int> by_key;  // MUST-FLAG unordered-container
  std::unordered_set<std::uint64_t> seen;         // MUST-FLAG unordered-container
  seen.insert(key);
  return by_key[key];
}

}  // namespace fixture
