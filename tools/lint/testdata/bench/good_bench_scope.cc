// Fixture: bench/ is outside the scope of the src/-only rules
// (std-function, unordered-container, nodiscard-outcome) — none of these
// may fire here. The determinism rules still apply everywhere.
#include <cstdint>
#include <functional>
#include <unordered_map>

namespace fixture {

struct BenchReport {  // nodiscard-outcome is src/-scoped: must NOT flag
  double mean = 0.0;
};

std::function<double(int)> column;  // std-function is src/-scoped: must NOT flag

double tally(int key) {
  std::unordered_map<int, double> cells;  // unordered-container is src/-scoped: must NOT flag
  return cells[key];
}

}  // namespace fixture
