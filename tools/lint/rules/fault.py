"""Fault-engine randomness discipline.

Every fault decision — crash victim, recovery coin, partition salt,
Byzantine transform word — must flow through fault::DecisionSource
(src/fault/decision.h): that is the seam that records decisions into the
trace's fault stream (format v3) and feeds them back on replay. A direct
sim::Rng draw inside src/fault/ would work in a live run and then silently
diverge under record/replay, because the replayed run's Rng never produces
the subsequence the live run consumed.

The decision layer itself is the sanctioned consumer; its three touch
points carry annotated allowances:

    // dynreg-lint: allow(fault-rng-bypass): <why this is the decision layer>
"""

from __future__ import annotations

import re

from . import Rule

RULES = [
    Rule(
        name="fault-rng-bypass",
        description=(
            "Ban direct sim::Rng access in src/fault/; all fault decisions must "
            "draw through fault::DecisionSource so they record and replay."
        ),
        message=(
            "direct Rng access bypasses the fault decision layer and diverges under "
            "record/replay — draw through fault::DecisionSource (src/fault/decision.h)"
        ),
        pattern=re.compile(r"sim\s*::\s*Rng\b|\brng\s*\(\s*\)"),
        paths=("src/fault/",),
    ),
]
