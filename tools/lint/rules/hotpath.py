"""std::function discipline in the library.

std::function heap-allocates any capture beyond its (implementation-defined,
typically 16-byte) small-buffer budget. PR 4/5 measured that cost at one
allocation per scheduled event and per pending operation — the dominant
allocation-rate driver of a run — and replaced every hot-path callable with
sim::InlineFunction (48-byte in-place capture, move-only, one cache line).

The rule bans std::function across src/. In the hot-path layers (src/sim/,
src/net/, src/dynreg/) there is no acceptable use: convert to InlineFunction
(or a template parameter, as Simulation::schedule_* does). In the cold
layers (harness sweep configuration, node factories) an annotated use is
tolerated when the callable is created O(runs) rather than O(events):

    // dynreg-lint: allow(std-function): <cold-path justification>
"""

from __future__ import annotations

import re

from . import Rule

RULES = [
    Rule(
        name="std-function",
        description=(
            "Ban std::function in src/ (hot-path layers sim/, net/, dynreg/ must use "
            "sim::InlineFunction; cold layers may annotate a justified use)."
        ),
        message=(
            "std::function heap-allocates per capture; use sim::InlineFunction (see "
            "sim/inline_function.h) or a template parameter — cold-path uses need an "
            "annotated justification"
        ),
        pattern=re.compile(r"\bstd\s*::\s*function\s*<"),
        paths=("src/",),
    ),
]
