"""API-surface rules: handle/outcome/report types must be [[nodiscard]].

An OpHandle dropped on the floor is a leaked operation result; an ignored
OpOutcome or checker Report is a swallowed failure. Any type whose name ends
in Handle, Outcome, or Report is a result carrier by this repo's naming
convention, so its *type* must be declared [[nodiscard]] — then every
expression that produces one and discards it is a compile-time warning (an
error under DYNREG_WERROR) at every call site, present and future, with no
per-function annotation burden.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Tuple

from . import Rule

_DECL_RE = re.compile(
    r"\b(class|struct|enum\s+class|enum\s+struct)\s+"
    r"((?:[A-Za-z_]\w*::)*[A-Za-z_]\w*(?:Handle|Outcome|Report))\b"
)

# How far a definition's introducer may be from its '{' (base clauses,
# wrapped enum-base lines).
_LOOKAHEAD_LINES = 4


def _is_definition(lines: List[str], lineno: int, col: int) -> bool:
    """True when the declaration starting at (lineno, col) reaches a '{'
    before a ';' — i.e. it is a definition, not a forward declaration."""
    tail = lines[lineno - 1][col:]
    for extra in range(_LOOKAHEAD_LINES):
        idx = lineno - 1 + extra
        text = tail if extra == 0 else (lines[idx] if idx < len(lines) else "")
        for ch in text:
            if ch == "{":
                return True
            if ch == ";":
                return False
    return False


def _scan_nodiscard(lines: List[str], path: str) -> Iterable[Tuple[int, str]]:
    for lineno, line in enumerate(lines, start=1):
        for m in _DECL_RE.finditer(line):
            if "nodiscard" in line:
                continue  # `struct [[nodiscard]] X {` (any placement on the line)
            if not _is_definition(lines, lineno, m.end()):
                continue  # forward declaration
            kind, name = m.group(1), m.group(2)
            yield lineno, (
                f"{kind} {name} is a result-carrying type (…Handle/…Outcome/…Report "
                f"suffix) and must be declared [[nodiscard]] so discarded results "
                f"warn at every call site"
            )


RULES = [
    Rule(
        name="nodiscard-outcome",
        description=(
            "Types named *Handle/*Outcome/*Report in src/ must be declared "
            "[[nodiscard]]."
        ),
        scanner=_scan_nodiscard,
        paths=("src/",),
    ),
]
