"""Wall-clock and ambient-randomness bans.

The determinism contract (docs/ARCHITECTURE.md, docs/ANALYSIS.md): a
(config, seed) pair fully determines a run, bit for bit. Any read of the
host's clock or of an OS entropy source injects state the seed does not
control, so a run stops being reproducible the moment one sneaks into a
simulation path. These rules apply to *all* scanned code — src, bench,
tests — because a bench or test that depends on wall time is flaky by
construction. The sanctioned alternatives are sim::Simulation::now() for
time and the run's one sim::Rng for randomness.

std::mt19937 with a fixed literal seed is deliberately NOT banned: the
engine's output sequence is specified by the standard, and the property
tests use it as a portable scenario generator.
"""

from __future__ import annotations

import re

from . import Rule

# Guard against member/namespace hits (e.g. `sim.next_event_time(`,
# `queue_.next_time(`, `->time(`): the character before the identifier must
# not extend it.
_NOT_MEMBER = r"(?<![A-Za-z0-9_.:>])"

RULES = [
    Rule(
        name="wall-clock",
        description="Ban wall-clock reads; simulated time comes from Simulation::now().",
        message=(
            "wall-clock read breaks per-seed determinism — use sim::Simulation::now() "
            "(virtual time) instead"
        ),
        pattern=re.compile(
            r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
            r"|" + _NOT_MEMBER + r"(time|clock)\s*\("
            r"|" + _NOT_MEMBER + r"(gettimeofday|clock_gettime|localtime|gmtime)\s*\("
        ),
    ),
    Rule(
        name="ambient-randomness",
        description="Ban OS/global entropy; all randomness flows from the run's seeded Rng.",
        message=(
            "ambient randomness is outside the seed's control — draw from the run's "
            "sim::Rng (Simulation::rng()) instead"
        ),
        pattern=re.compile(
            r"std::random_device"
            r"|" + _NOT_MEMBER + r"random_device\b"
            r"|" + _NOT_MEMBER + r"(rand|srand|random|srandom|drand48|rand_r)\s*\("
        ),
    ),
]
