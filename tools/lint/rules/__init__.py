"""Rule set for dynreg-lint.

Each rule module contributes Rule objects to RULES. A Rule scans the
comment/string-stripped lines of one file and yields (line, message)
findings; path scoping decides which parts of the tree it guards.

The rule names are part of the annotation contract (they appear in
`// dynreg-lint: allow(<rule>): <reason>` suppressions), so renaming a rule
is a breaking change: grep for the old name first.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    message: str


@dataclass(frozen=True)
class Rule:
    """One lintable pattern.

    `paths` is a tuple of path prefixes (relative, '/'-separated) the rule
    applies to; empty means every scanned file. `pattern` findings use
    `message`; a rule needing more context than one regex supplies `scanner`
    instead (same (lines, path) -> iterable of (line, message) contract).
    """

    name: str
    description: str
    message: str = ""
    pattern: Optional[re.Pattern] = None
    paths: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()
    scanner: Optional[Callable[[List[str], str], Iterable[Tuple[int, str]]]] = None

    def applies_to(self, path: str) -> bool:
        if any(path.startswith(p) for p in self.exclude):
            return False
        return not self.paths or any(path.startswith(p) for p in self.paths)

    def scan(self, lines: List[str], path: str) -> Iterator[Tuple[int, str]]:
        if self.scanner is not None:
            yield from self.scanner(lines, path)
            return
        assert self.pattern is not None, f"rule {self.name} has no pattern or scanner"
        for lineno, line in enumerate(lines, start=1):
            if self.pattern.search(line):
                yield lineno, self.message


from . import api, containers, determinism, fault, hotpath  # noqa: E402

RULES: List[Rule] = [
    *determinism.RULES,
    *containers.RULES,
    *hotpath.RULES,
    *api.RULES,
    *fault.RULES,
]

_names = [r.name for r in RULES]
assert len(_names) == len(set(_names)), f"duplicate rule names: {_names}"
