"""Unordered-container discipline in the library.

std::unordered_map / std::unordered_set iterate in a hash- and
load-factor-dependent order that varies across standard libraries and across
inserts, so any loop over one that feeds output, recorded history, or RNG
draws silently breaks the byte-identity gate. Proving that a given use never
iterates (pure point lookups) is a per-site argument, so the rule flags
*every* use in src/ and puts the burden on an explicit annotation:

    // dynreg-lint: allow(unordered-container): <why iteration order cannot
    // affect results, or why this never iterates>

The deterministic alternatives: a sorted std::vector + binary search (what
consistency/regularity_checker.cpp uses), std::map, or a dense
index-keyed std::vector (what net/network.cpp uses for dispatch).

bench/ and tests/ are exempt: they only consume library output, and the
emitter goldens pin their ordering end to end.
"""

from __future__ import annotations

import re

from . import Rule

RULES = [
    Rule(
        name="unordered-container",
        description=(
            "Flag every std::unordered_{map,set} use in src/; iteration order is "
            "non-deterministic, so each use needs a reasoned annotation."
        ),
        message=(
            "std::unordered_* containers iterate in non-deterministic order; use a "
            "sorted vector / std::map / dense index, or annotate why this use can "
            "never leak iteration order into results"
        ),
        pattern=re.compile(r"\bstd\s*::\s*unordered_(map|set|multimap|multiset)\b"),
        paths=("src/",),
    ),
]
