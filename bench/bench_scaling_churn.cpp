// E16 — scaling law: join latency and maximum sustainable churn as the
// system grows.
//
// The synchronous protocol's sufficient churn bound c < 1/(3*delta) does
// not depend on n — but the *absolute* churn the system absorbs (c*n
// processes joining and leaving per tick) grows linearly, and every join
// costs a broadcast inquiry plus a delta-long collection window. This
// experiment measures, per n: the observed join latency (flat vs the
// paper's prediction ~2*delta), join completion under churn, and the
// empirical maximum sustainable churn fraction, confirming the bound's
// n-independence in shape while the per-tick event load scales.
//
// The default n grid stops at 1e3 (churn cells replay O(c*n*duration)
// full join protocols, each an O(n) broadcast); --max-n extends the grid
// for scaling studies on beefier machines.
#include <algorithm>
#include <string>

#include "harness/sweep.h"
#include "registry.h"

namespace dynreg::bench {
namespace {

using harness::ExperimentConfig;
using harness::MetricsReport;
using stats::Cell;

constexpr std::size_t kDefaultSeeds = 2;

std::vector<double> n_grid(const RunOptions& opts) {
  std::vector<double> grid{30, 100, 300, 1000};
  if (opts.max_n != 0) {
    const auto cap = static_cast<double>(opts.max_n);
    grid.erase(std::remove_if(grid.begin() + 1, grid.end(),
                              [cap](double n) { return n > cap; }),
               grid.end());
    if (grid.back() < cap) grid.push_back(cap);
  }
  return grid;
}

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kSync;
  cfg.seed = 23;
  cfg.delta = 3;
  // Fixed total-join budget: the horizon shrinks as n grows so a cell costs
  // O(joins * n) messages regardless of n, keeping the big points affordable.
  cfg.duration = 600;
  cfg.churn_kind = harness::ChurnKind::kConstant;
  cfg.workload.read_interval = 20;
  cfg.workload.write_interval = 60;
  return cfg;
}

sim::Time scaled_duration(std::size_t n) {
  return std::max<sim::Time>(150, 600 * 30 / static_cast<sim::Time>(n));
}

ExperimentResult run(const RunOptions& opts) {
  const std::size_t seeds = opts.seeds > 0 ? opts.seeds : 1;  // resolved by run_resolved()
  const std::vector<double> grid = n_grid(opts);
  // Churn as a fraction of the analytic bound 1/(3*delta).
  const std::vector<double> fractions{0.3, 0.6, 0.9, 1.2};

  ExperimentResult result;
  stats::DataTable summary({"n", "join lat (c=0.3x)", "join completion (0.9x)",
                            "max clean fraction"});

  for (const double n_val : grid) {
    const auto n = static_cast<std::size_t>(n_val);
    ExperimentConfig cfg = base_config();
    cfg.n = n;
    cfg.duration = scaled_duration(n);
    apply_workload(opts, cfg);
    const double threshold = cfg.sync_churn_threshold();

    const auto points = harness::parallel_sweep(
        cfg, fractions,
        [threshold](ExperimentConfig& c, double f) { c.churn_rate = f * threshold; },
        seeds, opts.jobs);

    stats::DataTable table({"c/threshold", "joins/run", "join completion",
                            "join lat mean", "violation rate"});
    double lat_low = 0.0, completion_high = 0.0, max_clean = 0.0;
    for (const auto& p : points) {
      double joins = 0;
      for (const MetricsReport& r : p.runs) {
        joins += static_cast<double>(r.joins_started);
      }
      joins /= static_cast<double>(p.runs.size());
      const double viol = p.mean_violation_rate();
      table.add_row({Cell::num(p.x, 2), Cell::num(joins, 1),
                     Cell::num(p.mean_join_completion(), 2),
                     Cell::num(p.mean_join_latency(), 1), Cell::num(viol, 4)});
      if (p.x == fractions.front()) lat_low = p.mean_join_latency();
      if (p.x == 0.9) completion_high = p.mean_join_completion();
      if (viol == 0.0) max_clean = std::max(max_clean, p.x);
    }
    result.sections.push_back(
        {"n" + std::to_string(n),
         "n = " + std::to_string(n) + " (threshold c = " +
             stats::Table::fmt(threshold, 4) +
             ", horizon = " + std::to_string(scaled_duration(n)) + ")",
         std::move(table), ""});
    summary.add_row({Cell::num(n_val, 0), Cell::num(lat_low, 1),
                     Cell::num(completion_high, 2), Cell::num(max_clean, 2)});
  }

  result.sections.push_back(
      {"summary", "scaling summary", std::move(summary),
       "Expected shape: join latency stays ~2*delta + wait, independent of\n"
       "n (the collection window, not the system size, dominates), and the\n"
       "sustainable churn fraction stays near the n-independent analytic\n"
       "bound — the absolute event load c*n*duration is what grows."});
  return result;
}

Experiment make_experiment() {
  Experiment e;
  e.name = "scaling_churn";
  e.id = "E16";
  e.title = "join latency and sustainable churn vs n";
  e.paper_ref = "Theorem 1 bound's n-independence; Section 7 scaling question";
  e.grid = "n {30..1e3; --max-n extends} x c/threshold {0.3, 0.6, 0.9, 1.2}";
  e.default_seeds = kDefaultSeeds;
  e.run = run;
  e.scenario = [] {
    ExperimentConfig cfg = base_config();
    cfg.n = 100;
    cfg.duration = scaled_duration(100);
    cfg.churn_rate = 0.3 * cfg.sync_churn_threshold();
    return cfg;
  };
  return e;
}

const Registrar registrar{make_experiment()};

}  // namespace
}  // namespace dynreg::bench
