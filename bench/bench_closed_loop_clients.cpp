// E13 — closed-loop clients under churn: the client/session layer's
// capacity curve (not a claim from the paper — a systems experiment the
// client API redesign opens up).
//
// Sweeps the number of closed-loop ClientSessions against the eventually
// synchronous protocol under constant churn. Each session issues one read
// at a time against a uniformly random active process, waits for it to
// resolve, thinks, and repeats; session operations against the same process
// serialize FIFO (a process serves one client operation at a time). With
// more clients, sessions collide on targets more often and queue behind
// each other, so client-perceived read latency (queue wait included) grows
// monotonically with client count while per-session throughput falls — the
// classic closed-loop saturation shape. Churn adds typed failure outcomes:
// reads against a process that departs mid-operation resolve as
// kDroppedOnDeparture and show up in the drops column.
#include "harness/sweep.h"
#include "registry.h"

namespace dynreg::bench {
namespace {

using harness::ExperimentConfig;
using stats::Cell;

constexpr std::size_t kDefaultSeeds = 3;

ExperimentResult run(const RunOptions& opts) {
  const std::size_t seeds = opts.seeds > 0 ? opts.seeds : 1;  // resolved by run_resolved()

  ExperimentConfig base;
  base.protocol = harness::Protocol::kEventuallySync;
  base.timing = harness::Timing::kSynchronous;
  base.n = 15;
  base.delta = 5;
  base.duration = 4000;
  base.leave_policy = churn::LeavePolicy::kUniform;
  base.workload.kind = workload::Kind::kClosedLoop;
  base.workload.think_time = 4;
  base.workload.write_interval = 40;
  base.churn_rate = 0.5 * base.es_churn_threshold();
  apply_workload(opts, base);  // --think/--clients etc.; the sweep sets clients

  const std::vector<double> client_counts{1, 2, 4, 8, 16, 32};

  const auto points = harness::parallel_sweep(
      base, client_counts,
      [](ExperimentConfig& cfg, double k) {
        cfg.workload.clients = static_cast<std::size_t>(k);
      },
      seeds, opts.jobs);

  stats::DataTable table({"clients", "read p50", "read p99", "mean read latency",
                          "reads completed", "read completion", "ops dropped",
                          "write p50", "write p99"});
  for (const auto& p : points) {
    const auto agg = p.aggregate();
    const double completed = harness::mean_of(p.runs, [](const harness::MetricsReport& r) {
      return static_cast<double>(r.reads_completed);
    });
    table.add_row({Cell::num(p.x, 0), Cell::num(agg.read_latency_p50.mean, 1),
                   Cell::num(agg.read_latency_p99.mean, 1),
                   Cell::num(agg.read_latency.mean, 1), Cell::num(completed, 0),
                   Cell::num(agg.read_completion.mean, 3),
                   Cell::num(agg.ops_dropped.mean, 1),
                   Cell::num(agg.write_latency_p50.mean, 1),
                   Cell::num(agg.write_latency_p99.mean, 1)});
  }

  ExperimentResult result;
  result.sections.push_back(
      {"closed_loop_clients", "", std::move(table),
       "Expected shape: client-perceived read p50/p99 grow monotonically with\n"
       "the client count (sessions serialize per target process, so more\n"
       "clients means more queueing), while total completed reads grow\n"
       "sub-linearly — the closed-loop saturation curve. Churn keeps a\n"
       "steady trickle of dropped operations at every client count.\n"});
  return result;
}

Experiment make_experiment() {
  Experiment e;
  e.name = "closed_loop_clients";
  e.id = "E13";
  e.title = "closed-loop client scaling under churn";
  e.paper_ref = "client/session API (systems extension; not a paper claim)";
  e.grid = "clients in {1, 2, 4, 8, 16, 32}; ES protocol, n=15, delta=5, think=4";
  e.default_seeds = kDefaultSeeds;
  e.run = run;
  return e;
}

const Registrar registrar{make_experiment()};

}  // namespace
}  // namespace dynreg::bench
