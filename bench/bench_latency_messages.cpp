// E7 — the "fast reads" design point: operation latency and message cost
// across protocols and system sizes.
//
// The synchronous protocol's reads are local (0 latency, 0 messages) while
// its writes cost one broadcast; the ES protocol pays a quorum round trip
// per read and write; ABD pays two phases per read. Message totals scale
// with n for broadcast/quorum traffic — the table shows the per-operation
// traffic as n grows.
#include <algorithm>

#include "harness/sweep.h"
#include "harness/thread_pool.h"
#include "registry.h"

namespace dynreg::bench {
namespace {

using harness::ExperimentConfig;
using harness::MetricsReport;
using stats::Cell;

constexpr std::size_t kDefaultSeeds = 1;

struct Row {
  double read_lat = 0, write_lat = 0, join_lat = 0;
  double msgs_per_read = 0, msgs_per_write = 0;
};

ExperimentConfig make_config(harness::Protocol protocol, std::size_t n) {
  ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.seed = 4;  // replica seed 0: 4 + 1009... first replica differs from the
                 // original fixed seed 5 only via replica_seed's offset
  cfg.n = n;
  cfg.delta = 5;
  cfg.duration = 3000;
  cfg.churn_rate = 0.002;  // light churn so joins exist for the join column
  if (protocol == harness::Protocol::kAbd) {
    cfg.churn_kind = harness::ChurnKind::kNone;  // keep the member set intact
  }
  if (protocol == harness::Protocol::kEventuallySync) {
    cfg.timing = harness::Timing::kEventuallySynchronous;
    cfg.gst = 0;
  }
  cfg.workload.read_interval = 10;
  cfg.workload.write_interval = 50;
  return cfg;
}

/// Attributes message copies to operations. Reads: read/query traffic plus
/// their replies; writes: write/update dissemination plus acks (for the
/// sync protocol a write is a single broadcast and reads are free).
Row attribute(harness::Protocol protocol, const MetricsReport& r) {
  auto copies = [&r](const char* type) -> double {
    const auto it = r.msgs_by_type.find(type);
    return it == r.msgs_by_type.end() ? 0.0 : static_cast<double>(it->second);
  };
  Row row;
  row.read_lat = r.read_latency_mean;
  row.write_lat = r.write_latency_mean;
  row.join_lat = r.join_latency_mean;
  const double reads = std::max<double>(1.0, static_cast<double>(r.reads_issued));
  const double writes = std::max<double>(1.0, static_cast<double>(r.writes_issued));
  switch (protocol) {
    case harness::Protocol::kSync:
    case harness::Protocol::kSyncNoWait:
      row.msgs_per_read = 0.0;
      row.msgs_per_write = copies("sync.write") / writes;
      break;
    case harness::Protocol::kEventuallySync:
      row.msgs_per_read = (copies("es.read") + copies("es.reply")) / reads;
      row.msgs_per_write = (copies("es.write") + copies("es.ack")) / writes;
      break;
    case harness::Protocol::kAbd:
      // Reads pay both phases: query/reply plus the write-back round (its
      // acks are counted with the write-back copies, 1:1 per delivery).
      row.msgs_per_read = (copies("abd.read_query") + copies("abd.read_reply") +
                           2.0 * copies("abd.writeback")) /
                          reads;
      row.msgs_per_write = 2.0 * copies("abd.update") / writes;
      break;
  }
  return row;
}

const char* protocol_name(harness::Protocol p) {
  switch (p) {
    case harness::Protocol::kSync: return "sync";
    case harness::Protocol::kSyncNoWait: return "sync-nowait";
    case harness::Protocol::kEventuallySync: return "eventually-sync";
    case harness::Protocol::kAbd: return "abd";
  }
  return "?";
}

ExperimentResult run(const RunOptions& opts) {
  const std::size_t seeds = opts.seeds > 0 ? opts.seeds : 1;  // resolved by run_resolved()

  const std::vector<harness::Protocol> protocols{
      harness::Protocol::kSync, harness::Protocol::kEventuallySync,
      harness::Protocol::kAbd};
  const std::vector<std::size_t> sizes{10, 20, 40, 80};

  // Flatten the (protocol, n, seed) grid; every replica has its own slot.
  const std::size_t cells = protocols.size() * sizes.size();
  std::vector<MetricsReport> reports(cells * seeds);
  harness::parallel_for(opts.jobs, reports.size(), [&](std::size_t task) {
    const std::size_t cell = task / seeds;
    const std::size_t s = task % seeds;
    ExperimentConfig cfg =
        make_config(protocols[cell / sizes.size()], sizes[cell % sizes.size()]);
    apply_workload(opts, cfg);
    cfg.seed = harness::replica_seed(cfg.seed, s);
    reports[task] = harness::run_experiment(cfg);
  });

  stats::DataTable table({"protocol", "n", "read latency", "write latency",
                          "join latency", "msgs/read", "msgs/write"});
  for (std::size_t cell = 0; cell < cells; ++cell) {
    const harness::Protocol protocol = protocols[cell / sizes.size()];
    Row mean;
    for (std::size_t s = 0; s < seeds; ++s) {
      const Row row = attribute(protocol, reports[cell * seeds + s]);
      mean.read_lat += row.read_lat;
      mean.write_lat += row.write_lat;
      mean.join_lat += row.join_lat;
      mean.msgs_per_read += row.msgs_per_read;
      mean.msgs_per_write += row.msgs_per_write;
    }
    const double n = static_cast<double>(seeds);
    table.add_row({Cell::str(protocol_name(protocol)),
                   Cell::num(static_cast<double>(sizes[cell % sizes.size()]), 0),
                   Cell::num(mean.read_lat / n, 2), Cell::num(mean.write_lat / n, 2),
                   Cell::num(mean.join_lat / n, 2), Cell::num(mean.msgs_per_read / n, 1),
                   Cell::num(mean.msgs_per_write / n, 1)});
  }

  ExperimentResult result;
  result.sections.push_back(
      {"latency_messages", "", std::move(table),
       "Expected shape (paper): sync reads cost 0 ticks and 0 messages at every\n"
       "n (the protocol is 'targeted for applications where the number of reads\n"
       "outperforms the number of writes'); quorum-based reads (ES, ABD) pay a\n"
       "round trip and Theta(n) messages; writes are Theta(n) everywhere; sync\n"
       "writes take exactly delta while quorum writes finish as soon as a\n"
       "majority acknowledges (usually < delta on average).\n"});
  return result;
}

Experiment make_experiment() {
  Experiment e;
  e.name = "latency_messages";
  e.id = "E7";
  e.title = "latency and message cost per operation";
  e.paper_ref = "Section 3.3 'fast reads' design goal; footnote 4";
  e.grid = "protocols {sync, es, abd} x n in {10,20,40,80}";
  e.default_seeds = kDefaultSeeds;
  e.run = run;
  return e;
}

const Registrar registrar{make_experiment()};

}  // namespace
}  // namespace dynreg::bench
