// E7 — the "fast reads" design point: operation latency and message cost
// across protocols and system sizes.
//
// The synchronous protocol's reads are local (0 latency, 0 messages) while
// its writes cost one broadcast; the ES protocol pays a quorum round trip
// per read and write; ABD pays two phases per read. Message totals scale
// with n for broadcast/quorum traffic — the table shows the per-operation
// traffic as n grows.
#include <iostream>

#include "harness/experiment.h"
#include "stats/table.h"

using namespace dynreg;

namespace {

struct Row {
  double read_lat = 0, write_lat = 0, join_lat = 0;
  double msgs_per_read = 0, msgs_per_write = 0;
};

Row measure(harness::Protocol protocol, std::size_t n, std::uint64_t seed) {
  harness::ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.n = n;
  cfg.delta = 5;
  cfg.duration = 3000;
  cfg.seed = seed;
  cfg.churn_rate = 0.002;  // light churn so joins exist for the join column
  if (protocol == harness::Protocol::kAbd) {
    cfg.churn_kind = harness::ChurnKind::kNone;  // keep the member set intact
  }
  if (protocol == harness::Protocol::kEventuallySync) {
    cfg.timing = harness::Timing::kEventuallySynchronous;
    cfg.gst = 0;
  }
  cfg.workload.read_interval = 10;
  cfg.workload.write_interval = 50;
  const auto r = harness::run_experiment(cfg);

  // Attribute message copies to operations. Reads: read/query traffic plus
  // their replies; writes: write/update dissemination plus acks (for the
  // sync protocol a write is a single broadcast and reads are free).
  auto copies = [&r](const char* type) -> double {
    const auto it = r.msgs_by_type.find(type);
    return it == r.msgs_by_type.end() ? 0.0 : static_cast<double>(it->second);
  };
  Row row;
  row.read_lat = r.read_latency_mean;
  row.write_lat = r.write_latency_mean;
  row.join_lat = r.join_latency_mean;
  const double reads = std::max<double>(1.0, static_cast<double>(r.reads_issued));
  const double writes = std::max<double>(1.0, static_cast<double>(r.writes_issued));
  switch (protocol) {
    case harness::Protocol::kSync:
    case harness::Protocol::kSyncNoWait:
      row.msgs_per_read = 0.0;
      row.msgs_per_write = copies("sync.write") / writes;
      break;
    case harness::Protocol::kEventuallySync:
      row.msgs_per_read = (copies("es.read") + copies("es.reply")) / reads;
      row.msgs_per_write = (copies("es.write") + copies("es.ack")) / writes;
      break;
    case harness::Protocol::kAbd:
      // Reads pay both phases: query/reply plus the write-back round (its
      // acks are counted with the write-back copies, 1:1 per delivery).
      row.msgs_per_read = (copies("abd.read_query") + copies("abd.read_reply") +
                           2.0 * copies("abd.writeback")) /
                          reads;
      row.msgs_per_write = 2.0 * copies("abd.update") / writes;
      break;
  }
  return row;
}

const char* name(harness::Protocol p) {
  switch (p) {
    case harness::Protocol::kSync: return "sync";
    case harness::Protocol::kSyncNoWait: return "sync-nowait";
    case harness::Protocol::kEventuallySync: return "eventually-sync";
    case harness::Protocol::kAbd: return "abd";
  }
  return "?";
}

}  // namespace

int main() {
  std::cout << "=== E7: latency and message cost per operation ===\n";
  std::cout << "reproduces: Section 3.3 'fast reads' design goal; footnote 4\n\n";

  stats::Table table({"protocol", "n", "read latency", "write latency", "join latency",
                      "msgs/read", "msgs/write"});
  for (const harness::Protocol protocol :
       {harness::Protocol::kSync, harness::Protocol::kEventuallySync,
        harness::Protocol::kAbd}) {
    for (const std::size_t n : {10u, 20u, 40u, 80u}) {
      const Row row = measure(protocol, n, 5);
      table.add_row({name(protocol), std::to_string(n), stats::Table::fmt(row.read_lat, 2),
                     stats::Table::fmt(row.write_lat, 2),
                     stats::Table::fmt(row.join_lat, 2),
                     stats::Table::fmt(row.msgs_per_read, 1),
                     stats::Table::fmt(row.msgs_per_write, 1)});
    }
  }
  std::cout << table.to_string() << "\n";
  std::cout << "Expected shape (paper): sync reads cost 0 ticks and 0 messages at every\n"
               "n (the protocol is 'targeted for applications where the number of reads\n"
               "outperforms the number of writes'); quorum-based reads (ES, ABD) pay a\n"
               "round trip and Theta(n) messages; writes are Theta(n) everywhere; sync\n"
               "writes take exactly delta while quorum writes finish as soon as a\n"
               "majority acknowledges (usually < delta on average).\n";
  return 0;
}
