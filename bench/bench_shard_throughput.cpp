// E19 — sharded keyspace: aggregate saturation vs shard count. Not a claim
// from the paper — a systems experiment the shard layer (src/shard/) opens
// up: the paper's register has ONE designated writer whose session FIFO
// serializes every write, so a single register saturates no matter how many
// processes serve it. Partitioning the keyspace over S independent register
// groups gives S writers (and S disjoint read populations), and aggregate
// closed-loop throughput grows monotonically with S at fixed total
// population n.
//
// The sweep holds n_total and the keyed closed-loop session count fixed and
// varies the shard count; --max-n below the default population caps it (the
// replay round-trip suite records a cheap cell), and --max-n >= 1e5 adds
// the headline scale cell: 16 shards, n_total = max_n, max_n closed-loop
// sessions, run single-seed.
#include <algorithm>

#include "harness/sweep.h"
#include "registry.h"

namespace dynreg::bench {
namespace {

using harness::ExperimentConfig;
using harness::MetricsReport;
using stats::Cell;

constexpr std::size_t kDefaultSeeds = 3;
/// Default total population: divisible by every swept shard count.
constexpr std::size_t kDefaultN = 480;

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kSync;
  cfg.timing = harness::Timing::kSynchronous;
  cfg.delta = 5;
  cfg.duration = 300;
  cfg.churn_kind = harness::ChurnKind::kNone;
  cfg.workload.key_count = 256;
  cfg.workload.zipf_s = 0.99;
  cfg.workload.read_frac = 0.8;
  cfg.workload.think_time = 1;
  return cfg;
}

void add_point_row(stats::DataTable& table, double x,
                   const std::vector<MetricsReport>& runs) {
  const auto agg = harness::aggregate_metrics(runs);
  const double ops = harness::mean_of(
      runs, [](const MetricsReport& r) { return r.ops_per_tick; });
  const double reads = harness::mean_of(runs, [](const MetricsReport& r) {
    return static_cast<double>(r.reads_completed);
  });
  const double writes = harness::mean_of(runs, [](const MetricsReport& r) {
    return static_cast<double>(r.writes_completed);
  });
  const double skew = harness::mean_of(
      runs, [](const MetricsReport& r) { return r.shard_skew; });
  table.add_row({Cell::num(x, 0), Cell::num(ops, 2), Cell::num(reads, 0),
                 Cell::num(writes, 0), Cell::num(agg.read_latency_p50.mean, 1),
                 Cell::num(agg.read_latency_p99.mean, 1),
                 Cell::num(agg.write_latency_p99.mean, 1), Cell::num(skew, 2)});
}

ExperimentResult run(const RunOptions& opts) {
  const std::size_t seeds = opts.seeds > 0 ? opts.seeds : 1;  // resolved by run_resolved()

  ExperimentConfig base = base_config();
  // --max-n below the default caps the population (cheap record/replay
  // cells); at or above it the default sweep stays put and the scale
  // section below picks the larger value up.
  std::size_t n_total = kDefaultN;
  if (opts.max_n > 0 && opts.max_n < kDefaultN) n_total = opts.max_n;
  base.n = n_total;
  base.workload.clients = std::max<std::size_t>(1, n_total / 2);
  apply_workload(opts, base);  // --shards/--zipf/--read-frac/--think etc.

  const std::vector<double> shard_counts{1, 2, 4, 8, 16};

  const auto points = harness::parallel_sweep(
      base, shard_counts,
      [](ExperimentConfig& cfg, double s) {
        cfg.shard_count = static_cast<std::size_t>(s);
      },
      seeds, opts.jobs);

  const std::vector<std::string> columns{
      "shards",   "ops/tick", "reads completed", "writes completed",
      "read p50", "read p99", "write p99",       "shard skew"};

  stats::DataTable table(columns);
  for (const auto& p : points) add_point_row(table, p.x, p.runs);

  ExperimentResult result;
  result.sections.push_back(
      {"shard_throughput", "", std::move(table),
       "Expected shape: aggregate ops/tick grows monotonically with the\n"
       "shard count at fixed total population — each shard brings its own\n"
       "designated writer (writes serialize per writer through the session\n"
       "FIFO) and its own disjoint read population, so S shards saturate at\n"
       "~S times the single-register ceiling. Write p99 falls as the one\n"
       "global write queue splits into S shorter ones.\n"});

  // Headline scale cell: 1e5 processes, 1e5 closed-loop sessions, 16
  // shards, single seed (the cell is the point, not the variance). The
  // chronicle runs aggregate-only so membership accounting stays O(horizon)
  // per shard instead of O(joins).
  if (opts.max_n >= 100000) {
    ExperimentConfig scale = base_config();
    scale.n = opts.max_n;
    scale.shard_count = 16;
    scale.duration = 80;
    scale.chronicle_aggregate = true;
    scale.workload.clients = opts.max_n;
    scale.workload.think_time = 8;
    scale.workload.key_count = 4096;
    apply_workload(opts, scale);

    const auto runs = harness::run_replicas(scale, 1, opts.jobs);
    stats::DataTable scale_table(columns);
    add_point_row(scale_table, static_cast<double>(scale.shard_count), runs);
    result.sections.push_back(
        {"scale_1e5",
         "scale cell: n = " + std::to_string(opts.max_n) + ", " +
             std::to_string(opts.max_n) + " closed-loop sessions, 16 shards",
         std::move(scale_table),
         "Expected shape: the closed loop self-throttles (sessions wait in\n"
         "the per-process FIFOs), so the cell completes in bounded time and\n"
         "aggregate throughput lands near the 16-writer ceiling.\n"});
  }
  return result;
}

Experiment make_experiment() {
  Experiment e;
  e.name = "shard_throughput";
  e.id = "E19";
  e.title = "sharded keyspace: aggregate saturation vs shard count";
  e.paper_ref = "multi-register extension (systems experiment; not a paper claim)";
  e.grid = "shards in {1, 2, 4, 8, 16}; sync, n_total=480, 240 sessions, "
           "zipf 0.99; --max-n>=1e5 adds the 1e5-session cell";
  e.default_seeds = kDefaultSeeds;
  e.run = run;
  e.scenario = [] {
    ExperimentConfig cfg = base_config();
    cfg.n = 120;
    cfg.shard_count = 4;
    cfg.duration = 200;
    cfg.workload.clients = 60;
    return cfg;
  };
  return e;
}

const Registrar registrar{make_experiment()};

}  // namespace
}  // namespace dynreg::bench
