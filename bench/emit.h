// Output formats for experiment results: console tables (the classic bench
// look), JSON documents, and CSV.
//
// JSON/CSV never embed execution details (worker count, wall-clock time),
// so two runs of the same experiment with the same seeds serialize to the
// same bytes whatever --jobs was — the property the determinism acceptance
// test pins down.
#pragma once

#include <iosfwd>
#include <string>

#include "registry.h"

namespace dynreg::bench {

/// Prints the classic console rendering: header, per-section tables, notes.
void print_console(const Experiment& e, const ExperimentResult& r, std::ostream& os);

/// The whole result as one JSON document:
///   {"experiment", "id", "title", "paper_ref", "seeds",
///    "sections": [{"name", "columns", "rows", ...}]}
std::string to_json(const Experiment& e, std::size_t seeds, const ExperimentResult& r);

/// All sections as CSV; each section is preceded by a `# section: <name>`
/// comment line (single-section results are plain CSV after one comment).
std::string to_csv(const ExperimentResult& r);

}  // namespace dynreg::bench
