// E20 — sharded keyspace: per-shard tail latency under churn and zipfian
// skew. Not a paper claim — the shard layer's tail-behavior experiment: a
// hash partition spreads KEYS evenly over shards, but a zipfian workload
// concentrates TRAFFIC, so the shard owning the head of the distribution
// queues deeper (sessions serialize per target process, writes per writer)
// and its p99 pulls away from the cold shards' — all while every shard
// keeps riding the same constant membership churn.
//
// Grid: zipf exponent sweep at a fixed shard count, plus a hot-key storm
// cell (periodic phases where every session hammers key 0) as the extreme
// point of the same effect.
#include <string>

#include "harness/sweep.h"
#include "registry.h"

namespace dynreg::bench {
namespace {

using harness::ExperimentConfig;
using harness::MetricsReport;
using stats::Cell;

constexpr std::size_t kDefaultSeeds = 3;

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kSync;
  cfg.timing = harness::Timing::kSynchronous;
  cfg.n = 240;
  cfg.delta = 5;
  cfg.duration = 1200;
  cfg.shard_count = 8;
  cfg.churn_kind = harness::ChurnKind::kConstant;
  // Well below Theorem 1's threshold (1/(3*delta) ~ 0.067): churn stresses
  // the tail without threatening safety.
  cfg.churn_rate = 0.02;
  cfg.workload.key_count = 64;
  cfg.workload.read_frac = 0.8;
  cfg.workload.think_time = 2;
  cfg.workload.clients = 120;
  return cfg;
}

void add_point_row(stats::DataTable& table, const std::string& label,
                   const std::vector<MetricsReport>& runs) {
  const auto agg = harness::aggregate_metrics(runs);
  const double hot = harness::mean_of(
      runs, [](const MetricsReport& r) { return r.shard_hot_p99; });
  const double cold = harness::mean_of(
      runs, [](const MetricsReport& r) { return r.shard_cold_p99; });
  const double skew = harness::mean_of(
      runs, [](const MetricsReport& r) { return r.shard_skew; });
  const double ops = harness::mean_of(
      runs, [](const MetricsReport& r) { return r.ops_per_tick; });
  const double dropped = harness::mean_of(runs, [](const MetricsReport& r) {
    return static_cast<double>(r.reads_dropped + r.writes_dropped);
  });
  table.add_row({Cell::str(label), Cell::num(hot, 1), Cell::num(cold, 1),
                 Cell::num(cold > 0.0 ? hot / cold : 0.0, 2), Cell::num(skew, 2),
                 Cell::num(agg.read_latency_p99.mean, 1), Cell::num(ops, 2),
                 Cell::num(dropped, 1)});
}

ExperimentResult run(const RunOptions& opts) {
  const std::size_t seeds = opts.seeds > 0 ? opts.seeds : 1;  // resolved by run_resolved()

  ExperimentConfig base = base_config();
  if (opts.max_n > 0 && opts.max_n < base.n) {
    base.n = opts.max_n;
    base.workload.clients = std::max<std::size_t>(1, opts.max_n / 2);
  }
  apply_workload(opts, base);  // --shards/--zipf/--read-frac/--think etc.

  const std::vector<double> zipf_exponents{0.0, 0.99, 1.5};

  const auto points = harness::parallel_sweep(
      base, zipf_exponents,
      [](ExperimentConfig& cfg, double s) { cfg.workload.zipf_s = s; }, seeds,
      opts.jobs);

  const std::vector<std::string> columns{"workload",  "hot p99",  "cold p99",
                                         "hot/cold",  "op skew",  "read p99",
                                         "ops/tick",  "dropped"};

  stats::DataTable table(columns);
  for (const auto& p : points) {
    add_point_row(table, "zipf " + stats::Table::fmt(p.x, 2), p.runs);
  }

  // Storm cell: the head key's traffic share goes to ~100% for storm_len of
  // every storm_every ticks — the zipfian effect at its limit.
  ExperimentConfig storm = base;
  storm.workload.zipf_s = 0.99;
  storm.workload.storm_every = 200;
  storm.workload.storm_len = 50;
  const auto storm_runs = harness::run_replicas(storm, seeds, opts.jobs);
  add_point_row(table, "zipf 0.99 + storm", storm_runs);

  ExperimentResult result;
  result.sections.push_back(
      {"shard_tail_churn", "", std::move(table),
       "Expected shape: hot/cold and op-skew grow monotonically with the\n"
       "zipf exponent. Even at zipf 0 the hash partition leaves shards\n"
       "owning unequal slices of the 64-key space, so closed-loop feedback\n"
       "already separates the tails; skew then concentrates traffic on the\n"
       "head shard — hot p99 >= 2x cold p99 from zipf 0.99 on — while\n"
       "aggregate ops/tick sags (the closed loop waits on the hot shard).\n"
       "The storm cell approaches the limit: whole phases on one key.\n"});
  return result;
}

Experiment make_experiment() {
  Experiment e;
  e.name = "shard_tail_churn";
  e.id = "E20";
  e.title = "sharded keyspace: per-shard tails under churn and skew";
  e.paper_ref = "multi-register extension (systems experiment; not a paper claim)";
  e.grid = "zipf s in {0, 0.99, 1.5} + hot-key storm; sync, 8 shards, n=240, "
           "120 sessions, churn 0.02";
  e.default_seeds = kDefaultSeeds;
  e.run = run;
  e.scenario = [] {
    ExperimentConfig cfg = base_config();
    cfg.workload.zipf_s = 0.99;
    cfg.workload.storm_every = 200;
    cfg.workload.storm_len = 50;
    cfg.duration = 600;
    return cfg;
  };
  return e;
}

const Registrar registrar{make_experiment()};

}  // namespace
}  // namespace dynreg::bench
