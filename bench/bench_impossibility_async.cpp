// E5 — Theorem 2: no regular register in a fully asynchronous dynamic
// system.
//
// Constructs the theorem's bad run: an adversary delays every message
// towards a victim process beyond any bound. The victim's quorum read
// never terminates no matter how long we wait, while the rest of the
// system keeps completing writes. Re-running the same deployment with a
// stabilization time (GST) shows the read terminating shortly after GST —
// the exact boundary between Section 4 (impossible) and Section 5
// (possible). Scripted deterministic construction: --seeds has no effect.
#include "bench_util.h"
#include "harness/thread_pool.h"
#include "registry.h"

namespace dynreg::bench {
namespace {

using stats::Cell;

constexpr sim::ProcessId kVictim = 2;

struct RunResult {
  bool write_completed = false;
  bool victim_read_completed = false;
  sim::Time victim_read_latency = 0;
};

RunResult run_scenario(sim::Time horizon, std::optional<sim::Time> gst) {
  auto delays = std::make_unique<net::AsyncAdversarialDelay>(
      40, [gst](sim::Time now, sim::ProcessId, sim::ProcessId to,
                const net::Payload&) -> std::optional<sim::Duration> {
        if (to != kVictim) return std::nullopt;
        if (!gst) return 100000000;             // fully async: starved forever
        if (now < *gst) return *gst - now + 3;  // late but timely after GST
        return 3;
      });
  auto cluster = ScriptedCluster::es(
      19, 5, 0.0, std::move(delays), churn::LeavePolicy::kUniform,
      replay::scenario_key("E5/impossibility_async",
                           {horizon, gst ? *gst + 1 : 0u}));

  RunResult result;
  cluster->node(0)->write(OpContext{}, 1, [&result](OpOutcome o) {
    if (o == OpOutcome::kOk) result.write_completed = true;
  });
  const sim::Time read_start = 0;
  cluster->node(kVictim)->read(
      OpContext{}, [&result, &cluster, read_start](OpOutcome o, Value) {
        if (o != OpOutcome::kOk) return;
        result.victim_read_completed = true;
        result.victim_read_latency = cluster->sim.now() - read_start;
      });
  cluster->sim.run_until(horizon);
  return result;
}

ExperimentResult run(const RunOptions& opts) {
  struct Case {
    std::string timing;
    sim::Time horizon;
    std::optional<sim::Time> gst;
  };
  std::vector<Case> cases;
  for (const sim::Time horizon : {1000u, 10000u, 100000u}) {
    cases.push_back({"fully asynchronous", horizon, std::nullopt});
  }
  for (const sim::Time gst : {500u, 2000u}) {
    cases.push_back({"eventually sync (GST=" + std::to_string(gst) + ")", gst + 5000, gst});
  }

  std::vector<RunResult> outcomes(cases.size());
  harness::parallel_for(opts.jobs, cases.size(), [&](std::size_t i) {
    outcomes[i] = run_scenario(cases[i].horizon, cases[i].gst);
  });

  stats::DataTable table({"timing model", "horizon", "writer's write", "victim's read",
                          "victim read latency"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const RunResult& r = outcomes[i];
    table.add_row(
        {Cell::str(cases[i].timing), Cell::num(static_cast<double>(cases[i].horizon), 0),
         Cell::str(r.write_completed ? "completed" : "blocked"),
         Cell::str(r.victim_read_completed ? "completed" : "NEVER TERMINATES"),
         Cell::str(r.victim_read_completed ? std::to_string(r.victim_read_latency) : "-")});
  }

  ExperimentResult result;
  result.sections.push_back(
      {"impossibility", "", std::move(table),
       "Expected shape (paper): under full asynchrony the victim's read stays\n"
       "blocked at every horizon (the adversary always has a schedule in which\n"
       "the value obtained is older than the last completed write, hence no\n"
       "protocol can be both safe and live — Theorem 2). With eventual\n"
       "synchrony the read terminates about GST + a round trip later.\n"});
  return result;
}

Experiment make_experiment() {
  Experiment e;
  e.name = "impossibility_async";
  e.id = "E5";
  e.title = "impossibility in a fully asynchronous system";
  e.paper_ref = "Theorem 2, Section 4 (vs Theorem 3, Section 5)";
  e.grid = "scripted adversary: horizons {1e3,1e4,1e5} async; GST {500,2000}; seeds ignored";
  e.default_seeds = 1;
  e.uses_seeds = false;
  e.run = run;
  return e;
}

const Registrar registrar{make_experiment()};

}  // namespace
}  // namespace dynreg::bench
