// E5 — Theorem 2: no regular register in a fully asynchronous dynamic
// system.
//
// Constructs the theorem's bad run: an adversary delays every message
// towards a victim process beyond any bound. The victim's quorum read
// never terminates no matter how long we wait, while the rest of the
// system keeps completing writes. Re-running the same deployment with a
// stabilization time (GST) shows the read terminating shortly after GST —
// the exact boundary between Section 4 (impossible) and Section 5
// (possible).
#include "bench_util.h"

using namespace dynreg;

namespace {

constexpr sim::ProcessId kVictim = 2;

struct RunResult {
  bool write_completed = false;
  bool victim_read_completed = false;
  sim::Time victim_read_latency = 0;
};

RunResult run(sim::Time horizon, std::optional<sim::Time> gst) {
  auto delays = std::make_unique<net::AsyncAdversarialDelay>(
      40, [gst](sim::Time now, sim::ProcessId, sim::ProcessId to,
                const net::Payload&) -> std::optional<sim::Duration> {
        if (to != kVictim) return std::nullopt;
        if (!gst) return 100000000;             // fully async: starved forever
        if (now < *gst) return *gst - now + 3;  // late but timely after GST
        return 3;
      });
  auto cluster = bench::ScriptedCluster::es(19, 5, 0.0, std::move(delays));

  RunResult result;
  cluster->node(0)->write(1, [&result] { result.write_completed = true; });
  const sim::Time read_start = 0;
  cluster->node(kVictim)->read([&result, &cluster, read_start](Value) {
    result.victim_read_completed = true;
    result.victim_read_latency = cluster->sim.now() - read_start;
  });
  cluster->sim.run_until(horizon);
  return result;
}

}  // namespace

int main() {
  bench::print_header("E5: impossibility in a fully asynchronous system",
                      "Theorem 2, Section 4 (vs Theorem 3, Section 5)");

  stats::Table table({"timing model", "horizon", "writer's write", "victim's read",
                      "victim read latency"});

  for (const sim::Time horizon : {1000u, 10000u, 100000u}) {
    const RunResult r = run(horizon, std::nullopt);
    table.add_row({"fully asynchronous", std::to_string(horizon),
                   r.write_completed ? "completed" : "blocked",
                   r.victim_read_completed ? "completed" : "NEVER TERMINATES",
                   r.victim_read_completed ? std::to_string(r.victim_read_latency) : "-"});
  }
  for (const sim::Time gst : {500u, 2000u}) {
    const RunResult r = run(/*horizon=*/gst + 5000, gst);
    table.add_row({"eventually sync (GST=" + std::to_string(gst) + ")",
                   std::to_string(gst + 5000),
                   r.write_completed ? "completed" : "blocked",
                   r.victim_read_completed ? "completed" : "NEVER TERMINATES",
                   r.victim_read_completed ? std::to_string(r.victim_read_latency) : "-"});
  }

  std::cout << table.to_string() << "\n";
  std::cout << "Expected shape (paper): under full asynchrony the victim's read stays\n"
               "blocked at every horizon (the adversary always has a schedule in which\n"
               "the value obtained is older than the last completed write, hence no\n"
               "protocol can be both safe and live — Theorem 2). With eventual\n"
               "synchrony the read terminates about GST + a round trip later.\n";
  return 0;
}
