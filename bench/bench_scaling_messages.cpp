// E15 — scaling law: per-operation message cost and latency as the system
// grows, flat vs tree dissemination.
//
// The ES protocol's quorum operations broadcast to every process, so the
// delivered-copy count per operation grows linearly with n under either
// dissemination mode — the scaling law this experiment pins down. What the
// tree changes is who pays: flat dissemination makes the operation's
// initiator transmit all n-1 copies itself, while the BFS tree (fanout f)
// caps every process's per-broadcast transmit load at f and pays for it
// with O(log_f n) hops of extra delivery latency, visible in the latency
// columns.
//
// The default n grid stops at 1e4 so `run --all` stays affordable;
// --max-n=100000 extends it to the 1e5-process point.
#include <algorithm>
#include <string>

#include "harness/sweep.h"
#include "registry.h"

namespace dynreg::bench {
namespace {

using harness::ExperimentConfig;
using harness::MetricsReport;
using stats::Cell;

constexpr std::size_t kDefaultSeeds = 2;

/// Default grid; --max-n truncates or extends it (always keeping at least
/// the smallest point so the table is never empty).
std::vector<double> n_grid(const RunOptions& opts) {
  std::vector<double> grid{100, 300, 1000, 3000, 10000};
  if (opts.max_n != 0) {
    const auto cap = static_cast<double>(opts.max_n);
    grid.erase(std::remove_if(grid.begin() + 1, grid.end(),
                              [cap](double n) { return n > cap; }),
               grid.end());
    if (grid.back() < cap) grid.push_back(cap);
  }
  return grid;
}

ExperimentConfig base_config(harness::Dissemination mode) {
  ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kEventuallySync;
  cfg.timing = harness::Timing::kEventuallySynchronous;
  cfg.seed = 11;
  cfg.delta = 5;
  cfg.gst = 0;
  cfg.duration = 400;
  // No churn: every delivered copy is operation traffic, so copies/op is
  // exactly the dissemination cost (joins are E16's subject).
  cfg.churn_kind = harness::ChurnKind::kNone;
  cfg.dissemination = mode;
  cfg.tree_fanout = 4;
  // A handful of operations per run: the per-op cost is what scales with n,
  // so a fixed op count keeps the biggest cells affordable.
  cfg.workload.read_interval = 40;
  cfg.workload.write_interval = 80;
  return cfg;
}

const char* mode_tag(harness::Dissemination mode) {
  return mode == harness::Dissemination::kFlat ? "flat" : "tree";
}

double copies(const MetricsReport& r, const char* type) {
  const auto it = r.msgs_by_type.find(type);
  return it == r.msgs_by_type.end() ? 0.0 : static_cast<double>(it->second);
}

ExperimentResult run(const RunOptions& opts) {
  const std::size_t seeds = opts.seeds > 0 ? opts.seeds : 1;  // resolved by run_resolved()
  const std::vector<double> grid = n_grid(opts);

  ExperimentResult result;
  stats::DataTable summary(
      {"n", "flat msgs/op", "tree msgs/op", "flat write p50", "tree write p50"});
  std::vector<std::vector<double>> summary_cols(4, std::vector<double>(grid.size(), 0.0));

  for (const harness::Dissemination mode :
       {harness::Dissemination::kFlat, harness::Dissemination::kTree}) {
    ExperimentConfig cfg = base_config(mode);
    apply_workload(opts, cfg);
    const auto points = harness::parallel_sweep(
        cfg, grid,
        [](ExperimentConfig& c, double n) { c.n = static_cast<std::size_t>(n); },
        seeds, opts.jobs);

    stats::DataTable table({"n", "ops", "msgs/op", "msgs/op / n", "read p50",
                            "write p50", "write p99"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& p = points[i];
      double ops = 0, msgs = 0, rp50 = 0, wp50 = 0, wp99 = 0;
      for (const MetricsReport& r : p.runs) {
        ops += static_cast<double>(r.reads_completed + r.writes_completed);
        msgs += copies(r, "es.read") + copies(r, "es.reply") +
                copies(r, "es.write") + copies(r, "es.ack");
        rp50 += r.read_latency_p50;
        wp50 += r.write_latency_p50;
        wp99 += r.write_latency_p99;
      }
      const double runs = static_cast<double>(p.runs.size());
      const double per_op = msgs / std::max(1.0, ops);
      table.add_row({Cell::num(p.x, 0), Cell::num(ops / runs, 1),
                     Cell::num(per_op, 1), Cell::num(per_op / p.x, 3),
                     Cell::num(rp50 / runs, 1), Cell::num(wp50 / runs, 1),
                     Cell::num(wp99 / runs, 1)});
      const std::size_t col = mode == harness::Dissemination::kFlat ? 0 : 1;
      summary_cols[col][i] = per_op;
      summary_cols[col + 2][i] = wp50 / runs;
    }
    result.sections.push_back(
        {std::string("es_") + mode_tag(mode),
         std::string("ES quorum ops, ") + mode_tag(mode) + " dissemination",
         std::move(table), ""});
  }

  for (std::size_t i = 0; i < grid.size(); ++i) {
    summary.add_row({Cell::num(grid[i], 0), Cell::num(summary_cols[0][i], 1),
                     Cell::num(summary_cols[1][i], 1),
                     Cell::num(summary_cols[2][i], 1),
                     Cell::num(summary_cols[3][i], 1)});
  }
  result.sections.push_back(
      {"summary", "flat vs tree",
       std::move(summary),
       "Expected shape: msgs/op grows linearly with n under both modes\n"
       "(msgs/op / n roughly constant — quorum traffic is inherently O(n));\n"
       "the tree redistributes the sends from the initiator to the tree's\n"
       "interior and pays O(log n) extra hops of write latency for it —\n"
       "plus, with the ES retransmit timer unchanged, extra rebroadcast\n"
       "rounds while the deeper quorum forms (tree msgs/op > flat)."});
  return result;
}

Experiment make_experiment() {
  Experiment e;
  e.name = "scaling_messages";
  e.id = "E15";
  e.title = "per-op message cost and latency vs n (flat vs tree)";
  e.paper_ref = "Section 5 broadcast cost; dissemination-tree extension";
  e.grid = "dissemination {flat, tree} x n {1e2..1e4; --max-n extends}";
  e.default_seeds = kDefaultSeeds;
  e.run = run;
  e.scenario = [] {
    // Representative run for the trace tooling: the tree cell, mid-grid.
    ExperimentConfig cfg = base_config(harness::Dissemination::kTree);
    cfg.n = 300;
    return cfg;
  };
  return e;
}

const Registrar registrar{make_experiment()};

}  // namespace
}  // namespace dynreg::bench
