// E2 — Lemma 2: |A(tau, tau+3*delta)| >= n(1 - 3*delta*c), positive iff
// c < 1/(3*delta).
//
// Sweeps the churn rate as a fraction of the threshold and reports, per
// point: the analytic bound, the measured |A(0, 3*delta)| from the
// fully-active start (the lemma's exact setting), and the steady-state
// minimum over all windows (which also pays the joins-in-progress cost).
// Departures use the adversarial oldest-active-first policy — Lemma 2's
// worst case. One scripted deployment per point: --seeds has no effect.
#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "harness/thread_pool.h"
#include "registry.h"

namespace dynreg::bench {
namespace {

using stats::Cell;

ExperimentResult run(const RunOptions& opts) {
  constexpr std::size_t kN = 60;
  constexpr sim::Duration kDelta = 5;
  constexpr sim::Time kHorizon = 800;
  const double threshold = 1.0 / (3.0 * static_cast<double>(kDelta));

  const std::vector<double> fractions{0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25};

  struct PointResult {
    std::size_t initial_window = 0;
    std::size_t steady_min = 0;
  };
  std::vector<PointResult> measured(fractions.size());

  harness::parallel_for(opts.jobs, fractions.size(), [&](std::size_t i) {
    const double c = fractions[i] * threshold;
    SyncConfig cfg;
    cfg.delta = kDelta;
    auto cluster = ScriptedCluster::sync(
        17, kN, c, cfg, std::make_unique<net::SynchronousDelay>(kDelta),
        churn::LeavePolicy::kOldestActiveFirst,
        replay::scenario_key("E2/lemma2_active_bound", {i}));
    cluster->sim.run_until(kHorizon);

    const auto& chron = cluster->system->chronicle();
    const sim::Duration window = 3 * kDelta;
    measured[i].initial_window = chron.active_through(0, window);
    std::size_t steady_min = kN;
    for (sim::Time t = 0; t + window < kHorizon; t += 3) {
      steady_min = std::min(steady_min, chron.active_through(t, t + window));
    }
    measured[i].steady_min = steady_min;
  });

  stats::DataTable table({"c/threshold", "churn c", "analytic n(1-3dc)",
                          "measured |A(0,3d)|", "steady min |A(t,t+3d)|",
                          "bound positive"});
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const double c = fractions[i] * threshold;
    const double analytic =
        static_cast<double>(kN) * (1.0 - 3.0 * static_cast<double>(kDelta) * c);
    table.add_row({Cell::num(fractions[i], 2), Cell::num(c, 4),
                   Cell::num(std::max(0.0, analytic), 1),
                   Cell::num(static_cast<double>(measured[i].initial_window), 0),
                   Cell::num(static_cast<double>(measured[i].steady_min), 0),
                   Cell::str(analytic > 0.0 ? "yes" : "NO")});
  }

  ExperimentResult result;
  result.sections.push_back(
      {"active_bound", "", std::move(table),
       "Expected shape (paper): measured |A(0,3d)| tracks the analytic bound\n"
       "n(1-3*delta*c) and stays positive up to c = 1/(3*delta) = " +
           stats::Table::fmt(threshold, 4) +
           ".\nThe steady-state minimum is lower (it also excludes processes whose\n"
           "joins are in progress) and hits zero before the threshold — the bound\n"
           "is tight only from a fully-active start, as in the lemma's proof.\n"});
  return result;
}

Experiment make_experiment() {
  Experiment e;
  e.name = "lemma2_active_bound";
  e.id = "E2";
  e.title = "Lemma 2 active-window bound";
  e.paper_ref = "Lemma 2, Section 3.4";
  e.grid = "c/threshold in {0..1.25}, n=60, delta=5, adversarial departures; seeds ignored";
  e.default_seeds = 1;
  e.uses_seeds = false;
  e.run = run;
  return e;
}

const Registrar registrar{make_experiment()};

}  // namespace
}  // namespace dynreg::bench
