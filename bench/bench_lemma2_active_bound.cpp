// E2 — Lemma 2: |A(tau, tau+3*delta)| >= n(1 - 3*delta*c), positive iff
// c < 1/(3*delta).
//
// Sweeps the churn rate as a fraction of the threshold and reports, per
// point: the analytic bound, the measured |A(0, 3*delta)| from the
// fully-active start (the lemma's exact setting), and the steady-state
// minimum over all windows (which also pays the joins-in-progress cost).
// Departures use the adversarial oldest-active-first policy — Lemma 2's
// worst case.
#include <algorithm>
#include <cmath>

#include "bench_util.h"

using namespace dynreg;

int main() {
  bench::print_header("E2: Lemma 2 active-window bound", "Lemma 2, Section 3.4");

  constexpr std::size_t kN = 60;
  constexpr sim::Duration kDelta = 5;
  constexpr sim::Time kHorizon = 800;
  const double threshold = 1.0 / (3.0 * static_cast<double>(kDelta));

  stats::Table table({"c/threshold", "churn c", "analytic n(1-3dc)", "measured |A(0,3d)|",
                      "steady min |A(t,t+3d)|", "bound positive"});

  for (const double fraction :
       {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25}) {
    const double c = fraction * threshold;
    SyncConfig cfg;
    cfg.delta = kDelta;
    auto cluster = bench::ScriptedCluster::sync(
        17, kN, c, cfg, std::make_unique<net::SynchronousDelay>(kDelta),
        churn::LeavePolicy::kOldestActiveFirst);
    cluster->sim.run_until(kHorizon);

    const auto& chron = cluster->system->chronicle();
    const sim::Duration window = 3 * kDelta;
    const std::size_t initial_window = chron.active_through(0, window);
    std::size_t steady_min = kN;
    for (sim::Time t = 0; t + window < kHorizon; t += 3) {
      steady_min = std::min(steady_min, chron.active_through(t, t + window));
    }

    const double analytic =
        static_cast<double>(kN) * (1.0 - 3.0 * static_cast<double>(kDelta) * c);
    table.add_row({stats::Table::fmt(fraction, 2), stats::Table::fmt(c, 4),
                   stats::Table::fmt(std::max(0.0, analytic), 1),
                   std::to_string(initial_window), std::to_string(steady_min),
                   analytic > 0.0 ? "yes" : "NO"});
  }

  std::cout << table.to_string() << "\n";
  std::cout << "Expected shape (paper): measured |A(0,3d)| tracks the analytic bound\n"
               "n(1-3*delta*c) and stays positive up to c = 1/(3*delta) = "
            << stats::Table::fmt(threshold, 4)
            << ".\nThe steady-state minimum is lower (it also excludes processes whose\n"
               "joins are in progress) and hits zero before the threshold — the bound\n"
               "is tight only from a fully-active start, as in the lemma's proof.\n";
  return 0;
}
