// E12 — multi-writer extension (the paper's Section 7: "permit any process
// to write at any time").
//
// Concurrent writes are ordered by lexicographic (sn, writer id)
// timestamps. Sweeps the number of simultaneous writers and reports
// completion, safety under the generalized (concurrent-writes) regularity
// predicate, write-overlap counts, and traffic.
#include <iostream>

#include "harness/sweep.h"
#include "stats/table.h"

using namespace dynreg;

int main() {
  std::cout << "=== E12: multi-writer ES register (concurrent writes) ===\n";
  std::cout << "reproduces: Section 7 open question (quorum-less multi-writer via timestamps)\n\n";

  harness::ExperimentConfig base;
  base.protocol = harness::Protocol::kEventuallySync;
  base.timing = harness::Timing::kEventuallySynchronous;
  base.gst = 0;
  base.n = 15;
  base.delta = 5;
  base.duration = 5000;
  base.churn_rate = base.es_churn_threshold();
  base.workload.writer_mode = workload::WriterMode::kConcurrent;
  base.workload.read_interval = 10;
  base.workload.write_interval = 40;

  const std::vector<double> writers{1, 2, 3, 5, 7};
  const auto points = harness::sweep(
      base, writers,
      [](harness::ExperimentConfig& cfg, double w) {
        cfg.workload.concurrent_writers = static_cast<std::size_t>(w);
      },
      /*seeds=*/3);

  stats::Table table({"concurrent writers", "writes completed", "overlapping pairs",
                      "read completion", "violation rate", "mean write latency"});
  for (const auto& p : points) {
    const double writes = harness::mean_of(p.runs, [](const harness::MetricsReport& r) {
      return static_cast<double>(r.writes_completed);
    });
    const double overlaps = harness::mean_of(p.runs, [](const harness::MetricsReport& r) {
      return static_cast<double>(r.regularity.concurrent_write_pairs);
    });
    table.add_row({stats::Table::fmt(p.x, 0), stats::Table::fmt(writes, 0),
                   stats::Table::fmt(overlaps, 0),
                   stats::Table::fmt(p.mean_read_completion(), 3),
                   stats::Table::fmt(p.mean_violation_rate(), 4),
                   stats::Table::fmt(p.mean_write_latency(), 1)});
  }
  std::cout << table.to_string() << "\n";
  std::cout << "Expected shape: zero violations at every concurrency level (the\n"
               "timestamp order totally orders concurrent writes and the generalized\n"
               "regularity predicate holds); overlapping pairs grow with the writer\n"
               "count while read completion and write latency stay flat — the paper's\n"
               "single-writer assumption is a simplification, not a load-bearing\n"
               "restriction, once writes carry (sn, writer id) timestamps.\n";
  return 0;
}
