// E12 — multi-writer extension (the paper's Section 7: "permit any process
// to write at any time").
//
// Concurrent writes are ordered by lexicographic (sn, writer id)
// timestamps. Sweeps the number of simultaneous writers and reports
// completion, safety under the generalized (concurrent-writes) regularity
// predicate, write-overlap counts, and traffic.
#include "harness/sweep.h"
#include "registry.h"

namespace dynreg::bench {
namespace {

using harness::ExperimentConfig;
using stats::Cell;

constexpr std::size_t kDefaultSeeds = 3;

ExperimentResult run(const RunOptions& opts) {
  const std::size_t seeds = opts.seeds > 0 ? opts.seeds : 1;  // resolved by run_resolved()

  ExperimentConfig base;
  base.protocol = harness::Protocol::kEventuallySync;
  base.timing = harness::Timing::kEventuallySynchronous;
  base.gst = 0;
  base.n = 15;
  base.delta = 5;
  base.duration = 5000;
  base.churn_rate = base.es_churn_threshold();
  base.workload.writer_mode = workload::WriterMode::kConcurrent;
  base.workload.read_interval = 10;
  base.workload.write_interval = 40;
  apply_workload(opts, base);

  const std::vector<double> writers{1, 2, 3, 5, 7};
  const auto points = harness::parallel_sweep(
      base, writers,
      [](ExperimentConfig& cfg, double w) {
        cfg.workload.concurrent_writers = static_cast<std::size_t>(w);
      },
      seeds, opts.jobs);

  stats::DataTable table({"concurrent writers", "writes completed", "overlapping pairs",
                          "read completion", "violation rate", "violations total",
                          "mean write latency"});
  for (const auto& p : points) {
    const auto agg = p.aggregate();
    const double writes = harness::mean_of(p.runs, [](const harness::MetricsReport& r) {
      return static_cast<double>(r.writes_completed);
    });
    const double overlaps = harness::mean_of(p.runs, [](const harness::MetricsReport& r) {
      return static_cast<double>(r.regularity.concurrent_write_pairs);
    });
    table.add_row({Cell::num(p.x, 0), Cell::num(writes, 0), Cell::num(overlaps, 0),
                   Cell::num(agg.read_completion.mean, 3),
                   Cell::num(agg.violation_rate.mean, 4),
                   Cell::num(static_cast<double>(agg.violations_total), 0),
                   Cell::num(agg.write_latency.mean, 1)});
  }

  ExperimentResult result;
  result.sections.push_back(
      {"multi_writer", "", std::move(table),
       "Expected shape: zero violations at every concurrency level (the\n"
       "timestamp order totally orders concurrent writes and the generalized\n"
       "regularity predicate holds); overlapping pairs grow with the writer\n"
       "count while read completion and write latency stay flat — the paper's\n"
       "single-writer assumption is a simplification, not a load-bearing\n"
       "restriction, once writes carry (sn, writer id) timestamps.\n"});
  return result;
}

Experiment make_experiment() {
  Experiment e;
  e.name = "multi_writer";
  e.id = "E12";
  e.title = "multi-writer ES register (concurrent writes)";
  e.paper_ref = "Section 7 open question (multi-writer via timestamps)";
  e.grid = "concurrent writers in {1,2,3,5,7}; n=15, churn at ES bound";
  e.default_seeds = kDefaultSeeds;
  e.run = run;
  return e;
}

const Registrar registrar{make_experiment()};

}  // namespace
}  // namespace dynreg::bench
