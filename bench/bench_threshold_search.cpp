// E14 — adversarial schedule search around the Theorem 1 threshold.
//
// Theorem 1 claims the synchronous protocol implements a regular register
// whenever c < 1/(3*delta). A churn sweep (E3) samples *one* schedule per
// (config, seed); this experiment probes the claim adversarially: at each
// churn point it records a base schedule and then replays a budget of
// perturbed variants (delay jitter, message reordering, loss toggling,
// churn-time shifts — src/replay/search.h), hunting for a schedule that
// produces a stale read.
//
// The second section repeats the search for the Figure 3a ablation (join
// inquires without the delta wait). The contrast is the point: for the real
// protocol no perturbed schedule below the threshold violates regularity,
// while the no-wait ablation is broken by adversarial schedules well below
// it — the delta wait, not luck, is what carries the bound.
//
// Deterministic: each point's search is seeded by its index and search
// results are --jobs-independent, so the table is byte-identical across
// runs. --seeds has no effect (the budget, not a seed set, is the
// replication dimension).
#include "harness/experiment.h"
#include "registry.h"
#include "replay/hooks.h"
#include "replay/search.h"

namespace dynreg::bench {
namespace {

using harness::ExperimentConfig;
using stats::Cell;

constexpr std::size_t kBudget = 200;

ExperimentConfig point_config(harness::Protocol protocol, double fraction) {
  ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.n = 8;
  cfg.delta = 5;
  cfg.duration = 300;
  cfg.leave_policy = churn::LeavePolicy::kOldestActiveFirst;
  cfg.workload.read_interval = 3;
  cfg.workload.write_interval = 15;
  cfg.churn_rate = fraction * cfg.sync_churn_threshold();
  return cfg;
}

stats::DataTable search_table(harness::Protocol protocol, bool toggle_loss,
                              std::size_t jobs) {
  const std::vector<double> fractions{0.5, 0.8, 0.95, 1.1, 1.5};
  stats::DataTable table({"c/threshold", "churn c", "base violations", "schedules",
                          "violating", "inverted", "distinct", "first violating"});
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const ExperimentConfig cfg = point_config(protocol, fractions[i]);
    const replay::Trace base = replay::record_base(cfg);
    const harness::MetricsReport base_report = harness::run_experiment(cfg, {});
    replay::SearchOptions opt;
    opt.seed = 100 + i;
    opt.budget = kBudget;
    opt.jobs = jobs;
    opt.toggle_loss = toggle_loss;
    const replay::SearchResult res = replay::search(cfg, base, opt);
    table.add_row(
        {Cell::num(fractions[i], 2), Cell::num(cfg.churn_rate, 4),
         Cell::num(static_cast<double>(base_report.regularity.violations.size()), 0),
         Cell::num(static_cast<double>(res.executed), 0),
         Cell::num(static_cast<double>(res.violating), 0),
         Cell::num(static_cast<double>(res.inverted), 0),
         Cell::num(static_cast<double>(res.distinct_schedules), 0),
         Cell::str(res.first_violation ? "#" + std::to_string(*res.first_violation)
                                       : "-")});
  }
  return table;
}

ExperimentResult run(const RunOptions& opts) {
  ExperimentResult result;
  result.sections.push_back(
      {"sync_boundary", "",
       search_table(harness::Protocol::kSync, /*toggle_loss=*/false, opts.jobs),
       "Expected shape (paper): no perturbed schedule legal under the\n"
       "synchronous timing model (delays jittered and reordered within the\n"
       "recorded delta envelope, churn shifted, channels reliable) violates\n"
       "regularity below c = 1/(3*delta) — Theorem 1's bound survives an\n"
       "adversarial schedule search, not just the sampled schedules of E3.\n"
       "New/old inversions do appear (the register is regular, not atomic —\n"
       "Section 1), and the searched neighbourhood is almost all distinct\n"
       "schedules.\n"});
  result.sections.push_back(
      {"no_wait_ablation", "Figure 3a ablation (join inquires without the delta wait)",
       search_table(harness::Protocol::kSyncNoWait, /*toggle_loss=*/true, opts.jobs),
       "Expected shape (paper): with the delta wait removed, the searcher\n"
       "finds violating schedules at every churn point, well below the\n"
       "threshold — e.g. the in-flight WRITE copy towards a joining process\n"
       "goes missing (the hazard Figure 3a depicts: a joiner has no delivery\n"
       "guarantee for broadcasts preceding its join) and the join adopts a\n"
       "superseded value. The wait, not low churn, carries the safety proof;\n"
       "this section therefore also arms the loss-toggle operator.\n"});
  return result;
}

Experiment make_experiment() {
  Experiment e;
  e.name = "threshold_search";
  e.id = "E14";
  e.title = "adversarial schedule search at the churn threshold";
  e.paper_ref = "Theorem 1 boundary + Figure 3a, Sections 3.3-3.4";
  e.grid = "c/threshold in {0.5..1.5} x {sync, no-wait}; 200 perturbed schedules/point";
  e.default_seeds = 1;
  e.uses_seeds = false;
  e.run = run;
  e.scenario = [] {
    // Search/minimize demo target: the no-wait ablation under legal churn,
    // where adversarial schedules yield compact Fig-3-style counterexamples.
    // Kept field-for-field identical to minimizer_test's golden_scenario()
    // so `dynreg_exp search threshold_search` + `minimize` regenerates the
    // golden narrative fixture (tests/testdata/README.md).
    ExperimentConfig cfg = point_config(harness::Protocol::kSyncNoWait, 0.4);
    cfg.n = 10;
    cfg.duration = 400;
    cfg.workload.write_interval = 20;
    cfg.churn_rate = 0.4 * cfg.sync_churn_threshold();
    return cfg;
  };
  return e;
}

const Registrar registrar{make_experiment()};

}  // namespace
}  // namespace dynreg::bench
