// E6 — the introduction's regularity figure: new/old inversions.
//
// A regular register may answer two non-concurrent reads in "inverted"
// order when both overlap the same write. This bench measures inversion
// frequency for the synchronous protocol as reads increasingly race the
// delta-long write propagation — and contrasts the ABD baseline, whose
// read write-back makes it atomic (zero inversions, by construction).
#include "harness/sweep.h"
#include "harness/thread_pool.h"
#include "registry.h"

namespace dynreg::bench {
namespace {

using harness::ExperimentConfig;
using stats::Cell;

constexpr std::size_t kDefaultSeeds = 5;

ExperimentConfig base_config(harness::Protocol protocol) {
  ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.seed = 0;
  cfg.n = 16;
  cfg.delta = 12;  // long write windows maximize read/write concurrency
  cfg.duration = 4000;
  cfg.churn_kind = harness::ChurnKind::kNone;
  cfg.workload.write_interval = 8;
  if (protocol == harness::Protocol::kAbd) {
    cfg.workload.write_interval = 20;  // ABD writes are slower; keep them serialized
  }
  return cfg;
}

struct Case {
  harness::Protocol protocol;
  const char* label;
  sim::Duration gap;
};

ExperimentResult run(const RunOptions& opts) {
  const std::size_t seeds = opts.seeds > 0 ? opts.seeds : 1;  // resolved by run_resolved()

  std::vector<Case> cases;
  for (const sim::Duration gap : {1u, 2u, 4u, 8u, 16u}) {
    cases.push_back({harness::Protocol::kSync, "sync (regular)", gap});
  }
  for (const sim::Duration gap : {1u, 4u}) {
    cases.push_back({harness::Protocol::kAbd, "abd (atomic)", gap});
  }

  // One flattened (case, seed) grid — the abd cells run alongside the sync
  // cells instead of behind a barrier.
  std::vector<harness::MetricsReport> reports(cases.size() * seeds);
  harness::parallel_for(opts.jobs, reports.size(), [&](std::size_t task) {
    ExperimentConfig cfg = base_config(cases[task / seeds].protocol);
    apply_workload(opts, cfg);
    cfg.workload.read_interval = cases[task / seeds].gap;
    cfg.seed = harness::replica_seed(cfg.seed, task % seeds);
    reports[task] = harness::run_experiment(cfg);
  });

  stats::DataTable table({"protocol", "read gap (ticks)", "reads checked",
                          "inversions / 1k reads", "inversions max/seed",
                          "regularity violations"});
  for (std::size_t c = 0; c < cases.size(); ++c) {
    const std::vector<harness::MetricsReport> runs(
        reports.begin() + static_cast<std::ptrdiff_t>(c * seeds),
        reports.begin() + static_cast<std::ptrdiff_t>((c + 1) * seeds));
    const auto agg = harness::aggregate_metrics(runs);
    double inversions = 0, reads = 0;
    for (const auto& r : runs) {
      inversions += static_cast<double>(r.atomicity.inversion_count);
      reads += static_cast<double>(r.atomicity.reads_checked);
    }
    const double n = static_cast<double>(seeds);
    table.add_row({Cell::str(cases[c].label),
                   Cell::num(static_cast<double>(cases[c].gap), 0),
                   Cell::num(reads / n, 0),
                   Cell::num(reads > 0 ? 1000.0 * inversions / reads : 0.0, 3),
                   Cell::num(static_cast<double>(agg.inversions_max_seed), 0),
                   Cell::num(static_cast<double>(agg.violations_total), 0)});
  }

  ExperimentResult result;
  result.sections.push_back(
      {"inversions", "", std::move(table),
       "Expected shape (paper): the sync register shows a clearly non-zero\n"
       "inversion rate at every read density (any read overlapping a write may\n"
       "independently return the old or new value), with zero regularity\n"
       "violations throughout; the ABD baseline shows exactly zero inversions\n"
       "(its read write-back enforces atomicity). The rate itself is noisy in\n"
       "the read gap — one early new-value read turns every subsequent\n"
       "old-value read of the same window into an inversion.\n"});
  return result;
}

Experiment make_experiment() {
  Experiment e;
  e.name = "new_old_inversion";
  e.id = "E6";
  e.title = "new/old inversions — regular, not atomic";
  e.paper_ref = "Section 1 figure (regularity vs atomicity)";
  e.grid = "read gap in {1,2,4,8,16} (sync), {1,4} (abd); n=16, delta=12";
  e.default_seeds = kDefaultSeeds;
  e.run = run;
  return e;
}

const Registrar registrar{make_experiment()};

}  // namespace
}  // namespace dynreg::bench
