// E6 — the introduction's regularity figure: new/old inversions.
//
// A regular register may answer two non-concurrent reads in "inverted"
// order when both overlap the same write. This bench measures inversion
// frequency for the synchronous protocol as reads increasingly race the
// delta-long write propagation — and contrasts the ABD baseline, whose
// read write-back makes it atomic (zero inversions, by construction).
#include <iostream>

#include "harness/sweep.h"
#include "stats/table.h"

using namespace dynreg;

namespace {

harness::MetricsReport run_once(harness::Protocol protocol, sim::Duration read_interval,
                                std::uint64_t seed) {
  harness::ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.n = 16;
  cfg.delta = 12;  // long write windows maximize read/write concurrency
  cfg.duration = 4000;
  cfg.seed = seed;
  cfg.churn_kind = harness::ChurnKind::kNone;
  cfg.workload.read_interval = read_interval;
  cfg.workload.write_interval = 8;
  if (protocol == harness::Protocol::kAbd) {
    cfg.workload.write_interval = 20;  // ABD writes are slower; keep them serialized
  }
  return harness::run_experiment(cfg);
}

}  // namespace

int main() {
  std::cout << "=== E6: new/old inversions — regular, not atomic ===\n";
  std::cout << "reproduces: Section 1 figure (regularity vs atomicity)\n\n";

  stats::Table table({"protocol", "read gap (ticks)", "reads checked",
                      "inversions / 1k reads", "regularity violations"});

  for (const sim::Duration gap : {1u, 2u, 4u, 8u, 16u}) {
    double inversions = 0, reads = 0, violations = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto r = run_once(harness::Protocol::kSync, gap, seed);
      inversions += static_cast<double>(r.atomicity.inversion_count);
      reads += static_cast<double>(r.atomicity.reads_checked);
      violations += static_cast<double>(r.regularity.violations.size());
    }
    table.add_row({"sync (regular)", std::to_string(gap),
                   stats::Table::fmt(reads / 5.0, 0),
                   stats::Table::fmt(reads > 0 ? 1000.0 * inversions / reads : 0.0, 3),
                   stats::Table::fmt(violations, 0)});
  }

  for (const sim::Duration gap : {1u, 4u}) {
    double inversions = 0, reads = 0, violations = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto r = run_once(harness::Protocol::kAbd, gap, seed);
      inversions += static_cast<double>(r.atomicity.inversion_count);
      reads += static_cast<double>(r.atomicity.reads_checked);
      violations += static_cast<double>(r.regularity.violations.size());
    }
    table.add_row({"abd (atomic)", std::to_string(gap),
                   stats::Table::fmt(reads / 5.0, 0),
                   stats::Table::fmt(reads > 0 ? 1000.0 * inversions / reads : 0.0, 3),
                   stats::Table::fmt(violations, 0)});
  }

  std::cout << table.to_string() << "\n";
  std::cout << "Expected shape (paper): the sync register shows a clearly non-zero\n"
               "inversion rate at every read density (any read overlapping a write may\n"
               "independently return the old or new value), with zero regularity\n"
               "violations throughout; the ABD baseline shows exactly zero inversions\n"
               "(its read write-back enforces atomicity). The rate itself is noisy in\n"
               "the read gap — one early new-value read turns every subsequent\n"
               "old-value read of the same window into an inversion.\n";
  return 0;
}
