// E9 — the motivating comparison: a static-membership register (ABD [3])
// versus the paper's churn-aware protocols, under the same constant churn.
//
// ABD's fixed replica set drains as members leave; once fewer than a
// majority remain, every subsequent operation blocks forever. The dynamic
// protocols keep serving because joiners become first-class replicas.
#include "harness/sweep.h"
#include "harness/thread_pool.h"
#include "registry.h"

namespace dynreg::bench {
namespace {

using harness::ExperimentConfig;
using stats::Cell;

constexpr std::size_t kDefaultSeeds = 3;

ExperimentConfig base_config(harness::Protocol protocol) {
  ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.seed = 0;  // replica seeds become 1009, 2018, ... as in the original bench
  cfg.n = 15;
  cfg.delta = 5;
  cfg.duration = 4000;
  cfg.workload.read_interval = 15;
  cfg.workload.write_interval = 80;
  if (protocol == harness::Protocol::kEventuallySync) {
    cfg.timing = harness::Timing::kEventuallySynchronous;
    cfg.gst = 0;
  }
  return cfg;
}

ExperimentResult run(const RunOptions& opts) {
  const std::size_t seeds = opts.seeds > 0 ? opts.seeds : 1;  // resolved by run_resolved()
  const std::vector<double> churn_rates{0.0, 0.0005, 0.001, 0.002, 0.005, 0.01};
  const std::vector<harness::Protocol> protocols{harness::Protocol::kAbd,
                                                 harness::Protocol::kEventuallySync,
                                                 harness::Protocol::kSync};

  // One flattened (protocol, rate, seed) grid — no barrier between
  // protocols, so no worker idles while the slowest protocol finishes.
  const std::size_t per_protocol = churn_rates.size() * seeds;
  std::vector<harness::MetricsReport> reports(protocols.size() * per_protocol);
  harness::parallel_for(opts.jobs, reports.size(), [&](std::size_t task) {
    ExperimentConfig cfg = base_config(protocols[task / per_protocol]);
    apply_workload(opts, cfg);
    cfg.churn_rate = churn_rates[(task / seeds) % churn_rates.size()];
    if (cfg.churn_rate == 0.0) cfg.churn_kind = harness::ChurnKind::kNone;
    cfg.seed = harness::replica_seed(cfg.seed, task % seeds);
    reports[task] = harness::run_experiment(cfg);
  });

  const auto mean = [&](std::size_t protocol, std::size_t rate,
                        double (harness::MetricsReport::*fn)() const) {
    double total = 0;
    for (std::size_t s = 0; s < seeds; ++s) {
      total += (reports[protocol * per_protocol + rate * seeds + s].*fn)();
    }
    return total / static_cast<double>(seeds);
  };

  using MR = harness::MetricsReport;
  stats::DataTable table({"churn c", "abd read compl", "abd write compl", "es read compl",
                          "es write compl", "sync read compl", "sync join compl"});
  for (std::size_t i = 0; i < churn_rates.size(); ++i) {
    table.add_row({Cell::num(churn_rates[i], 4),
                   Cell::num(mean(0, i, &MR::read_completion_rate), 3),
                   Cell::num(mean(0, i, &MR::write_completion_rate), 3),
                   Cell::num(mean(1, i, &MR::read_completion_rate), 3),
                   Cell::num(mean(1, i, &MR::write_completion_rate), 3),
                   Cell::num(mean(2, i, &MR::read_completion_rate), 3),
                   Cell::num(mean(2, i, &MR::join_completion_rate), 3)});
  }

  ExperimentResult result;
  result.sections.push_back(
      {"abd_vs_dynamic", "", std::move(table),
       "Expected shape (paper): at c = 0 all three serve everything; as c grows\n"
       "ABD's completion collapses once its fixed majority drains (for n=15 and\n"
       "a 4000-tick run, around c ~ 0.001-0.002), while the dynamic protocols\n"
       "stay at ~1.0 — churn awareness is exactly the paper's point.\n"});
  return result;
}

Experiment make_experiment() {
  Experiment e;
  e.name = "abd_vs_dynamic";
  e.id = "E9";
  e.title = "static ABD vs churn-aware protocols";
  e.paper_ref = "Section 1 motivation, Section 6 related work";
  e.grid = "churn c in {0..0.01} x protocols {abd, es, sync}; n=15";
  e.default_seeds = kDefaultSeeds;
  e.run = run;
  return e;
}

const Registrar registrar{make_experiment()};

}  // namespace
}  // namespace dynreg::bench
