// E9 — the motivating comparison: a static-membership register (ABD [3])
// versus the paper's churn-aware protocols, under the same constant churn.
//
// ABD's fixed replica set drains as members leave; once fewer than a
// majority remain, every subsequent operation blocks forever. The dynamic
// protocols keep serving because joiners become first-class replicas.
#include <iostream>

#include "harness/sweep.h"
#include "stats/table.h"

using namespace dynreg;

namespace {

harness::ExperimentConfig base_config(harness::Protocol protocol) {
  harness::ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.n = 15;
  cfg.delta = 5;
  cfg.duration = 4000;
  cfg.workload.read_interval = 15;
  cfg.workload.write_interval = 80;
  if (protocol == harness::Protocol::kEventuallySync) {
    cfg.timing = harness::Timing::kEventuallySynchronous;
    cfg.gst = 0;
  }
  return cfg;
}

}  // namespace

int main() {
  std::cout << "=== E9: static ABD vs churn-aware protocols ===\n";
  std::cout << "reproduces: Section 1 motivation, Section 6 related work\n\n";

  const std::vector<double> churn_rates{0.0, 0.0005, 0.001, 0.002, 0.005, 0.01};

  stats::Table table({"churn c", "abd read compl", "abd write compl", "es read compl",
                      "es write compl", "sync read compl", "sync join compl"});

  for (const double c : churn_rates) {
    auto configure = [c](harness::ExperimentConfig& cfg) {
      cfg.churn_rate = c;
      if (c == 0.0) cfg.churn_kind = harness::ChurnKind::kNone;
    };

    auto run3 = [&configure](harness::Protocol protocol) {
      std::vector<harness::MetricsReport> runs;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        auto cfg = base_config(protocol);
        configure(cfg);
        cfg.seed = seed * 1009;
        runs.push_back(harness::run_experiment(cfg));
      }
      return runs;
    };

    const auto abd = run3(harness::Protocol::kAbd);
    const auto es = run3(harness::Protocol::kEventuallySync);
    const auto sync = run3(harness::Protocol::kSync);

    auto mean = [](const std::vector<harness::MetricsReport>& runs,
                   double (harness::MetricsReport::*fn)() const) {
      double s = 0;
      for (const auto& r : runs) s += (r.*fn)();
      return s / static_cast<double>(runs.size());
    };

    table.add_row({stats::Table::fmt(c, 4),
                   stats::Table::fmt(mean(abd, &harness::MetricsReport::read_completion_rate), 3),
                   stats::Table::fmt(mean(abd, &harness::MetricsReport::write_completion_rate), 3),
                   stats::Table::fmt(mean(es, &harness::MetricsReport::read_completion_rate), 3),
                   stats::Table::fmt(mean(es, &harness::MetricsReport::write_completion_rate), 3),
                   stats::Table::fmt(mean(sync, &harness::MetricsReport::read_completion_rate), 3),
                   stats::Table::fmt(mean(sync, &harness::MetricsReport::join_completion_rate), 3)});
  }

  std::cout << table.to_string() << "\n";
  std::cout << "Expected shape (paper): at c = 0 all three serve everything; as c grows\n"
               "ABD's completion collapses once its fixed majority drains (for n=15 and\n"
               "a 4000-tick run, around c ~ 0.001-0.002), while the dynamic protocols\n"
               "stay at ~1.0 — churn awareness is exactly the paper's point.\n";
  return 0;
}
