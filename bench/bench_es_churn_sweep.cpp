// E4 — Theorems 3-4: the eventually synchronous protocol under churn.
//
// Sweeps c in multiples of the paper's ES constraint 1/(3*delta*n) and
// reports liveness (read/write/join completion) plus the ground-truth
// check of the majority-active assumption |A(t)| > n/2 and safety.
#include <iostream>

#include "harness/sweep.h"
#include "stats/table.h"

using namespace dynreg;

int main() {
  std::cout << "=== E4: eventually-synchronous protocol churn sweep ===\n";
  std::cout << "reproduces: Theorems 3-4 (Lemmas 5-7), Section 5\n\n";

  harness::ExperimentConfig base;
  base.protocol = harness::Protocol::kEventuallySync;
  base.timing = harness::Timing::kEventuallySynchronous;
  base.gst = 0;
  base.n = 21;
  base.delta = 5;
  base.duration = 5000;
  base.workload.read_interval = 10;
  base.workload.write_interval = 60;

  const double bound = base.es_churn_threshold();  // 1/(3*delta*n)
  const std::vector<double> multiples{0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0};

  const auto points = harness::sweep(
      base, multiples,
      [bound](harness::ExperimentConfig& cfg, double m) { cfg.churn_rate = m * bound; },
      /*seeds=*/3);

  stats::Table table({"c/(1/3dn)", "churn c", "read completion", "write completion",
                      "join completion", "violation rate", "majority active",
                      "mean read latency"});
  for (const auto& p : points) {
    const double majority_ok = harness::mean_of(p.runs, [](const harness::MetricsReport& r) {
      return r.majority_active_always ? 1.0 : 0.0;
    });
    table.add_row({stats::Table::fmt(p.x, 1), stats::Table::fmt(p.x * bound, 5),
                   stats::Table::fmt(p.mean_read_completion(), 3),
                   stats::Table::fmt(p.mean_write_completion(), 3),
                   stats::Table::fmt(p.mean_join_completion(), 3),
                   stats::Table::fmt(p.mean_violation_rate(), 4),
                   stats::Table::fmt(majority_ok, 2),
                   stats::Table::fmt(p.mean_read_latency(), 1)});
  }
  std::cout << table.to_string() << "\n";
  std::cout << "Expected shape (paper): at and near the constraint 1/(3*delta*n) = "
            << stats::Table::fmt(bound, 5)
            << "\noperations all complete and safety holds; far beyond it the active\n"
               "majority eventually breaks and liveness degrades first (quorums\n"
               "starve), while completed reads remain overwhelmingly legal.\n";
  return 0;
}
