// E4 — Theorems 3-4: the eventually synchronous protocol under churn.
//
// Sweeps c in multiples of the paper's ES constraint 1/(3*delta*n) and
// reports liveness (read/write/join completion) plus the ground-truth
// check of the majority-active assumption |A(t)| > n/2 and safety.
#include "harness/sweep.h"
#include "registry.h"

namespace dynreg::bench {
namespace {

using harness::ExperimentConfig;
using stats::Cell;

constexpr std::size_t kDefaultSeeds = 3;

ExperimentResult run(const RunOptions& opts) {
  const std::size_t seeds = opts.seeds > 0 ? opts.seeds : 1;  // resolved by run_resolved()

  ExperimentConfig base;
  base.protocol = harness::Protocol::kEventuallySync;
  base.timing = harness::Timing::kEventuallySynchronous;
  base.gst = 0;
  base.n = 21;
  base.delta = 5;
  base.duration = 5000;
  base.workload.read_interval = 10;
  base.workload.write_interval = 60;
  apply_workload(opts, base);

  const double bound = base.es_churn_threshold();  // 1/(3*delta*n)
  const std::vector<double> multiples{0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0};

  const auto points = harness::parallel_sweep(
      base, multiples,
      [bound](ExperimentConfig& cfg, double m) { cfg.churn_rate = m * bound; }, seeds,
      opts.jobs);

  stats::DataTable table({"c/(1/3dn)", "churn c", "read completion", "write completion",
                          "join completion", "violation rate", "violations total",
                          "majority active", "mean read latency"});
  for (const auto& p : points) {
    const auto agg = p.aggregate();
    table.add_row({Cell::num(p.x, 1), Cell::num(p.x * bound, 5),
                   Cell::num(agg.read_completion.mean, 3),
                   Cell::num(agg.write_completion.mean, 3),
                   Cell::num(agg.join_completion.mean, 3),
                   Cell::num(agg.violation_rate.mean, 4),
                   Cell::num(static_cast<double>(agg.violations_total), 0),
                   Cell::num(agg.majority_active_fraction, 2),
                   Cell::num(agg.read_latency.mean, 1)});
  }

  ExperimentResult result;
  result.sections.push_back(
      {"es_churn_sweep", "", std::move(table),
       "Expected shape (paper): at and near the constraint 1/(3*delta*n) = " +
           stats::Table::fmt(bound, 5) +
           "\noperations all complete and safety holds; far beyond it the active\n"
           "majority eventually breaks and liveness degrades first (quorums\n"
           "starve), while completed reads remain overwhelmingly legal.\n"});
  return result;
}

Experiment make_experiment() {
  Experiment e;
  e.name = "es_churn_sweep";
  e.id = "E4";
  e.title = "eventually-synchronous protocol churn sweep";
  e.paper_ref = "Theorems 3-4 (Lemmas 5-7), Section 5";
  e.grid = "c in {0, 0.5, 1, 2, 4, 8, 16, 32} x 1/(3*delta*n); n=21, delta=5";
  e.default_seeds = kDefaultSeeds;
  e.run = run;
  e.scenario = [] {
    // Search target: exactly at the ES constraint 1/(3*delta*n).
    ExperimentConfig cfg;
    cfg.protocol = harness::Protocol::kEventuallySync;
    cfg.timing = harness::Timing::kEventuallySynchronous;
    cfg.gst = 0;
    cfg.n = 21;
    cfg.delta = 5;
    cfg.duration = 5000;
    cfg.workload.read_interval = 10;
    cfg.workload.write_interval = 60;
    cfg.churn_rate = cfg.es_churn_threshold();
    return cfg;
  };
  return e;
}

const Registrar registrar{make_experiment()};

}  // namespace
}  // namespace dynreg::bench
