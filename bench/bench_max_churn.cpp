// E10 — the conclusion's open question: what is the greatest churn rate a
// synchronous system can sustain, as a function of the delay bound delta?
//
// Setup that isolates the threshold (no pinned writer to lean on): writes
// are disabled and no process is exempt from churn, so the register's
// initial value must survive purely through join inquiry chains — the
// paper's durability argument in its purest form. A run "fails" when some
// read returns bottom (the information died). For each delta, a churn grid
// locates the empirical maximum sustainable c, compared against the
// analytic sufficient bound 1/(3*delta), under both uniform and
// adversarial departures.
#include <iostream>

#include "harness/sweep.h"
#include "stats/table.h"

using namespace dynreg;

namespace {

harness::ExperimentConfig survival_config(sim::Duration delta) {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kSync;
  cfg.n = 30;
  cfg.delta = delta;
  cfg.duration = 3000;
  cfg.workload.writes_enabled = false;  // survival mode: no writer crutch
  cfg.workload.read_interval = 5;
  return cfg;
}

/// Fraction of runs in which the value survived (no read of bottom).
double survival_fraction(const std::vector<harness::MetricsReport>& runs) {
  double ok = 0;
  for (const auto& r : runs) {
    if (r.reads_of_bottom == 0 && r.regularity.ok()) ok += 1.0;
  }
  return ok / static_cast<double>(runs.size());
}

}  // namespace

int main() {
  std::cout << "=== E10: empirical maximum sustainable churn ===\n";
  std::cout << "reproduces: Section 7 open question (greatest c as a function of delta)\n\n";

  const std::vector<double> grid{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0};

  for (const churn::LeavePolicy policy :
       {churn::LeavePolicy::kUniform, churn::LeavePolicy::kOldestActiveFirst}) {
    std::cout << "-- "
              << (policy == churn::LeavePolicy::kUniform ? "uniform departures"
                                                         : "adversarial departures")
              << " (survival mode: no writes, nobody exempt) --\n";
    stats::Table summary({"delta", "analytic 1/(3d)", "empirical max c (grid)",
                          "empirical/analytic"});
    for (const sim::Duration delta : {3u, 5u, 8u}) {
      auto cfg = survival_config(delta);
      cfg.leave_policy = policy;
      const double threshold = cfg.sync_churn_threshold();

      const auto points = harness::sweep(
          cfg, grid,
          [threshold](harness::ExperimentConfig& c, double f) {
            c.churn_rate = f * threshold;
          },
          /*seeds=*/4);

      double max_clean_fraction = 0.0;
      stats::Table detail({"c/threshold", "survival fraction", "violation rate",
                           "min |A(t,t+3d)|"});
      for (const auto& p : points) {
        const double surv = survival_fraction(p.runs);
        if (surv == 1.0) max_clean_fraction = p.x;
        detail.add_row({stats::Table::fmt(p.x, 2), stats::Table::fmt(surv, 2),
                        stats::Table::fmt(p.mean_violation_rate(), 4),
                        stats::Table::fmt(p.mean_min_active_3delta(), 1)});
      }
      std::cout << "delta = " << delta << " (threshold c = "
                << stats::Table::fmt(threshold, 4) << ")\n"
                << detail.to_string();
      summary.add_row({std::to_string(delta), stats::Table::fmt(threshold, 4),
                       stats::Table::fmt(max_clean_fraction * threshold, 4),
                       stats::Table::fmt(max_clean_fraction, 2)});
    }
    std::cout << "summary:\n" << summary.to_string() << "\n";
  }

  std::cout << "Expected shape (paper): the analytic bound 1/(3*delta) is sufficient —\n"
               "survival is certain below it for every delta. It is nearly necessary\n"
               "under adversarial departures (empirical/analytic close to 1), while\n"
               "uniform departures leave some slack: late joiners can get lucky and\n"
               "find an informed replier even past the bound. The empirical maximum\n"
               "scales like 1/delta, answering the conclusion's question in shape.\n";
  return 0;
}
