// E10 — the conclusion's open question: what is the greatest churn rate a
// synchronous system can sustain, as a function of the delay bound delta?
//
// Setup that isolates the threshold (no pinned writer to lean on): writes
// are disabled and no process is exempt from churn, so the register's
// initial value must survive purely through join inquiry chains — the
// paper's durability argument in its purest form. A run "fails" when some
// read returns bottom (the information died). For each delta, a churn grid
// locates the empirical maximum sustainable c, compared against the
// analytic sufficient bound 1/(3*delta), under both uniform and
// adversarial departures.
#include "harness/sweep.h"
#include "registry.h"

namespace dynreg::bench {
namespace {

using harness::ExperimentConfig;
using stats::Cell;

constexpr std::size_t kDefaultSeeds = 4;

ExperimentConfig survival_config(sim::Duration delta) {
  ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kSync;
  cfg.n = 30;
  cfg.delta = delta;
  cfg.duration = 3000;
  cfg.workload.writes_enabled = false;  // survival mode: no writer crutch
  cfg.workload.read_interval = 5;
  return cfg;
}

/// Fraction of runs in which the value survived (no read of bottom).
double survival_fraction(const std::vector<harness::MetricsReport>& runs) {
  double ok = 0;
  for (const auto& r : runs) {
    if (r.reads_of_bottom == 0 && r.regularity.ok()) ok += 1.0;
  }
  return ok / static_cast<double>(runs.size());
}

const char* policy_tag(churn::LeavePolicy policy) {
  return policy == churn::LeavePolicy::kUniform ? "uniform" : "adversarial";
}

ExperimentResult run(const RunOptions& opts) {
  const std::size_t seeds = opts.seeds > 0 ? opts.seeds : 1;  // resolved by run_resolved()
  const std::vector<double> grid{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0};
  const std::vector<sim::Duration> deltas{3, 5, 8};

  ExperimentResult result;

  for (const churn::LeavePolicy policy :
       {churn::LeavePolicy::kUniform, churn::LeavePolicy::kOldestActiveFirst}) {
    stats::DataTable summary({"delta", "analytic 1/(3d)", "empirical max c (grid)",
                              "empirical/analytic"});
    for (const sim::Duration delta : deltas) {
      ExperimentConfig cfg = survival_config(delta);
      cfg.leave_policy = policy;
      apply_workload(opts, cfg);
      const double threshold = cfg.sync_churn_threshold();

      const auto points = harness::parallel_sweep(
          cfg, grid,
          [threshold](ExperimentConfig& c, double f) { c.churn_rate = f * threshold; },
          seeds, opts.jobs);

      double max_clean_fraction = 0.0;
      stats::DataTable detail({"c/threshold", "survival fraction", "violation rate",
                               "min |A(t,t+3d)|"});
      for (const auto& p : points) {
        const double surv = survival_fraction(p.runs);
        if (surv == 1.0) max_clean_fraction = p.x;
        detail.add_row({Cell::num(p.x, 2), Cell::num(surv, 2),
                        Cell::num(p.mean_violation_rate(), 4),
                        Cell::num(p.mean_min_active_3delta(), 1)});
      }
      result.sections.push_back(
          {std::string(policy_tag(policy)) + "_delta" + std::to_string(delta),
           std::string(policy_tag(policy)) + " departures, delta = " +
               std::to_string(delta) + " (threshold c = " +
               stats::Table::fmt(threshold, 4) + ")",
           std::move(detail), ""});
      summary.add_row({Cell::num(static_cast<double>(delta), 0),
                       Cell::num(threshold, 4),
                       Cell::num(max_clean_fraction * threshold, 4),
                       Cell::num(max_clean_fraction, 2)});
    }
    const bool last = policy == churn::LeavePolicy::kOldestActiveFirst;
    result.sections.push_back(
        {std::string(policy_tag(policy)) + "_summary",
         std::string(policy_tag(policy)) + " departures: summary", std::move(summary),
         last ? "Expected shape (paper): the analytic bound 1/(3*delta) is sufficient —\n"
                "survival is certain below it for every delta. It is nearly necessary\n"
                "under adversarial departures (empirical/analytic close to 1), while\n"
                "uniform departures leave some slack: late joiners can get lucky and\n"
                "find an informed replier even past the bound. The empirical maximum\n"
                "scales like 1/delta, answering the conclusion's question in shape.\n"
              : ""});
  }

  return result;
}

Experiment make_experiment() {
  Experiment e;
  e.name = "max_churn";
  e.id = "E10";
  e.title = "empirical maximum sustainable churn";
  e.paper_ref = "Section 7 open question (greatest c as a function of delta)";
  e.grid = "policies {uniform, adversarial} x delta {3,5,8} x c/threshold {0.25..3}";
  e.default_seeds = kDefaultSeeds;
  e.run = run;
  return e;
}

const Registrar registrar{make_experiment()};

}  // namespace
}  // namespace dynreg::bench
