#include "emit.h"

#include <ostream>

#include "stats/json_writer.h"

namespace dynreg::bench {

void print_console(const Experiment& e, const ExperimentResult& r, std::ostream& os) {
  os << "=== " << e.id << ": " << e.title << " ===\n";
  os << "reproduces: " << e.paper_ref << "\n\n";
  for (const auto& section : r.sections) {
    if (!section.title.empty()) os << "-- " << section.title << " --\n";
    os << section.table.to_text() << "\n";
    if (!section.note.empty()) os << section.note << "\n";
  }
}

std::string to_json(const Experiment& e, std::size_t seeds, const ExperimentResult& r) {
  stats::JsonWriter w;
  w.begin_object();
  w.key("experiment");
  w.value(e.name);
  w.key("id");
  w.value(e.id);
  w.key("title");
  w.value(e.title);
  w.key("paper_ref");
  w.value(e.paper_ref);
  w.key("seeds");
  w.value(static_cast<std::uint64_t>(e.uses_seeds ? seeds : 1));
  w.key("sections");
  w.begin_array();
  for (const auto& section : r.sections) {
    w.begin_object();
    w.key("name");
    w.value(section.name);
    if (!section.title.empty()) {
      w.key("title");
      w.value(section.title);
    }
    section.table.append_json(w);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string doc = w.str();
  doc += '\n';
  return doc;
}

std::string to_csv(const ExperimentResult& r) {
  std::string out;
  for (const auto& section : r.sections) {
    out += "# section: " + section.name + "\n";
    out += section.table.to_csv();
  }
  return out;
}

}  // namespace dynreg::bench
