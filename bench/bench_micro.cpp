// M1 — substrate microbenchmarks (google-benchmark): event-queue
// throughput, network dispatch, consistency checking, and a full
// experiment run as an end-to-end figure of merit.
//
// This binary measures wall-clock performance, not paper claims, so it
// lives outside the ExperimentRegistry / dynreg_exp CLI (its driver is
// google-benchmark's own main). See docs/EXPERIMENTS.md for the mapping of
// the registered experiments to the paper.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "consistency/regularity_checker.h"
#include "harness/experiment.h"
#include "net/network.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"

namespace {

using namespace dynreg;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < batch; ++i) {
      q.push(static_cast<sim::Time>(i * 7 % 1000), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

// Random times spread far beyond the wheel window, so pushes constantly land
// in the far (heap) tier — the queue's worst case, kept honest here.
void BM_EventQueuePushPopFarSpread(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;  // cheap deterministic scramble
    for (std::size_t i = 0; i < batch; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      q.push(static_cast<sim::Time>(x % (64 * sim::EventQueue::kWindow)), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueuePushPopFarSpread)->Arg(10000);

void BM_SimulationEventChain(benchmark::State& state) {
  const auto events = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim(1);
    std::uint64_t remaining = events;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.schedule_after(1, tick);
    };
    sim.schedule_at(0, tick);
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimulationEventChain)->Arg(10000);

struct NoopPayload final : net::Payload {
  std::string_view type_name() const override { return "noop"; }
  // Cached like the real protocol messages, so the benchmark measures the
  // dispatch path, not the registry's default per-call interning.
  net::PayloadTypeId type_id() const override {
    static const net::PayloadTypeId id = net::PayloadTypeRegistry::intern("noop");
    return id;
  }
};

void BM_NetworkBroadcast(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim(1);
    net::Network network(sim, std::make_unique<net::FixedDelay>(1));
    for (std::size_t i = 0; i < n; ++i) {
      network.attach(i, [](sim::ProcessId, const net::Payload&) {});
    }
    for (int b = 0; b < 10; ++b) network.broadcast(0, net::make_payload<NoopPayload>());
    sim.run();
    benchmark::DoNotOptimize(network.stats().delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 10);
}
BENCHMARK(BM_NetworkBroadcast)->Arg(100)->Arg(1000)->Arg(10000);

void BM_RegularityChecker(benchmark::State& state) {
  const auto reads = static_cast<std::size_t>(state.range(0));
  consistency::History history(0);
  sim::Time t = 0;
  for (std::size_t w = 1; w <= 50; ++w) {
    const auto id = history.begin_write(0, t, static_cast<Value>(w));
    history.complete_write(id, t + 5);
    t += 10;
  }
  for (std::size_t i = 0; i < reads; ++i) {
    const sim::Time at = (i * 9) % t;
    const auto id = history.begin_read(1, at);
    // Return the latest value completed before `at` (valid history).
    const auto wi = at / 10;
    history.complete_read(id, at, wi == 0 ? 0 : static_cast<Value>(wi));
  }
  for (auto _ : state) {
    const auto report = consistency::RegularityChecker{}.check(history);
    benchmark::DoNotOptimize(report.reads_checked);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(reads));
}
BENCHMARK(BM_RegularityChecker)->Arg(1000)->Arg(10000);

void BM_FullSyncExperiment(benchmark::State& state) {
  for (auto _ : state) {
    harness::ExperimentConfig cfg;
    cfg.protocol = harness::Protocol::kSync;
    cfg.n = 20;
    cfg.delta = 5;
    cfg.duration = 1000;
    cfg.churn_rate = 0.01;
    cfg.workload.read_interval = 5;
    cfg.workload.write_interval = 40;
    const auto r = harness::run_experiment(cfg);
    benchmark::DoNotOptimize(r.reads_completed);
  }
}
BENCHMARK(BM_FullSyncExperiment)->Unit(benchmark::kMillisecond);

// One replica of the registered es_churn_sweep experiment (E4) at the
// paper's churn constraint — the end-to-end unit the seed-parallel sweep
// engine multiplies across seeds and grid points.
void BM_EsChurnSweepReplica(benchmark::State& state) {
  for (auto _ : state) {
    harness::ExperimentConfig cfg;
    cfg.protocol = harness::Protocol::kEventuallySync;
    cfg.timing = harness::Timing::kEventuallySynchronous;
    cfg.gst = 0;
    cfg.n = 21;
    cfg.delta = 5;
    cfg.duration = 5000;
    cfg.workload.read_interval = 10;
    cfg.workload.write_interval = 60;
    cfg.churn_rate = cfg.es_churn_threshold();
    const auto r = harness::run_experiment(cfg);
    benchmark::DoNotOptimize(r.reads_completed);
  }
}
BENCHMARK(BM_EsChurnSweepReplica)->Unit(benchmark::kMillisecond);

void BM_FullEsExperiment(benchmark::State& state) {
  for (auto _ : state) {
    harness::ExperimentConfig cfg;
    cfg.protocol = harness::Protocol::kEventuallySync;
    cfg.timing = harness::Timing::kEventuallySynchronous;
    cfg.gst = 0;
    cfg.n = 15;
    cfg.delta = 5;
    cfg.duration = 1000;
    cfg.churn_rate = cfg.es_churn_threshold();
    cfg.workload.read_interval = 10;
    cfg.workload.write_interval = 60;
    const auto r = harness::run_experiment(cfg);
    benchmark::DoNotOptimize(r.reads_completed);
  }
}
BENCHMARK(BM_FullEsExperiment)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
