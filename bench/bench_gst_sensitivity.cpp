// E8 — sensitivity of the ES protocol to the stabilization time and to the
// severity of pre-GST asynchrony.
//
// The protocol never knows GST; operations simply block until quorums get
// through. Three sweeps:
//   1. GST position (no churn): operations issued before GST block and then
//      complete shortly after stabilization — liveness recovers, safety
//      never wavers.
//   2. Pre-GST adversary severity (no churn): harsher pre-GST delays raise
//      latency, not violations.
//   3. GST x churn interplay: with churn on, every tick of asynchrony
//      eats at the active majority (joins cannot complete before GST), so
//      the majority-active assumption |A(t)| > n/2 only survives while the
//      asynchronous period is short relative to 1/c — an emergent
//      constraint the paper's Section 5 assumptions encode.
#include <iostream>

#include "harness/sweep.h"
#include "stats/table.h"

using namespace dynreg;

namespace {

harness::ExperimentConfig base_config() {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kEventuallySync;
  cfg.timing = harness::Timing::kEventuallySynchronous;
  cfg.n = 15;
  cfg.delta = 5;
  cfg.duration = 6000;
  cfg.pre_gst_max = 300;
  cfg.churn_kind = harness::ChurnKind::kNone;
  cfg.workload.read_interval = 15;
  cfg.workload.write_interval = 80;
  return cfg;
}

}  // namespace

int main() {
  std::cout << "=== E8: GST sensitivity of the ES protocol ===\n";
  std::cout << "reproduces: Section 5.1 model (eventual timely delivery)\n\n";

  {
    const auto points = harness::sweep(
        base_config(), {0.0, 500.0, 1000.0, 2000.0, 4000.0},
        [](harness::ExperimentConfig& cfg, double gst) {
          cfg.gst = static_cast<sim::Time>(gst);
        },
        /*seeds=*/3);
    stats::Table table({"GST", "read completion", "write completion",
                        "mean read latency", "p99-ish max latency", "violation rate"});
    for (const auto& p : points) {
      const double max_lat = harness::mean_of(p.runs, [](const harness::MetricsReport& r) {
        return static_cast<double>(r.read_latency_p99);
      });
      table.add_row({stats::Table::fmt(p.x, 0),
                     stats::Table::fmt(p.mean_read_completion(), 3),
                     stats::Table::fmt(p.mean_write_completion(), 3),
                     stats::Table::fmt(p.mean_read_latency(), 1),
                     stats::Table::fmt(max_lat, 0),
                     stats::Table::fmt(p.mean_violation_rate(), 4)});
    }
    std::cout << "-- sweep 1: stabilization time (no churn; pre-GST max delay 300) --\n"
              << table.to_string() << "\n";
  }

  {
    auto cfg = base_config();
    cfg.gst = 2000;
    const auto points = harness::sweep(
        cfg, {10.0, 50.0, 150.0, 300.0, 600.0},
        [](harness::ExperimentConfig& c, double m) {
          c.pre_gst_max = static_cast<sim::Duration>(m);
        },
        /*seeds=*/3);
    stats::Table table({"pre-GST max delay", "read completion", "write completion",
                        "mean read latency", "violation rate"});
    for (const auto& p : points) {
      table.add_row({stats::Table::fmt(p.x, 0),
                     stats::Table::fmt(p.mean_read_completion(), 3),
                     stats::Table::fmt(p.mean_write_completion(), 3),
                     stats::Table::fmt(p.mean_read_latency(), 1),
                     stats::Table::fmt(p.mean_violation_rate(), 4)});
    }
    std::cout << "-- sweep 2: pre-GST adversary severity (no churn; GST = 2000) --\n"
              << table.to_string() << "\n";
  }

  {
    auto cfg = base_config();
    cfg.churn_kind = harness::ChurnKind::kConstant;
    cfg.churn_rate = cfg.es_churn_threshold();
    const auto points = harness::sweep(
        cfg, {0.0, 50.0, 100.0, 250.0, 500.0, 1000.0},
        [](harness::ExperimentConfig& c, double gst) {
          c.gst = static_cast<sim::Time>(gst);
        },
        /*seeds=*/3);
    stats::Table table({"GST", "majority survived", "joins done / begun", "read completion",
                        "violation rate"});
    for (const auto& p : points) {
      const double majority = harness::mean_of(p.runs, [](const harness::MetricsReport& r) {
        return r.majority_active_always ? 1.0 : 0.0;
      });
      // Raw fraction (not the excused-join completion rate): under heavy
      // asynchrony most joiners are churned out before activating, which
      // the excused rate would hide.
      const double raw_joins = harness::mean_of(p.runs, [](const harness::MetricsReport& r) {
        return r.joins_started == 0 ? 1.0
                                    : static_cast<double>(r.joins_completed) /
                                          static_cast<double>(r.joins_started);
      });
      table.add_row({stats::Table::fmt(p.x, 0), stats::Table::fmt(majority, 2),
                     stats::Table::fmt(raw_joins, 3),
                     stats::Table::fmt(p.mean_read_completion(), 3),
                     stats::Table::fmt(p.mean_violation_rate(), 4)});
    }
    std::cout << "-- sweep 3: GST x churn interplay (churn at the ES bound) --\n"
              << table.to_string() << "\n";
  }

  std::cout << "Expected shape (paper): safety never depends on GST (violation rate 0\n"
               "everywhere — Theorem 4 needs no synchrony); without churn, liveness\n"
               "recovers right after stabilization at any GST, with latency absorbing\n"
               "the wait. With churn on, joins cannot complete while the network is\n"
               "asynchronous, so a long pre-GST period drains |A(t)| below n/2 and the\n"
               "system cannot recover even after GST — the majority-active assumption\n"
               "of Section 5.2 implicitly bounds churn DURING the asynchronous period.\n";
  return 0;
}
