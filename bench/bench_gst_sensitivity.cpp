// E8 — sensitivity of the ES protocol to the stabilization time and to the
// severity of pre-GST asynchrony.
//
// The protocol never knows GST; operations simply block until quorums get
// through. Three sweeps:
//   1. GST position (no churn): operations issued before GST block and then
//      complete shortly after stabilization — liveness recovers, safety
//      never wavers.
//   2. Pre-GST adversary severity (no churn): harsher pre-GST delays raise
//      latency, not violations.
//   3. GST x churn interplay: with churn on, every tick of asynchrony
//      eats at the active majority (joins cannot complete before GST), so
//      the majority-active assumption |A(t)| > n/2 only survives while the
//      asynchronous period is short relative to 1/c — an emergent
//      constraint the paper's Section 5 assumptions encode.
#include "harness/sweep.h"
#include "registry.h"

namespace dynreg::bench {
namespace {

using harness::ExperimentConfig;
using stats::Cell;

constexpr std::size_t kDefaultSeeds = 3;

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kEventuallySync;
  cfg.timing = harness::Timing::kEventuallySynchronous;
  cfg.n = 15;
  cfg.delta = 5;
  cfg.duration = 6000;
  cfg.pre_gst_max = 300;
  cfg.churn_kind = harness::ChurnKind::kNone;
  cfg.workload.read_interval = 15;
  cfg.workload.write_interval = 80;
  return cfg;
}

ExperimentResult run(const RunOptions& opts) {
  const std::size_t seeds = opts.seeds > 0 ? opts.seeds : 1;  // resolved by run_resolved()
  ExperimentResult result;

  {
    auto base = base_config();
    apply_workload(opts, base);
    const auto points = harness::parallel_sweep(
        base, {0.0, 500.0, 1000.0, 2000.0, 4000.0},
        [](ExperimentConfig& cfg, double gst) { cfg.gst = static_cast<sim::Time>(gst); },
        seeds, opts.jobs);
    stats::DataTable table({"GST", "read completion", "write completion",
                            "mean read latency", "p99-ish max latency", "violation rate"});
    for (const auto& p : points) {
      const auto agg = p.aggregate();
      table.add_row({Cell::num(p.x, 0), Cell::num(agg.read_completion.mean, 3),
                     Cell::num(agg.write_completion.mean, 3),
                     Cell::num(agg.read_latency.mean, 1),
                     Cell::num(agg.read_latency_p99.mean, 0),
                     Cell::num(agg.violation_rate.mean, 4)});
    }
    result.sections.push_back(
        {"gst_position", "sweep 1: stabilization time (no churn; pre-GST max delay 300)",
         std::move(table), ""});
  }

  {
    auto cfg = base_config();
    apply_workload(opts, cfg);
    cfg.gst = 2000;
    const auto points = harness::parallel_sweep(
        cfg, {10.0, 50.0, 150.0, 300.0, 600.0},
        [](ExperimentConfig& c, double m) {
          c.pre_gst_max = static_cast<sim::Duration>(m);
        },
        seeds, opts.jobs);
    stats::DataTable table({"pre-GST max delay", "read completion", "write completion",
                            "mean read latency", "violation rate"});
    for (const auto& p : points) {
      const auto agg = p.aggregate();
      table.add_row({Cell::num(p.x, 0), Cell::num(agg.read_completion.mean, 3),
                     Cell::num(agg.write_completion.mean, 3),
                     Cell::num(agg.read_latency.mean, 1),
                     Cell::num(agg.violation_rate.mean, 4)});
    }
    result.sections.push_back(
        {"pre_gst_severity", "sweep 2: pre-GST adversary severity (no churn; GST = 2000)",
         std::move(table), ""});
  }

  {
    auto cfg = base_config();
    apply_workload(opts, cfg);
    cfg.churn_kind = harness::ChurnKind::kConstant;
    cfg.churn_rate = cfg.es_churn_threshold();
    const auto points = harness::parallel_sweep(
        cfg, {0.0, 50.0, 100.0, 250.0, 500.0, 1000.0},
        [](ExperimentConfig& c, double gst) { c.gst = static_cast<sim::Time>(gst); },
        seeds, opts.jobs);
    stats::DataTable table({"GST", "majority survived", "joins done / begun",
                            "read completion", "violation rate"});
    for (const auto& p : points) {
      const auto agg = p.aggregate();
      // Raw fraction (not the excused-join completion rate): under heavy
      // asynchrony most joiners are churned out before activating, which
      // the excused rate would hide.
      const double raw_joins = harness::mean_of(p.runs, [](const harness::MetricsReport& r) {
        return r.joins_started == 0 ? 1.0
                                    : static_cast<double>(r.joins_completed) /
                                          static_cast<double>(r.joins_started);
      });
      table.add_row({Cell::num(p.x, 0), Cell::num(agg.majority_active_fraction, 2),
                     Cell::num(raw_joins, 3), Cell::num(agg.read_completion.mean, 3),
                     Cell::num(agg.violation_rate.mean, 4)});
    }
    result.sections.push_back(
        {"gst_churn_interplay", "sweep 3: GST x churn interplay (churn at the ES bound)",
         std::move(table),
         "Expected shape (paper): safety never depends on GST (violation rate 0\n"
         "everywhere — Theorem 4 needs no synchrony); without churn, liveness\n"
         "recovers right after stabilization at any GST, with latency absorbing\n"
         "the wait. With churn on, joins cannot complete while the network is\n"
         "asynchronous, so a long pre-GST period drains |A(t)| below n/2 and the\n"
         "system cannot recover even after GST — the majority-active assumption\n"
         "of Section 5.2 implicitly bounds churn DURING the asynchronous period.\n"});
  }

  return result;
}

Experiment make_experiment() {
  Experiment e;
  e.name = "gst_sensitivity";
  e.id = "E8";
  e.title = "GST sensitivity of the ES protocol";
  e.paper_ref = "Section 5.1 model (eventual timely delivery)";
  e.grid = "GST in {0..4000}; pre-GST max in {10..600}; GST x churn at ES bound";
  e.default_seeds = kDefaultSeeds;
  e.run = run;
  return e;
}

const Registrar registrar{make_experiment()};

}  // namespace
}  // namespace dynreg::bench
