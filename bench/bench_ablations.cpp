// E11 — ablations of the design choices DESIGN.md calls out:
//
//  (a) Regular vs atomic ES reads: what the read write-back buys (zero
//      new/old inversions) and what it costs (an extra quorum round trip).
//  (b) Footnote 4's optimized join: delta + delta' instead of 2*delta for
//      the inquiry phase.
//  (c) The reliable-channel assumption: what breaks first under omission
//      faults, per protocol.
#include <iostream>

#include "bench_util.h"
#include "harness/sweep.h"
#include "stats/table.h"

using namespace dynreg;

namespace {

/// Adversary forcing the textbook new/old inversion on the regular ES
/// variant (see tests/dynreg/es_atomic_test.cpp for the construction).
std::unique_ptr<net::DelayModel> inversion_adversary() {
  return std::make_unique<net::AsyncAdversarialDelay>(
      200, [](sim::Time, sim::ProcessId from, sim::ProcessId to,
              const net::Payload& p) -> std::optional<sim::Duration> {
        const std::string_view type = p.type_name();
        if (type == "es.write" && to >= 2) return 100;
        if (type == "es.reply" && (from == 0 || from == 1) && to == 2) return 100;
        return 2;
      });
}

/// Runs the scripted scenario once; returns true if the two sequential
/// reads came back inverted (r1 newer than r2).
bool scripted_inversion_occurs(bool atomic_reads, std::uint64_t seed) {
  EsConfig cfg;
  cfg.n = 5;
  cfg.atomic_reads = atomic_reads;
  bench::ScriptedCluster cluster(
      seed, 5, 0.0, churn::LeavePolicy::kUniform, inversion_adversary(),
      [cfg](sim::ProcessId id, node::Context& ctx, bool initial) {
        return std::make_unique<EsRegisterNode>(id, ctx, cfg, initial);
      });
  cluster.node(0)->write(1, [] {});
  bench::pump_until(cluster.sim, [&] { return cluster.node(1)->local_value() == 1; }, 50);
  const auto r1 = cluster.read_blocking(1, 400);
  const auto r2 = cluster.read_blocking(2, 400);
  return r1.has_value() && r2.has_value() && *r1 > *r2;
}

void ablate_atomic_reads() {
  stats::Table table({"ES variant", "read latency", "write latency",
                      "adversarial inversions / 8", "violation rate"});
  for (const bool atomic : {false, true}) {
    double lat_r = 0, lat_w = 0, viol = 0;
    const int seeds = 5;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      harness::ExperimentConfig cfg;
      cfg.protocol = harness::Protocol::kEventuallySync;
      cfg.timing = harness::Timing::kEventuallySynchronous;
      cfg.gst = 0;
      cfg.es_atomic_reads = atomic;
      cfg.n = 9;
      cfg.delta = 8;
      cfg.duration = 4000;
      cfg.seed = seed;
      cfg.churn_kind = harness::ChurnKind::kNone;
      cfg.workload.read_interval = 2;
      cfg.workload.write_interval = 20;
      const auto r = harness::run_experiment(cfg);
      lat_r += r.read_latency_mean;
      lat_w += r.write_latency_mean;
      viol += r.regularity.violation_rate();
    }
    int inversions = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      if (scripted_inversion_occurs(atomic, seed)) ++inversions;
    }
    table.add_row({atomic ? "atomic (write-back)" : "regular (paper)",
                   stats::Table::fmt(lat_r / seeds, 2), stats::Table::fmt(lat_w / seeds, 2),
                   std::to_string(inversions), stats::Table::fmt(viol / seeds, 4)});
  }
  std::cout << "-- (a) regular vs atomic ES reads --\n" << table.to_string() << "\n";
}

void ablate_fast_join() {
  stats::Table table({"join variant", "delta", "delta'", "mean join latency",
                      "violation rate"});
  struct Case {
    std::optional<sim::Duration> dpp;
  };
  for (const Case c : {Case{std::nullopt}, Case{2}, Case{1}}) {
    double lat = 0, viol = 0;
    const int seeds = 3;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      harness::ExperimentConfig cfg;
      cfg.protocol = harness::Protocol::kSync;
      cfg.n = 30;
      cfg.delta = 10;
      cfg.duration = 3000;
      cfg.seed = seed;
      cfg.churn_rate = 0.01;
      cfg.sync_delta_pp = c.dpp;
      cfg.workload.read_interval = 5;
      cfg.workload.write_interval = 40;
      const auto r = harness::run_experiment(cfg);
      lat += r.join_latency_mean;
      viol += r.regularity.violation_rate();
    }
    table.add_row({c.dpp ? "fast (footnote 4)" : "standard (2*delta)", "10",
                   c.dpp ? std::to_string(*c.dpp) : "-", stats::Table::fmt(lat / seeds, 2),
                   stats::Table::fmt(viol / seeds, 4)});
  }
  std::cout << "-- (b) footnote 4 optimized join --\n" << table.to_string() << "\n";
}

void ablate_reliability() {
  stats::Table table({"loss rate", "sync violation rate", "sync+refresh violation rate",
                      "es read completion", "es violation rate"});
  for (const double loss : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    double sync_viol = 0, refresh_viol = 0, es_compl = 0, es_viol = 0;
    const int seeds = 3;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      harness::ExperimentConfig sync;
      sync.protocol = harness::Protocol::kSync;
      sync.n = 20;
      sync.delta = 5;
      sync.duration = 2000;
      sync.seed = seed;
      sync.churn_rate = 0.005;
      sync.loss_rate = loss;
      sync.workload.read_interval = 5;
      sync.workload.write_interval = 40;
      const auto rs = harness::run_experiment(sync);
      sync_viol += rs.regularity.violation_rate();

      // Anti-entropy extension: active processes re-broadcast their copy
      // every 10 ticks, healing replicas that missed a lost WRITE.
      harness::ExperimentConfig healed = sync;
      healed.sync_refresh_interval = 10;
      const auto rh = harness::run_experiment(healed);
      refresh_viol += rh.regularity.violation_rate();

      harness::ExperimentConfig es = sync;
      es.protocol = harness::Protocol::kEventuallySync;
      es.timing = harness::Timing::kEventuallySynchronous;
      es.gst = 0;
      es.churn_rate = 0.001;
      es.workload.read_interval = 20;
      es.workload.write_interval = 100;
      const auto re = harness::run_experiment(es);
      es_compl += re.read_completion_rate();
      es_viol += re.regularity.violation_rate();
    }
    table.add_row({stats::Table::fmt(loss, 2),
                   stats::Table::fmt(sync_viol / seeds, 4),
                   stats::Table::fmt(refresh_viol / seeds, 4),
                   stats::Table::fmt(es_compl / seeds, 3),
                   stats::Table::fmt(es_viol / seeds, 4)});
  }
  std::cout << "-- (c) reliable-channel assumption (omission faults) --\n"
            << table.to_string() << "\n";
}

}  // namespace

int main() {
  std::cout << "=== E11: design-choice ablations ===\n";
  std::cout << "reproduces: Section 6 extensions; footnote 4; Section 3.2 assumptions\n\n";
  ablate_atomic_reads();
  ablate_fast_join();
  ablate_reliability();
  std::cout
      << "Expected shapes: (a) the write-back removes every inversion and roughly\n"
         "doubles read latency while write latency is unchanged; (b) join latency\n"
         "drops from ~delta+2*delta towards delta+delta+delta' with no safety\n"
         "cost; (c) the time-based sync protocol degrades to stale reads as soon\n"
         "as channels lose messages (its broadcast is unacknowledged — the paper's\n"
         "reliability assumption is load-bearing); periodic anti-entropy refresh\n"
         "recovers most of that safety for a bandwidth price, while the\n"
         "quorum-based ES protocol keeps safety at every loss rate by\n"
         "construction and only loses liveness.\n";
  return 0;
}
