// E11 — ablations of the design choices the protocols embody:
//
//  (a) Regular vs atomic ES reads: what the read write-back buys (zero
//      new/old inversions) and what it costs (an extra quorum round trip).
//  (b) Footnote 4's optimized join: delta + delta' instead of 2*delta for
//      the inquiry phase.
//  (c) The reliable-channel assumption: what breaks first under omission
//      faults, per protocol.
#include "bench_util.h"
#include "dynreg/messages.h"
#include "harness/sweep.h"
#include "harness/thread_pool.h"
#include "registry.h"

namespace dynreg::bench {
namespace {

using harness::ExperimentConfig;
using harness::MetricsReport;
using stats::Cell;

constexpr std::size_t kDefaultSeeds = 3;
constexpr std::size_t kInversionTrials = 8;

/// Adversary forcing the textbook new/old inversion on the regular ES
/// variant.
std::unique_ptr<net::DelayModel> inversion_adversary() {
  return std::make_unique<net::AsyncAdversarialDelay>(
      200, [](sim::Time, sim::ProcessId from, sim::ProcessId to,
              const net::Payload& p) -> std::optional<sim::Duration> {
        const net::PayloadTypeId type = p.type_id();
        if (type == msg::EsWrite::kTypeId && to >= 2) return 100;
        if (type == msg::EsReply::kTypeId && (from == 0 || from == 1) && to == 2) return 100;
        return 2;
      });
}

/// Runs the scripted scenario once; returns true if the two sequential
/// reads came back inverted (r1 newer than r2).
bool scripted_inversion_occurs(bool atomic_reads, std::uint64_t seed) {
  EsConfig cfg;
  cfg.n = 5;
  cfg.atomic_reads = atomic_reads;
  ScriptedCluster cluster(
      seed, 5, 0.0, churn::LeavePolicy::kUniform, inversion_adversary(),
      [cfg](sim::ProcessId id, node::Context& ctx, bool initial) {
        return std::make_unique<EsRegisterNode>(id, ctx, cfg, initial);
      });
  cluster.node(0)->write(OpContext{}, 1, [](OpOutcome) {});
  pump_until(cluster.sim, [&] { return cluster.node(1)->local_value() == 1; }, 50);
  const auto r1 = cluster.read_blocking(1, 400);
  const auto r2 = cluster.read_blocking(2, 400);
  return r1.has_value() && r2.has_value() && *r1 > *r2;
}

ResultSection ablate_atomic_reads(const RunOptions& opts, std::size_t seeds,
                                  std::size_t jobs) {
  // Harness runs (latency/safety) and scripted inversion trials, flattened
  // into one task grid: variant-major, replica slots pre-assigned.
  std::vector<MetricsReport> reports(2 * seeds);
  std::vector<int> inversions(2 * kInversionTrials, 0);
  harness::parallel_for(jobs, reports.size() + inversions.size(), [&](std::size_t task) {
    if (task < reports.size()) {
      const bool atomic = task >= seeds;
      const std::size_t s = task % seeds;
      ExperimentConfig cfg;
      cfg.protocol = harness::Protocol::kEventuallySync;
      cfg.timing = harness::Timing::kEventuallySynchronous;
      cfg.gst = 0;
      cfg.es_atomic_reads = atomic;
      cfg.n = 9;
      cfg.delta = 8;
      cfg.duration = 4000;
      cfg.churn_kind = harness::ChurnKind::kNone;
      cfg.workload.read_interval = 2;
      cfg.workload.write_interval = 20;
      apply_workload(opts, cfg);
      cfg.seed = harness::replica_seed(0, s);
      reports[task] = harness::run_experiment(cfg);
    } else {
      const std::size_t t = task - reports.size();
      const bool atomic = t >= kInversionTrials;
      const std::uint64_t seed = t % kInversionTrials + 1;
      inversions[t] = scripted_inversion_occurs(atomic, seed) ? 1 : 0;
    }
  });

  stats::DataTable table({"ES variant", "read latency", "write latency",
                          "adversarial inversions / " + std::to_string(kInversionTrials),
                          "violation rate"});
  for (const bool atomic : {false, true}) {
    double lat_r = 0, lat_w = 0, viol = 0;
    for (std::size_t s = 0; s < seeds; ++s) {
      const auto& r = reports[(atomic ? seeds : 0) + s];
      lat_r += r.read_latency_mean;
      lat_w += r.write_latency_mean;
      viol += r.regularity.violation_rate();
    }
    int inverted = 0;
    for (std::size_t t = 0; t < kInversionTrials; ++t) {
      inverted += inversions[(atomic ? kInversionTrials : 0) + t];
    }
    const double n = static_cast<double>(seeds);
    table.add_row({Cell::str(atomic ? "atomic (write-back)" : "regular (paper)"),
                   Cell::num(lat_r / n, 2), Cell::num(lat_w / n, 2),
                   Cell::num(inverted, 0), Cell::num(viol / n, 4)});
  }
  return {"atomic_reads", "(a) regular vs atomic ES reads", std::move(table), ""};
}

ResultSection ablate_fast_join(const RunOptions& opts, std::size_t seeds,
                               std::size_t jobs) {
  const std::vector<std::optional<sim::Duration>> cases{std::nullopt, 2, 1};

  std::vector<MetricsReport> reports(cases.size() * seeds);
  harness::parallel_for(jobs, reports.size(), [&](std::size_t task) {
    ExperimentConfig cfg;
    cfg.protocol = harness::Protocol::kSync;
    cfg.n = 30;
    cfg.delta = 10;
    cfg.duration = 3000;
    cfg.churn_rate = 0.01;
    cfg.sync_delta_pp = cases[task / seeds];
    cfg.workload.read_interval = 5;
    cfg.workload.write_interval = 40;
    apply_workload(opts, cfg);
    cfg.seed = harness::replica_seed(0, task % seeds);
    reports[task] = harness::run_experiment(cfg);
  });

  stats::DataTable table({"join variant", "delta", "delta'", "mean join latency",
                          "violation rate"});
  for (std::size_t c = 0; c < cases.size(); ++c) {
    double lat = 0, viol = 0;
    for (std::size_t s = 0; s < seeds; ++s) {
      const auto& r = reports[c * seeds + s];
      lat += r.join_latency_mean;
      viol += r.regularity.violation_rate();
    }
    const double n = static_cast<double>(seeds);
    table.add_row({Cell::str(cases[c] ? "fast (footnote 4)" : "standard (2*delta)"),
                   Cell::str("10"),
                   Cell::str(cases[c] ? std::to_string(*cases[c]) : "-"),
                   Cell::num(lat / n, 2), Cell::num(viol / n, 4)});
  }
  return {"fast_join", "(b) footnote 4 optimized join", std::move(table), ""};
}

ResultSection ablate_reliability(const RunOptions& opts, std::size_t seeds,
                                 std::size_t jobs) {
  const std::vector<double> losses{0.0, 0.05, 0.1, 0.2, 0.4};
  constexpr std::size_t kVariants = 3;  // sync, sync+refresh, es

  auto make_config = [](double loss, std::size_t variant) {
    ExperimentConfig cfg;
    cfg.protocol = harness::Protocol::kSync;
    cfg.n = 20;
    cfg.delta = 5;
    cfg.duration = 2000;
    cfg.churn_rate = 0.005;
    cfg.loss_rate = loss;
    cfg.workload.read_interval = 5;
    cfg.workload.write_interval = 40;
    if (variant == 1) {
      // Anti-entropy extension: active processes re-broadcast their copy
      // every 10 ticks, healing replicas that missed a lost WRITE.
      cfg.sync_refresh_interval = 10;
    } else if (variant == 2) {
      cfg.protocol = harness::Protocol::kEventuallySync;
      cfg.timing = harness::Timing::kEventuallySynchronous;
      cfg.gst = 0;
      cfg.churn_rate = 0.001;
      cfg.workload.read_interval = 20;
      cfg.workload.write_interval = 100;
    }
    return cfg;
  };

  std::vector<MetricsReport> reports(losses.size() * kVariants * seeds);
  harness::parallel_for(jobs, reports.size(), [&](std::size_t task) {
    const std::size_t loss_i = task / (kVariants * seeds);
    const std::size_t variant = (task / seeds) % kVariants;
    ExperimentConfig cfg = make_config(losses[loss_i], variant);
    apply_workload(opts, cfg);
    cfg.seed = harness::replica_seed(0, task % seeds);
    reports[task] = harness::run_experiment(cfg);
  });

  auto mean_over = [&](std::size_t loss_i, std::size_t variant,
                       const std::function<double(const MetricsReport&)>& fn) {
    double total = 0;
    for (std::size_t s = 0; s < seeds; ++s) {
      total += fn(reports[(loss_i * kVariants + variant) * seeds + s]);
    }
    return total / static_cast<double>(seeds);
  };

  stats::DataTable table({"loss rate", "sync violation rate",
                          "sync+refresh violation rate", "es read completion",
                          "es violation rate"});
  for (std::size_t i = 0; i < losses.size(); ++i) {
    const auto viol = [](const MetricsReport& r) { return r.regularity.violation_rate(); };
    table.add_row(
        {Cell::num(losses[i], 2), Cell::num(mean_over(i, 0, viol), 4),
         Cell::num(mean_over(i, 1, viol), 4),
         Cell::num(mean_over(i, 2,
                             [](const MetricsReport& r) { return r.read_completion_rate(); }),
                   3),
         Cell::num(mean_over(i, 2, viol), 4)});
  }
  return {"reliability", "(c) reliable-channel assumption (omission faults)",
          std::move(table),
          "Expected shapes: (a) the write-back removes every inversion and roughly\n"
          "doubles read latency while write latency is unchanged; (b) join latency\n"
          "drops from ~delta+2*delta towards delta+delta+delta' with no safety\n"
          "cost; (c) the time-based sync protocol degrades to stale reads as soon\n"
          "as channels lose messages (its broadcast is unacknowledged — the paper's\n"
          "reliability assumption is load-bearing); periodic anti-entropy refresh\n"
          "recovers most of that safety for a bandwidth price, while the\n"
          "quorum-based ES protocol keeps safety at every loss rate by\n"
          "construction and only loses liveness.\n"};
}

ExperimentResult run(const RunOptions& opts) {
  const std::size_t seeds = opts.seeds > 0 ? opts.seeds : 1;  // resolved by run_resolved()
  ExperimentResult result;
  result.sections.push_back(ablate_atomic_reads(opts, seeds, opts.jobs));
  result.sections.push_back(ablate_fast_join(opts, seeds, opts.jobs));
  result.sections.push_back(ablate_reliability(opts, seeds, opts.jobs));
  return result;
}

Experiment make_experiment() {
  Experiment e;
  e.name = "ablations";
  e.id = "E11";
  e.title = "design-choice ablations";
  e.paper_ref = "Section 6 extensions; footnote 4; Section 3.2 assumptions";
  e.grid = "(a) {regular, atomic} reads; (b) delta' {-, 2, 1}; (c) loss {0..0.4}";
  e.default_seeds = kDefaultSeeds;
  e.run = run;
  return e;
}

const Registrar registrar{make_experiment()};

}  // namespace
}  // namespace dynreg::bench
