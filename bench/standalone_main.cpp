// Shared main() for the per-experiment compatibility binaries
// (bench_sync_churn_sweep, bench_fig3_join_wait, ...). Each target compiles
// this file with -DDYNREG_EXPERIMENT="<name>" and runs that one registry
// entry with default options and console-table output — the same format
// the pre-registry standalone benches printed (exact numbers differ where
// seed derivation was unified on replica_seed() and tables gained the
// non-averaged violation columns). `dynreg_exp` is the full CLI.
#include "registry.h"

#ifndef DYNREG_EXPERIMENT
#error "define DYNREG_EXPERIMENT to the registered experiment name"
#endif

int main() { return dynreg::bench::run_standalone(DYNREG_EXPERIMENT); }
