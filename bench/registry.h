// The experiment registry: one place where every paper-reproduction
// experiment declares its name, the claim it reproduces, its parameter
// grid, and a run function. The dynreg_exp CLI and the per-experiment
// standalone binaries are both thin drivers over this table.
//
// Run functions receive RunOptions (seed count, worker count) and return
// structured sections (stats::DataTable) instead of printing — the driver
// chooses the output format (console table, JSON, CSV). Determinism
// contract: for a fixed seed count the returned result is byte-identically
// serializable regardless of `jobs`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "harness/workload_config.h"
#include "stats/data_table.h"

namespace dynreg::harness {
struct ExperimentConfig;
}  // namespace dynreg::harness

namespace dynreg::bench {

/// CLI workload overrides (--workload/--clients/--think/--burst): applied by
/// every run_experiment-based experiment to its base config(s) via
/// apply_workload(). Scripted deterministic constructions (E1, E2, E5) have
/// no workload driver and ignore them.
struct WorkloadOverrides {
  std::optional<workload::Kind> kind;
  std::optional<std::size_t> clients;
  std::optional<sim::Duration> think;
  std::optional<sim::Duration> burst_on;
  std::optional<sim::Duration> burst_off;
  /// Per-op client policy (--op-deadline / --retry-backoff): a deadline in
  /// ticks, the retry budget, and the backoff between attempts (fixed or
  /// exponential with deterministic jitter — see client::RetryPolicy).
  std::optional<sim::Duration> op_deadline;
  std::optional<std::uint32_t> retry_attempts;
  std::optional<sim::Duration> retry_backoff;
  std::optional<bool> retry_exponential;
  /// Sharded-keyspace knobs (--shards / --zipf / --read-frac): shard count
  /// (engages the src/shard/ pipeline when > 0), zipfian skew exponent, and
  /// the keyed engine's read fraction. Ignored by unsharded experiments that
  /// never read cfg.shard_count.
  std::optional<std::size_t> shards;
  std::optional<double> zipf;
  std::optional<double> read_frac;
};

/// CLI-controlled execution knobs handed to every experiment run function.
struct RunOptions {
  /// Seeds (replicas) per sweep point; 0 means the experiment's default.
  /// Drivers resolve the default via run_resolved() before invoking run, so
  /// run functions see a nonzero value (they fall back to 1 if called
  /// directly with 0). Scripted scenario experiments (deterministic
  /// constructions, no seed dimension) ignore this.
  std::size_t seeds = 0;
  /// Max replicas in flight at once; 0 means one per hardware thread.
  std::size_t jobs = 1;
  /// Ceiling for system-size (n) grids in the scaling experiments (E15,
  /// E16): the default grids stop at an affordable size; passing a larger
  /// --max-n extends them to it (e.g. --max-n=100000 adds a 1e5 point).
  /// 0 means each experiment's default grid. Other experiments ignore it.
  std::size_t max_n = 0;
  WorkloadOverrides workload;
};

/// One table of results plus the paper-shape commentary attached to it.
struct ResultSection {
  /// Stable snake_case identifier (used for CSV file names and JSON keys).
  std::string name;
  /// Optional human heading printed above the table ("" for the main section).
  std::string title;
  stats::DataTable table;
  /// "Expected shape (paper): ..." commentary; console output only.
  std::string note;
};

struct ExperimentResult {
  std::vector<ResultSection> sections;
};

/// A registered experiment: metadata for `dynreg_exp list` plus the run fn.
struct Experiment {
  std::string name;       ///< CLI name, e.g. "sync_churn_sweep".
  std::string id;         ///< Paper-experiment tag, e.g. "E3".
  std::string title;      ///< One-line description.
  std::string paper_ref;  ///< The claim reproduced, e.g. "Theorem 1, Section 3".
  std::string grid;       ///< Human summary of the parameter grid swept.
  std::size_t default_seeds = 3;
  /// False for scripted deterministic constructions whose run function
  /// ignores RunOptions::seeds (E1, E2, E5); emitted metadata then reports
  /// 1 replica instead of echoing a seed count that had no effect.
  bool uses_seeds = true;
  std::function<ExperimentResult(const RunOptions&)> run;
  /// Optional: one representative harness config for this experiment, used
  /// by the trace tooling (`dynreg_exp record|replay|search|minimize`) as
  /// the schedule-perturbation target. Unset for experiments with no single
  /// representative run (scripted constructions, micro-benchmarks).
  std::function<harness::ExperimentConfig()> scenario;
};

/// Process-wide experiment table. Experiments self-register at static
/// initialization time via Registrar; the bench sources are compiled into
/// an OBJECT library so no registration is dropped by the linker.
class ExperimentRegistry {
 public:
  static ExperimentRegistry& instance();

  void add(Experiment e);

  /// Looks an experiment up by CLI name; nullptr when unknown.
  const Experiment* find(const std::string& name) const;

  /// All experiments, ordered by id then name (E1, E2, ... — the paper's
  /// presentation order).
  std::vector<const Experiment*> list() const;

 private:
  std::map<std::string, Experiment> by_name_;
};

/// `static Registrar r{exp};` at namespace scope registers `exp`.
struct Registrar {
  explicit Registrar(Experiment e);
};

/// The seed count a run will actually use (opts.seeds, defaulted).
std::size_t effective_seeds(const Experiment& e, const RunOptions& opts);

/// Applies opts.workload onto cfg.workload (fields left unset keep the
/// experiment's own defaults). Every run_experiment-based run function calls
/// this on each base config it builds.
void apply_workload(const RunOptions& opts, harness::ExperimentConfig& cfg);

/// Invokes e.run with opts.seeds resolved via effective_seeds — the one
/// place the default is applied, so run functions just read opts.seeds and
/// the "seeds" metadata the emitters report always matches what ran.
ExperimentResult run_resolved(const Experiment& e, RunOptions opts);

/// Runs `name` with default options and console-table output; the whole
/// body of every bench_* compatibility binary. Returns a process exit code.
int run_standalone(const std::string& name);

}  // namespace dynreg::bench
