// E18 — liveness envelope: client retry policy vs. partition length.
//
// Runs the ES protocol under symmetric link partitions of increasing length
// with an operation deadline armed, and compares three client retry
// policies: no retries, fixed-interval retries, and exponential backoff
// with deterministic jitter. The question is operational, not safety: how
// much of the offered load completes once the cut heals, and at what retry
// cost, while the register itself stays regular throughout (partitions are
// omission faults — inside the paper's model).
#include "harness/sweep.h"
#include "registry.h"

namespace dynreg::bench {
namespace {

using harness::ExperimentConfig;
using stats::Cell;

constexpr std::size_t kDefaultSeeds = 3;

struct Policy {
  const char* label;
  std::uint32_t attempts;
  sim::Duration backoff;
  bool exponential;
};

ExperimentResult run(const RunOptions& opts) {
  const std::size_t seeds = opts.seeds > 0 ? opts.seeds : 1;  // resolved by run_resolved()

  ExperimentConfig base;
  base.protocol = harness::Protocol::kEventuallySync;
  base.timing = harness::Timing::kEventuallySynchronous;
  base.gst = 0;
  base.n = 15;
  base.delta = 5;
  base.duration = 2500;
  base.workload.read_interval = 10;
  base.workload.write_interval = 60;
  base.workload.op_deadline = 40;  // 8*delta: generous for a quorum round trip
  apply_workload(opts, base);

  const std::vector<Policy> policies{
      {"none", 1, 0, false},
      {"fixed", 6, 10, false},
      {"exponential", 6, 10, true},
  };
  // x = partition length; 0 keeps the fault plan disabled (baseline row).
  const std::vector<double> durations{0, 100, 300};

  stats::DataTable table({"retry policy", "partition len", "partitions", "msgs cut",
                          "ops timed out", "retries", "read completion",
                          "read p99", "violations total"});
  for (const Policy& pol : policies) {
    ExperimentConfig cfg = base;
    cfg.workload.retry_max_attempts = pol.attempts;
    cfg.workload.retry_backoff = pol.backoff;
    cfg.workload.retry_exponential = pol.exponential;
    const auto points = harness::parallel_sweep(
        cfg, durations,
        [](ExperimentConfig& c, double len) {
          if (len <= 0) return;
          c.fault.partition.rate = 0.004;
          c.fault.partition.duration = static_cast<sim::Duration>(len);
          c.fault.partition.fraction = 0.3;
          c.fault.partition.asymmetric = false;  // symmetric cut: both ways
        },
        seeds, opts.jobs);
    for (const auto& p : points) {
      const auto agg = p.aggregate();
      table.add_row(
          {Cell::str(pol.label), Cell::num(p.x, 0),
           Cell::num(harness::mean_of(p.runs,
                                      [](const harness::MetricsReport& r) {
                                        return r.faults_partitions;
                                      }),
                     1),
           Cell::num(harness::mean_of(p.runs,
                                      [](const harness::MetricsReport& r) {
                                        return r.msgs_dropped_partition;
                                      }),
                     0),
           Cell::num(agg.ops_timed_out.mean, 1), Cell::num(agg.op_retries.mean, 1),
           Cell::num(agg.read_completion.mean, 3),
           Cell::num(agg.read_latency_p99.mean, 1),
           Cell::num(static_cast<double>(agg.violations_total), 0)});
    }
  }

  ExperimentResult result;
  result.sections.push_back(
      {"fault_liveness", "", std::move(table),
       "Expected shape: with no retries, every operation caught mid-partition\n"
       "times out and completion drops with partition length. Retries recover\n"
       "most of the loss once the cut heals; exponential backoff reaches the\n"
       "same completion as fixed-interval with fewer retransmitted attempts\n"
       "on long cuts (attempts stop landing inside the dead window).\n"
       "Violations stay at zero throughout — partitions are omission faults,\n"
       "inside the paper's model, so this is a liveness envelope only.\n"});
  return result;
}

Experiment make_experiment() {
  Experiment e;
  e.name = "fault_liveness";
  e.id = "E18";
  e.title = "liveness under partitions vs. client retry policy";
  e.paper_ref = "liveness discussion of Sections 3/5 (operations under omission)";
  e.grid =
      "retry policy in {none, fixed, exponential} x partition length in "
      "{0, 100, 300}; ES, n=15, delta=5, deadline=8*delta";
  e.default_seeds = kDefaultSeeds;
  e.run = run;
  e.scenario = [] {
    // Search/record target: exponential-backoff clients against 300-tick
    // symmetric cuts.
    ExperimentConfig cfg;
    cfg.protocol = harness::Protocol::kEventuallySync;
    cfg.timing = harness::Timing::kEventuallySynchronous;
    cfg.gst = 0;
    cfg.n = 15;
    cfg.delta = 5;
    cfg.duration = 2500;
    cfg.workload.read_interval = 10;
    cfg.workload.write_interval = 60;
    cfg.workload.op_deadline = 40;
    cfg.workload.retry_max_attempts = 6;
    cfg.workload.retry_backoff = 10;
    cfg.workload.retry_exponential = true;
    cfg.fault.partition.rate = 0.004;
    cfg.fault.partition.duration = 300;
    cfg.fault.partition.fraction = 0.3;
    return cfg;
  };
  return e;
}

const Registrar registrar{make_experiment()};

}  // namespace
}  // namespace dynreg::bench
