// E3 — Theorem 1: the synchronous protocol implements a regular register
// for c < 1/(3*delta); past the threshold the guarantee collapses.
//
// Sweeps c across the threshold and reports safety (violation rate over
// completed reads, reads of bottom) and liveness (join completion rate,
// join latency). Departures are adversarial (oldest active first), the
// paper's worst case.
#include <iostream>

#include "harness/sweep.h"
#include "stats/table.h"

using namespace dynreg;

int main() {
  std::cout << "=== E3: synchronous protocol churn sweep ===\n";
  std::cout << "reproduces: Theorem 1 (Lemmas 1-4), Section 3\n\n";

  harness::ExperimentConfig base;
  base.protocol = harness::Protocol::kSync;
  base.n = 40;
  base.delta = 5;
  base.duration = 3000;
  base.leave_policy = churn::LeavePolicy::kOldestActiveFirst;
  base.workload.read_interval = 3;
  base.workload.write_interval = 30;

  const double threshold = base.sync_churn_threshold();
  const std::vector<double> fractions{0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.5, 2.0, 3.0};

  const auto points = harness::sweep(
      base, fractions,
      [threshold](harness::ExperimentConfig& cfg, double f) {
        cfg.churn_rate = f * threshold;
      },
      /*seeds=*/3);

  stats::Table table({"c/threshold", "churn c", "violation rate", "reads of bottom",
                      "join completion", "mean join latency", "min |A(t,t+3d)|"});
  for (const auto& p : points) {
    const double bottoms = harness::mean_of(p.runs, [](const harness::MetricsReport& r) {
      return static_cast<double>(r.reads_of_bottom);
    });
    table.add_row({stats::Table::fmt(p.x, 2), stats::Table::fmt(p.x * threshold, 4),
                   stats::Table::fmt(p.mean_violation_rate(), 4),
                   stats::Table::fmt(bottoms, 1),
                   stats::Table::fmt(p.mean_join_completion(), 3),
                   stats::Table::fmt(p.mean_join_latency(), 1),
                   stats::Table::fmt(p.mean_min_active_3delta(), 1)});
  }
  std::cout << table.to_string() << "\n";
  std::cout << "Expected shape (paper): zero violations while c < 1/(3*delta) = "
            << stats::Table::fmt(threshold, 4)
            << ";\nabove the threshold the 3-delta active window empties out, joins\n"
               "start completing with bottom, and stale/bottom reads appear. The\n"
               "pinned writer (paper: the writer stays in the system) is itself an\n"
               "always-active replier, which keeps the system robust well past the\n"
               "threshold — the bound is sufficient, not necessary.\n\n";

  // -- Information survival: the threshold isolated. -----------------------
  // No writes and no churn exemption: the initial value must survive purely
  // through join inquiry chains. Below the threshold every 3-delta window
  // keeps an informed active process and the value persists; above it the
  // chain can break and joins complete with bottom, poisoning all later
  // joins. Reads of bottom measure the information loss directly.
  harness::ExperimentConfig surv = base;
  surv.workload.writes_enabled = false;
  surv.workload.read_interval = 5;

  const auto surv_points = harness::sweep(
      surv, fractions,
      [threshold](harness::ExperimentConfig& cfg, double f) {
        cfg.churn_rate = f * threshold;
      },
      /*seeds=*/3);

  stats::Table surv_table({"c/threshold", "reads of bottom", "violation rate",
                           "min |A(t,t+3d)|", "value survived"});
  for (const auto& p : surv_points) {
    const double bottoms = harness::mean_of(p.runs, [](const harness::MetricsReport& r) {
      return static_cast<double>(r.reads_of_bottom);
    });
    const double survived = harness::mean_of(p.runs, [](const harness::MetricsReport& r) {
      return r.reads_of_bottom == 0 ? 1.0 : 0.0;
    });
    surv_table.add_row({stats::Table::fmt(p.x, 2), stats::Table::fmt(bottoms, 1),
                        stats::Table::fmt(p.mean_violation_rate(), 4),
                        stats::Table::fmt(p.mean_min_active_3delta(), 1),
                        stats::Table::fmt(survived, 2)});
  }
  std::cout << "-- information survival (no writes, no churn exemption) --\n"
            << surv_table.to_string() << "\n";
  std::cout << "Expected shape (paper): survival is certain below the threshold\n"
               "(Lemma 2 keeps an informed active replier in every window) and\n"
               "collapses as c crosses 1/(3*delta) under adversarial departures.\n";
  return 0;
}
