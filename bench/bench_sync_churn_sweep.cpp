// E3 — Theorem 1: the synchronous protocol implements a regular register
// for c < 1/(3*delta); past the threshold the guarantee collapses.
//
// Sweeps c across the threshold and reports safety (violation rate over
// completed reads — plus the non-averaged totals, see harness/aggregate.h —
// and reads of bottom) and liveness (join completion rate, join latency).
// Departures are adversarial (oldest active first), the paper's worst case.
// A second section isolates information survival: no writes and no churn
// exemption, so the initial value must survive purely through join inquiry
// chains.
#include "harness/sweep.h"
#include "registry.h"

namespace dynreg::bench {
namespace {

using harness::ExperimentConfig;
using stats::Cell;

constexpr std::size_t kDefaultSeeds = 3;

ExperimentConfig base_config() {
  ExperimentConfig base;
  base.protocol = harness::Protocol::kSync;
  base.n = 40;
  base.delta = 5;
  base.duration = 3000;
  base.leave_policy = churn::LeavePolicy::kOldestActiveFirst;
  base.workload.read_interval = 3;
  base.workload.write_interval = 30;
  return base;
}

const std::vector<double> kFractions{0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.5, 2.0, 3.0};

ExperimentResult run(const RunOptions& opts) {
  const std::size_t seeds = opts.seeds > 0 ? opts.seeds : 1;  // resolved by run_resolved()
  ExperimentConfig base = base_config();
  apply_workload(opts, base);
  const double threshold = base.sync_churn_threshold();
  const auto set_churn = [threshold](ExperimentConfig& cfg, double f) {
    cfg.churn_rate = f * threshold;
  };

  ExperimentResult result;

  {
    const auto points = harness::parallel_sweep(base, kFractions, set_churn, seeds, opts.jobs);
    stats::DataTable table(
        {"c/threshold", "churn c", "violation rate", "violations total",
         "violations max/seed", "reads of bottom", "join completion",
         "mean join latency", "min |A(t,t+3d)|"});
    for (const auto& p : points) {
      const auto agg = p.aggregate();
      table.add_row({Cell::num(p.x, 2), Cell::num(p.x * threshold, 4),
                     Cell::num(agg.violation_rate.mean, 4),
                     Cell::num(static_cast<double>(agg.violations_total), 0),
                     Cell::num(static_cast<double>(agg.violations_max_seed), 0),
                     Cell::num(agg.reads_of_bottom.mean, 1),
                     Cell::num(agg.join_completion.mean, 3),
                     Cell::num(agg.join_latency.mean, 1),
                     Cell::num(agg.min_active_3delta.mean, 1)});
    }
    result.sections.push_back(
        {"churn_sweep", "", std::move(table),
         "Expected shape (paper): zero violations while c < 1/(3*delta) = " +
             stats::Table::fmt(threshold, 4) +
             ";\nabove the threshold the 3-delta active window empties out, joins\n"
             "start completing with bottom, and stale/bottom reads appear. The\n"
             "pinned writer (paper: the writer stays in the system) is itself an\n"
             "always-active replier, which keeps the system robust well past the\n"
             "threshold — the bound is sufficient, not necessary.\n"});
  }

  {
    ExperimentConfig surv = base;
    surv.workload.writes_enabled = false;
    surv.workload.read_interval = 5;
    const auto points = harness::parallel_sweep(surv, kFractions, set_churn, seeds, opts.jobs);
    stats::DataTable table({"c/threshold", "reads of bottom", "violation rate",
                            "violations total", "min |A(t,t+3d)|", "value survived"});
    for (const auto& p : points) {
      const auto agg = p.aggregate();
      const double survived = harness::mean_of(p.runs, [](const harness::MetricsReport& r) {
        return r.reads_of_bottom == 0 ? 1.0 : 0.0;
      });
      table.add_row({Cell::num(p.x, 2), Cell::num(agg.reads_of_bottom.mean, 1),
                     Cell::num(agg.violation_rate.mean, 4),
                     Cell::num(static_cast<double>(agg.violations_total), 0),
                     Cell::num(agg.min_active_3delta.mean, 1), Cell::num(survived, 2)});
    }
    result.sections.push_back(
        {"information_survival", "information survival (no writes, no churn exemption)",
         std::move(table),
         "Expected shape (paper): survival is certain below the threshold\n"
         "(Lemma 2 keeps an informed active replier in every window) and\n"
         "collapses as c crosses 1/(3*delta) under adversarial departures.\n"});
  }

  return result;
}

Experiment make_experiment() {
  Experiment e;
  e.name = "sync_churn_sweep";
  e.id = "E3";
  e.title = "synchronous protocol churn sweep";
  e.paper_ref = "Theorem 1 (Lemmas 1-4), Section 3";
  e.grid = "c/threshold in {0..3} x 2 workloads (standard, survival)";
  e.default_seeds = kDefaultSeeds;
  e.run = run;
  e.scenario = [] {
    // Search target: just below the Theorem 1 threshold, where the base
    // schedule is safe but adversarial reordering has the most room.
    ExperimentConfig cfg = base_config();
    cfg.churn_rate = 0.8 * cfg.sync_churn_threshold();
    return cfg;
  };
  return e;
}

const Registrar registrar{make_experiment()};

}  // namespace
}  // namespace dynreg::bench
