// E1 — Figure 3: why the synchronous join must wait delta before inquiring.
//
// Scenario (as in the paper's figure): three processes hold value 0; the
// writer broadcasts WRITE(1) at tau = 5; a new process begins its join
// shortly after tau and therefore has no delivery guarantee for that
// broadcast. The adversary makes WRITE messages take the full delta while
// inquiry traffic is fast.
//
// Output: one row per joiner offset and protocol variant, reporting the
// value the join adopted and whether a post-write read is stale (a safety
// violation). The no-wait variant (Figure 3a) violates for every offset
// inside the write window; the paper's protocol (Figure 3b) never does.
// This is a scripted deterministic construction: --seeds has no effect.
#include "bench_util.h"
#include "dynreg/messages.h"
#include "harness/thread_pool.h"
#include "registry.h"

namespace dynreg::bench {
namespace {

using stats::Cell;

constexpr sim::Duration kDelta = 10;

struct Outcome {
  Value joined_value = kBottom;
  Value read_after_write = kBottom;
  bool write_completed = false;
};

Outcome run_scenario(bool wait_before_inquiry, sim::Duration joiner_offset) {
  SyncConfig cfg;
  cfg.delta = kDelta;
  cfg.wait_before_inquiry = wait_before_inquiry;

  // WRITE broadcasts take the full delta (ph/pk still hold the old value
  // when the no-wait joiner inquires); the writer's own REPLY takes delta on
  // both hops and so lands exactly after the joiner's 2*delta collection
  // window closes — the legal worst case the figure depicts.
  auto delays = std::make_unique<net::AsyncAdversarialDelay>(
      kDelta, [](sim::Time, sim::ProcessId from, sim::ProcessId to,
                 const net::Payload& p) -> std::optional<sim::Duration> {
        const net::PayloadTypeId type = p.type_id();
        if (type == msg::SyncWrite::kTypeId) return kDelta;
        if (type == msg::SyncInquiry::kTypeId && to == 0) return kDelta;
        if (type == msg::SyncReply::kTypeId && from == 0) return kDelta;
        return 1;
      });
  auto cluster = ScriptedCluster::sync(
      3, 3, 0.0, cfg, std::move(delays), churn::LeavePolicy::kUniform,
      replay::scenario_key("E1/fig3_join_wait",
                           {wait_before_inquiry ? 1u : 0u, joiner_offset}));

  Outcome out;
  cluster->sim.run_until(5);
  cluster->node(0)->write(OpContext{}, 1, [&out](OpOutcome o) {
    if (o == OpOutcome::kOk) out.write_completed = true;
  });

  cluster->sim.run_until(5 + joiner_offset);
  const sim::ProcessId joiner = cluster->system->spawn();

  cluster->sim.run_until(200);
  out.joined_value = cluster->node(joiner)->local_value();
  out.read_after_write = cluster->read_blocking(joiner).value_or(kBottom);
  return out;
}

std::string value_str(Value v) { return v == kBottom ? "BOT" : std::to_string(v); }

ExperimentResult run(const RunOptions& opts) {
  struct Case {
    bool wait;
    sim::Duration offset;
  };
  std::vector<Case> cases;
  for (const bool wait : {false, true}) {
    for (const sim::Duration offset : {1u, 3u, 5u, 8u}) cases.push_back({wait, offset});
  }

  std::vector<Outcome> outcomes(cases.size());
  harness::parallel_for(opts.jobs, cases.size(), [&](std::size_t i) {
    outcomes[i] = run_scenario(cases[i].wait, cases[i].offset);
  });

  stats::DataTable table({"variant", "join offset after write", "value adopted by join",
                          "read after write done", "safety violation"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Outcome& out = outcomes[i];
    // The write completed long before the final read, so any value other
    // than 1 is a violation of the regular-register safety property.
    const bool violation = out.read_after_write != 1;
    table.add_row({Cell::str(cases[i].wait ? "with wait (Fig 3b)" : "no wait (Fig 3a)"),
                   Cell::str("+" + std::to_string(cases[i].offset)),
                   Cell::str(value_str(out.joined_value)),
                   Cell::str(value_str(out.read_after_write)),
                   Cell::str(violation ? "VIOLATION" : "ok")});
  }

  ExperimentResult result;
  result.sections.push_back(
      {"join_wait", "", std::move(table),
       "Expected shape (paper): every no-wait row inside the write window is a\n"
       "violation (the join adopts the superseded value 0); every with-wait row\n"
       "is clean because the initial delta wait lets WRITE(1) land at the\n"
       "repliers first.\n"});
  return result;
}

Experiment make_experiment() {
  Experiment e;
  e.name = "fig3_join_wait";
  e.id = "E1";
  e.title = "join wait(delta) necessity";
  e.paper_ref = "Figure 3(a)/(b), Section 3.3";
  e.grid = "scripted scenario: {no wait, wait} x joiner offset {1,3,5,8}; seeds ignored";
  e.default_seeds = 1;
  e.uses_seeds = false;
  e.run = run;
  return e;
}

const Registrar registrar{make_experiment()};

}  // namespace
}  // namespace dynreg::bench
