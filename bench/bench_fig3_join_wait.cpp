// E1 — Figure 3: why the synchronous join must wait delta before inquiring.
//
// Scenario (as in the paper's figure): three processes hold value 0; the
// writer broadcasts WRITE(1) at tau = 5; a new process begins its join
// shortly after tau and therefore has no delivery guarantee for that
// broadcast. The adversary makes WRITE messages take the full delta while
// inquiry traffic is fast.
//
// Output: one row per joiner offset and protocol variant, reporting the
// value the join adopted and whether a post-write read is stale (a safety
// violation). The no-wait variant (Figure 3a) violates for every offset
// inside the write window; the paper's protocol (Figure 3b) never does.
#include "bench_util.h"

using namespace dynreg;

namespace {

constexpr sim::Duration kDelta = 10;

struct Outcome {
  Value joined_value = kBottom;
  Value read_after_write = kBottom;
  bool write_completed = false;
};

Outcome run_scenario(bool wait_before_inquiry, sim::Duration joiner_offset) {
  SyncConfig cfg;
  cfg.delta = kDelta;
  cfg.wait_before_inquiry = wait_before_inquiry;

  // WRITE broadcasts take the full delta (ph/pk still hold the old value
  // when the no-wait joiner inquires); the writer's own REPLY takes delta on
  // both hops and so lands exactly after the joiner's 2*delta collection
  // window closes — the legal worst case the figure depicts.
  auto delays = std::make_unique<net::AsyncAdversarialDelay>(
      kDelta, [](sim::Time, sim::ProcessId from, sim::ProcessId to,
                 const net::Payload& p) -> std::optional<sim::Duration> {
        const std::string_view type = p.type_name();
        if (type == "sync.write") return kDelta;
        if (type == "sync.inquiry" && to == 0) return kDelta;
        if (type == "sync.reply" && from == 0) return kDelta;
        return 1;
      });
  auto cluster = bench::ScriptedCluster::sync(3, 3, 0.0, cfg, std::move(delays));

  Outcome out;
  cluster->sim.run_until(5);
  cluster->node(0)->write(1, [&out] { out.write_completed = true; });

  cluster->sim.run_until(5 + joiner_offset);
  const sim::ProcessId joiner = cluster->system->spawn();

  cluster->sim.run_until(200);
  out.joined_value = cluster->node(joiner)->local_value();
  out.read_after_write = cluster->read_blocking(joiner).value_or(kBottom);
  return out;
}

std::string value_str(Value v) { return v == kBottom ? "BOT" : std::to_string(v); }

}  // namespace

int main() {
  bench::print_header("E1: join wait(delta) necessity",
                      "Figure 3(a)/(b), Section 3.3");

  stats::Table table({"variant", "join offset after write", "value adopted by join",
                      "read after write done", "safety violation"});
  for (const bool wait : {false, true}) {
    for (const sim::Duration offset : {1u, 3u, 5u, 8u}) {
      const Outcome out = run_scenario(wait, offset);
      // The write completed long before the final read, so any value other
      // than 1 is a violation of the regular-register safety property.
      const bool violation = out.read_after_write != 1;
      table.add_row({wait ? "with wait (Fig 3b)" : "no wait (Fig 3a)",
                     "+" + std::to_string(offset), value_str(out.joined_value),
                     value_str(out.read_after_write), violation ? "VIOLATION" : "ok"});
    }
  }
  std::cout << table.to_string() << "\n";
  std::cout << "Expected shape (paper): every no-wait row inside the write window is a\n"
               "violation (the join adopts the superseded value 0); every with-wait row\n"
               "is clean because the initial delta wait lets WRITE(1) land at the\n"
               "repliers first.\n";
  return 0;
}
