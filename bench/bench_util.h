// Shared helpers for the scripted experiments: a minimal cluster deployment
// (mirroring the protocol wiring of the experiment harness) that the bench
// drives step by step, plus a predicate-pump.
#pragma once

#include <memory>
#include <optional>
#include <utility>

#include "churn/system.h"
#include "dynreg/es_register.h"
#include "dynreg/sync_register.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "replay/recorder.h"
#include "replay/replayer.h"
#include "replay/session.h"
#include "sim/simulation.h"
#include "stats/table.h"

namespace dynreg::bench {

/// Steps the simulation until pred() holds or the deadline passes.
template <typename Pred>
bool pump_until(sim::Simulation& sim, Pred pred, sim::Time deadline) {
  while (!pred()) {
    const auto next = sim.next_event_time();
    if (!next || *next > deadline) break;
    sim.step();
  }
  return pred();
}

/// A scripted protocol deployment (no workload driver; the bench drives).
///
/// Record/replay: pass a nonzero `replay_key` (replay::scenario_key of the
/// scenario's name and distinguishing parameters) and the cluster enrolls
/// in the global replay session exactly like a run_experiment run — its
/// net/churn decisions are captured in record mode and re-fed in replay
/// mode, keyed by (replay_key, seed). Bench-driven spawn()/leave() calls
/// and operations re-occur naturally when the bench code runs again, so
/// only the substrate's decisions are in the trace. With replay_key 0 (the
/// default) the cluster ignores the session.
class ScriptedCluster {
 public:
  ScriptedCluster(std::uint64_t seed, std::size_t n, double churn_rate,
                  churn::LeavePolicy policy, std::unique_ptr<net::DelayModel> delays,
                  churn::System::NodeFactory factory, std::uint64_t replay_key = 0)
      : replay_key_(replay_key),
        sim(seed),
        net(sim, prepare_delays(std::move(delays), seed, churn_rate)) {
    churn::SystemConfig cfg;
    cfg.initial_size = n;
    cfg.leave_policy = policy;
    std::unique_ptr<churn::ChurnModel> model;
    if (replayer_) {
      model = replayer_->make_churn_model();
    } else if (churn_rate > 0.0) {
      model = std::make_unique<churn::ConstantChurn>(churn_rate);
    } else {
      model = std::make_unique<churn::NoChurn>();
    }
    system = std::make_unique<churn::System>(sim, net, cfg, std::move(model),
                                             std::move(factory));
    if (recorder_) system->set_churn_observer(recorder_.get());
    system->bootstrap();
  }

  ~ScriptedCluster() {
    replay::Session& session = replay::Session::instance();
    if (rec_trace_) {
      rec_trace_->recorded_hash = sim.trace_hash();
      session.commit(std::move(*rec_trace_));
    } else if (replay_trace_) {
      const std::uint64_t h = sim.trace_hash();
      session.note_replay(replay_trace_->recorded_hash == 0 || h == 0 ||
                          h == replay_trace_->recorded_hash);
    }
  }

  ScriptedCluster(const ScriptedCluster&) = delete;
  ScriptedCluster& operator=(const ScriptedCluster&) = delete;

  static std::unique_ptr<ScriptedCluster> sync(std::uint64_t seed, std::size_t n,
                                               double churn_rate, const SyncConfig& cfg,
                                               std::unique_ptr<net::DelayModel> delays,
                                               churn::LeavePolicy policy =
                                                   churn::LeavePolicy::kUniform,
                                               std::uint64_t replay_key = 0) {
    return std::make_unique<ScriptedCluster>(
        seed, n, churn_rate, policy, std::move(delays),
        [cfg](sim::ProcessId id, node::Context& ctx, bool initial) {
          return std::make_unique<SyncRegisterNode>(id, ctx, cfg, initial);
        },
        replay_key);
  }

  static std::unique_ptr<ScriptedCluster> es(std::uint64_t seed, std::size_t n,
                                             double churn_rate,
                                             std::unique_ptr<net::DelayModel> delays,
                                             churn::LeavePolicy policy =
                                                 churn::LeavePolicy::kUniform,
                                             std::uint64_t replay_key = 0) {
    EsConfig cfg;
    cfg.n = n;
    return std::make_unique<ScriptedCluster>(
        seed, n, churn_rate, policy, std::move(delays),
        [cfg](sim::ProcessId id, node::Context& ctx, bool initial) {
          return std::make_unique<EsRegisterNode>(id, ctx, cfg, initial);
        },
        replay_key);
  }

  RegisterNode* node(sim::ProcessId id) {
    return dynamic_cast<RegisterNode*>(system->find(id));
  }

 private:
  // Replay plumbing. Declared before `sim`/`net` so prepare_delays (called
  // in net's initializer) can populate it; the replayer must also outlive
  // the Network that owns the delay model it built.
  std::uint64_t replay_key_ = 0;
  std::unique_ptr<replay::Trace> rec_trace_;
  std::unique_ptr<replay::TraceRecorder> recorder_;
  std::shared_ptr<const replay::Trace> replay_trace_;
  std::unique_ptr<replay::TraceReplayer> replayer_;

  std::unique_ptr<net::DelayModel> prepare_delays(std::unique_ptr<net::DelayModel> delays,
                                                  std::uint64_t seed, double churn_rate) {
    replay::Session& session = replay::Session::instance();
    const replay::Session::Mode mode = session.mode();
    if (replay_key_ == 0 || mode == replay::Session::Mode::kOff) return delays;
    if (mode == replay::Session::Mode::kRecord) {
      rec_trace_ = std::make_unique<replay::Trace>();
      rec_trace_->fingerprint = replay_key_;
      rec_trace_->seed = seed;
      rec_trace_->churn_loop = churn_rate > 0.0;
      recorder_ = std::make_unique<replay::TraceRecorder>(*rec_trace_);
      return std::make_unique<replay::RecordingDelayModel>(std::move(delays),
                                                           *rec_trace_);
    }
    replay_trace_ = session.find(replay_key_, seed);
    replayer_ = std::make_unique<replay::TraceReplayer>(replay_trace_);
    return replayer_->make_delay_model();
  }

 public:

  std::optional<Value> read_blocking(sim::ProcessId id, sim::Duration max_wait = 10000) {
    std::optional<Value> result;
    RegisterNode* reg = node(id);
    if (reg == nullptr) return std::nullopt;
    reg->read(OpContext{0, sim.now()}, [&result](OpOutcome o, Value v) {
      if (o == OpOutcome::kOk) result = v;
    });
    pump_until(sim, [&result] { return result.has_value(); }, sim.now() + max_wait);
    return result;
  }

  sim::Simulation sim;
  net::Network net;
  std::unique_ptr<churn::System> system;
};

}  // namespace dynreg::bench
