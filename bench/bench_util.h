// Shared helpers for the scripted experiments: a minimal cluster deployment
// (mirroring the protocol wiring of the experiment harness) that the bench
// drives step by step, plus a predicate-pump.
#pragma once

#include <memory>
#include <optional>

#include "churn/system.h"
#include "dynreg/es_register.h"
#include "dynreg/sync_register.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "sim/simulation.h"
#include "stats/table.h"

namespace dynreg::bench {

/// Steps the simulation until pred() holds or the deadline passes.
template <typename Pred>
bool pump_until(sim::Simulation& sim, Pred pred, sim::Time deadline) {
  while (!pred()) {
    const auto next = sim.next_event_time();
    if (!next || *next > deadline) break;
    sim.step();
  }
  return pred();
}

/// A scripted protocol deployment (no workload driver; the bench drives).
class ScriptedCluster {
 public:
  ScriptedCluster(std::uint64_t seed, std::size_t n, double churn_rate,
                  churn::LeavePolicy policy, std::unique_ptr<net::DelayModel> delays,
                  churn::System::NodeFactory factory)
      : sim(seed), net(sim, std::move(delays)) {
    churn::SystemConfig cfg;
    cfg.initial_size = n;
    cfg.leave_policy = policy;
    std::unique_ptr<churn::ChurnModel> model;
    if (churn_rate > 0.0) {
      model = std::make_unique<churn::ConstantChurn>(churn_rate);
    } else {
      model = std::make_unique<churn::NoChurn>();
    }
    system = std::make_unique<churn::System>(sim, net, cfg, std::move(model),
                                             std::move(factory));
    system->bootstrap();
  }

  static std::unique_ptr<ScriptedCluster> sync(std::uint64_t seed, std::size_t n,
                                               double churn_rate, const SyncConfig& cfg,
                                               std::unique_ptr<net::DelayModel> delays,
                                               churn::LeavePolicy policy =
                                                   churn::LeavePolicy::kUniform) {
    return std::make_unique<ScriptedCluster>(
        seed, n, churn_rate, policy, std::move(delays),
        [cfg](sim::ProcessId id, node::Context& ctx, bool initial) {
          return std::make_unique<SyncRegisterNode>(id, ctx, cfg, initial);
        });
  }

  static std::unique_ptr<ScriptedCluster> es(std::uint64_t seed, std::size_t n,
                                             double churn_rate,
                                             std::unique_ptr<net::DelayModel> delays,
                                             churn::LeavePolicy policy =
                                                 churn::LeavePolicy::kUniform) {
    EsConfig cfg;
    cfg.n = n;
    return std::make_unique<ScriptedCluster>(
        seed, n, churn_rate, policy, std::move(delays),
        [cfg](sim::ProcessId id, node::Context& ctx, bool initial) {
          return std::make_unique<EsRegisterNode>(id, ctx, cfg, initial);
        });
  }

  RegisterNode* node(sim::ProcessId id) {
    return dynamic_cast<RegisterNode*>(system->find(id));
  }

  std::optional<Value> read_blocking(sim::ProcessId id, sim::Duration max_wait = 10000) {
    std::optional<Value> result;
    RegisterNode* reg = node(id);
    if (reg == nullptr) return std::nullopt;
    reg->read(OpContext{0, sim.now()}, [&result](OpOutcome o, Value v) {
      if (o == OpOutcome::kOk) result = v;
    });
    pump_until(sim, [&result] { return result.has_value(); }, sim.now() + max_wait);
    return result;
  }

  sim::Simulation sim;
  net::Network net;
  std::unique_ptr<churn::System> system;
};

}  // namespace dynreg::bench
