// dynreg_exp — the unified experiment CLI.
//
//   dynreg_exp list
//       Tabulates every registered experiment: name, paper claim, grid.
//   dynreg_exp run <name>... [--seeds=N] [--jobs=N] [--format=F] [--out=DIR]
//              [--workload=W] [--clients=N] [--think=N] [--burst=ON/OFF]
//   dynreg_exp run --all [options]
//       Runs experiments. --seeds sets replicas per sweep point (0/omitted:
//       experiment default); --jobs caps parallel replicas (0: one per
//       hardware thread; default 0); --format is table (default), json, or
//       csv; --out writes <name>.json / <name>.csv / <name>.txt files into
//       DIR instead of stdout. Workload overrides reshape the read traffic
//       of every run_experiment-based experiment: --workload is open
//       (default), closed, or bursty; --clients and --think configure the
//       closed-loop engine; --burst=ON/OFF sets the bursty on/off phase
//       lengths in ticks. Scripted constructions (E1, E2, E5) ignore them.
//
// Aggregated results are byte-identical across --jobs values: parallelism
// only changes wall-clock time, never output (see docs/ARCHITECTURE.md).
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "emit.h"
#include "registry.h"
#include "stats/table.h"

namespace {

using namespace dynreg;
using bench::Experiment;
using bench::ExperimentRegistry;
using bench::RunOptions;

enum class Format { kTable, kJson, kCsv };

int usage(std::ostream& os, int code) {
  os << "usage: dynreg_exp list\n"
        "       dynreg_exp run (<name>... | --all) [--seeds=N] [--jobs=N]\n"
        "                  [--format=table|json|csv] [--out=DIR]\n"
        "                  [--workload=open|closed|bursty] [--clients=N]\n"
        "                  [--think=N] [--burst=ON/OFF]\n";
  return code;
}

int cmd_list() {
  stats::Table table({"name", "id", "reproduces", "seeds", "parameter grid"});
  for (const Experiment* e : ExperimentRegistry::instance().list()) {
    table.add_row({e->name, e->id, e->paper_ref, std::to_string(e->default_seeds),
                   e->grid});
  }
  std::cout << table.to_string();
  return 0;
}

/// Parses "--flag=value"; returns the value when `arg` starts with the flag.
std::optional<std::string> flag_value(const std::string& arg, const std::string& flag) {
  const std::string prefix = flag + "=";
  if (arg.rfind(prefix, 0) != 0) return std::nullopt;
  return arg.substr(prefix.size());
}

std::optional<std::size_t> parse_count(const std::string& s) {
  // Digits only: std::stoul would silently wrap "-1" to SIZE_MAX.
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  try {
    return static_cast<std::size_t>(std::stoul(s));
  } catch (...) {
    return std::nullopt;  // out of range
  }
}

int cmd_run(const std::vector<std::string>& args) {
  RunOptions opts;
  opts.jobs = 0;  // parallel by default; output is jobs-independent
  Format format = Format::kTable;
  std::optional<std::string> out_dir;
  std::vector<std::string> names;
  bool all = false;

  for (const std::string& arg : args) {
    if (auto v = flag_value(arg, "--seeds")) {
      const auto n = parse_count(*v);
      if (!n) {
        std::cerr << "bad --seeds value: " << *v << "\n";
        return 2;
      }
      opts.seeds = *n;
    } else if (auto vj = flag_value(arg, "--jobs")) {
      const auto n = parse_count(*vj);
      if (!n) {
        std::cerr << "bad --jobs value: " << *vj << "\n";
        return 2;
      }
      opts.jobs = *n;
    } else if (auto vf = flag_value(arg, "--format")) {
      if (*vf == "table") {
        format = Format::kTable;
      } else if (*vf == "json") {
        format = Format::kJson;
      } else if (*vf == "csv") {
        format = Format::kCsv;
      } else {
        std::cerr << "bad --format value: " << *vf << " (table|json|csv)\n";
        return 2;
      }
    } else if (auto vw = flag_value(arg, "--workload")) {
      if (*vw == "open") {
        opts.workload.kind = workload::Kind::kOpenLoop;
      } else if (*vw == "closed") {
        opts.workload.kind = workload::Kind::kClosedLoop;
      } else if (*vw == "bursty") {
        opts.workload.kind = workload::Kind::kBursty;
      } else {
        std::cerr << "bad --workload value: " << *vw << " (open|closed|bursty)\n";
        return 2;
      }
    } else if (auto vc = flag_value(arg, "--clients")) {
      const auto n = parse_count(*vc);
      if (!n || *n == 0) {
        std::cerr << "bad --clients value: " << *vc << "\n";
        return 2;
      }
      opts.workload.clients = *n;
    } else if (auto vt = flag_value(arg, "--think")) {
      const auto n = parse_count(*vt);
      if (!n) {
        std::cerr << "bad --think value: " << *vt << "\n";
        return 2;
      }
      opts.workload.think = static_cast<sim::Duration>(*n);
    } else if (auto vb = flag_value(arg, "--burst")) {
      const auto slash = vb->find('/');
      const auto on = parse_count(vb->substr(0, slash));
      std::optional<std::size_t> off;
      if (slash != std::string::npos) off = parse_count(vb->substr(slash + 1));
      if (!on || !off) {
        std::cerr << "bad --burst value: " << *vb << " (expected ON/OFF ticks)\n";
        return 2;
      }
      opts.workload.burst_on = static_cast<sim::Duration>(*on);
      opts.workload.burst_off = static_cast<sim::Duration>(*off);
    } else if (auto vo = flag_value(arg, "--out")) {
      out_dir = *vo;
    } else if (arg == "--all") {
      all = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      names.push_back(arg);
    }
  }

  std::vector<const Experiment*> todo;
  if (all) {
    todo = ExperimentRegistry::instance().list();
  } else {
    if (names.empty()) return usage(std::cerr, 2);
    for (const std::string& name : names) {
      const Experiment* e = ExperimentRegistry::instance().find(name);
      if (e == nullptr) {
        std::cerr << "unknown experiment: " << name << " (see `dynreg_exp list`)\n";
        return 1;
      }
      todo.push_back(e);
    }
  }

  if (out_dir) std::filesystem::create_directories(*out_dir);

  // Multiple JSON documents on one stdout stream would not parse as a
  // whole; wrap them in a top-level array.
  const bool wrap_json = format == Format::kJson && !out_dir && todo.size() > 1;
  if (wrap_json) std::cout << "[\n";
  bool first = true;

  for (const Experiment* e : todo) {
    const std::size_t seeds = bench::effective_seeds(*e, opts);
    const bench::ExperimentResult result = bench::run_resolved(*e, opts);

    std::string payload;
    std::string extension;
    switch (format) {
      case Format::kTable: {
        if (!out_dir) {
          print_console(*e, result, std::cout);
          continue;
        }
        std::ostringstream os;
        print_console(*e, result, os);
        payload = os.str();
        extension = ".txt";
        break;
      }
      case Format::kJson:
        payload = bench::to_json(*e, seeds, result);
        extension = ".json";
        break;
      case Format::kCsv:
        payload = bench::to_csv(result);
        extension = ".csv";
        break;
    }
    if (out_dir) {
      const std::filesystem::path path =
          std::filesystem::path(*out_dir) / (e->name + extension);
      std::ofstream file(path, std::ios::binary);
      if (!file) {
        std::cerr << "cannot write " << path.string() << "\n";
        return 1;
      }
      file << payload;
      std::cerr << "wrote " << path.string() << "\n";
    } else {
      if (wrap_json) {
        if (!first) std::cout << ",\n";
        while (!payload.empty() && payload.back() == '\n') payload.pop_back();
      }
      std::cout << payload;
      if (wrap_json) std::cout << "\n";
      first = false;
    }
  }
  if (wrap_json) std::cout << "]\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage(std::cerr, 2);
  if (args[0] == "list") return cmd_list();
  if (args[0] == "run") return cmd_run({args.begin() + 1, args.end()});
  if (args[0] == "--help" || args[0] == "-h" || args[0] == "help") {
    return usage(std::cout, 0);
  }
  std::cerr << "unknown command: " << args[0] << "\n";
  return usage(std::cerr, 2);
}
