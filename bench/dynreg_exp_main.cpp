// dynreg_exp — the unified experiment CLI.
//
//   dynreg_exp list
//       Tabulates every registered experiment: name, paper claim, grid.
//   dynreg_exp run <name>... [--seeds=N] [--jobs=N] [--format=F] [--out=DIR]
//              [--workload=W] [--clients=N] [--think=N] [--burst=ON/OFF]
//              [--max-n=N] [--op-deadline=N] [--retry-attempts=N]
//              [--retry-backoff=[exp:]N] [--shards=N] [--zipf=S]
//              [--read-frac=F]
//   dynreg_exp run --all [options]
//       Runs experiments. --seeds sets replicas per sweep point (0/omitted:
//       experiment default); --jobs caps parallel replicas (0: one per
//       hardware thread; default 0); --format is table (default), json, or
//       csv; --out writes <name>.json / <name>.csv / <name>.txt files into
//       DIR instead of stdout. Workload overrides reshape the read traffic
//       of every run_experiment-based experiment: --workload is open
//       (default), closed, or bursty; --clients and --think configure the
//       closed-loop engine; --burst=ON/OFF sets the bursty on/off phase
//       lengths in ticks. --op-deadline arms a per-operation timeout;
//       --retry-attempts budgets re-issues of a timed-out attempt;
//       --retry-backoff=N waits a fixed N ticks between attempts and
//       --retry-backoff=exp:N backs off exponentially (N * 2^k, capped,
//       plus deterministic jitter) — see docs/FAULTS.md. Scripted
//       constructions (E1, E2, E5) ignore all workload overrides.
//       Sharded-keyspace knobs (E19, E20; docs/ARCHITECTURE.md): --shards
//       overrides the shard count, --zipf the zipfian skew exponent of the
//       keyed workload, --read-frac its read fraction in [0, 1].
//   dynreg_exp record <name> --out=FILE [--seeds=N] [--jobs=N]
//       Runs one experiment with every schedule decision captured, writes
//       the trace set to FILE, and prints the run's JSON to stdout.
//   dynreg_exp replay FILE [--jobs=N]
//       Re-runs the experiment recorded in FILE driven from its traces and
//       prints the JSON to stdout — byte-identical to the record's, at any
//       --jobs. Exit 1 on any audit-hash mismatch. (see docs/REPLAY.md)
//   dynreg_exp search <name|FILE> [--budget=N] [--seed=N] [--jobs=N]
//              [--slack=N] [--out=FILE]
//       Adversarial schedule search: records the experiment's scenario run
//       (or loads a scenario FILE), then replays --budget perturbed
//       variants hunting for regularity violations; --out saves the first
//       violating schedule as a scenario trace file.
//   dynreg_exp minimize FILE [--out=FILE] [--max-tests=N]
//       Delta-debugs a violating scenario trace down to its essential
//       decisions and prints the counterexample narrative; --out saves the
//       minimized trace.
//
// Aggregated results are byte-identical across --jobs values: parallelism
// only changes wall-clock time, never output (see docs/ARCHITECTURE.md).
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "emit.h"
#include "registry.h"
#include "replay/minimize.h"
#include "replay/search.h"
#include "replay/session.h"
#include "replay/trace_io.h"
#include "stats/table.h"

namespace {

using namespace dynreg;
using bench::Experiment;
using bench::ExperimentRegistry;
using bench::RunOptions;

enum class Format { kTable, kJson, kCsv };

int usage(std::ostream& os, int code) {
  os << "usage: dynreg_exp list\n"
        "       dynreg_exp run (<name>... | --all) [--seeds=N] [--jobs=N]\n"
        "                  [--format=table|json|csv] [--out=DIR]\n"
        "                  [--workload=open|closed|bursty] [--clients=N]\n"
        "                  [--think=N] [--burst=ON/OFF] [--max-n=N]\n"
        "                  [--op-deadline=N] [--retry-attempts=N]\n"
        "                  [--retry-backoff=[exp:]N] [--shards=N] [--zipf=S]\n"
        "                  [--read-frac=F]\n"
        "       dynreg_exp record <name> --out=FILE [--seeds=N] [--jobs=N]\n"
        "       dynreg_exp replay FILE [--jobs=N]\n"
        "       dynreg_exp search <name|FILE> [--budget=N] [--seed=N] [--jobs=N]\n"
        "                  [--slack=N] [--out=FILE]\n"
        "       dynreg_exp minimize FILE [--out=FILE] [--max-tests=N]\n";
  return code;
}

int cmd_list() {
  stats::Table table({"name", "id", "reproduces", "seeds", "parameter grid"});
  for (const Experiment* e : ExperimentRegistry::instance().list()) {
    table.add_row({e->name, e->id, e->paper_ref, std::to_string(e->default_seeds),
                   e->grid});
  }
  std::cout << table.to_string();
  return 0;
}

/// Parses "--flag=value"; returns the value when `arg` starts with the flag.
std::optional<std::string> flag_value(const std::string& arg, const std::string& flag) {
  const std::string prefix = flag + "=";
  if (arg.rfind(prefix, 0) != 0) return std::nullopt;
  return arg.substr(prefix.size());
}

std::optional<std::size_t> parse_count(const std::string& s) {
  // Digits only: std::stoul would silently wrap "-1" to SIZE_MAX.
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  try {
    return static_cast<std::size_t>(std::stoul(s));
  } catch (...) {
    return std::nullopt;  // out of range
  }
}

std::optional<double> parse_fraction(const std::string& s) {
  // Non-negative decimals only ("0.99", "1"); rejects signs and exponents so
  // a typo cannot smuggle a surprising value in.
  if (s.empty() || s.find_first_not_of("0123456789.") != std::string::npos ||
      s.find('.') != s.rfind('.')) {
    return std::nullopt;
  }
  try {
    return std::stod(s);
  } catch (...) {
    return std::nullopt;
  }
}

int cmd_run(const std::vector<std::string>& args) {
  RunOptions opts;
  opts.jobs = 0;  // parallel by default; output is jobs-independent
  Format format = Format::kTable;
  std::optional<std::string> out_dir;
  std::vector<std::string> names;
  bool all = false;

  for (const std::string& arg : args) {
    if (auto v = flag_value(arg, "--seeds")) {
      const auto n = parse_count(*v);
      if (!n) {
        std::cerr << "bad --seeds value: " << *v << "\n";
        return 2;
      }
      opts.seeds = *n;
    } else if (auto vj = flag_value(arg, "--jobs")) {
      const auto n = parse_count(*vj);
      if (!n) {
        std::cerr << "bad --jobs value: " << *vj << "\n";
        return 2;
      }
      opts.jobs = *n;
    } else if (auto vf = flag_value(arg, "--format")) {
      if (*vf == "table") {
        format = Format::kTable;
      } else if (*vf == "json") {
        format = Format::kJson;
      } else if (*vf == "csv") {
        format = Format::kCsv;
      } else {
        std::cerr << "bad --format value: " << *vf << " (table|json|csv)\n";
        return 2;
      }
    } else if (auto vw = flag_value(arg, "--workload")) {
      if (*vw == "open") {
        opts.workload.kind = workload::Kind::kOpenLoop;
      } else if (*vw == "closed") {
        opts.workload.kind = workload::Kind::kClosedLoop;
      } else if (*vw == "bursty") {
        opts.workload.kind = workload::Kind::kBursty;
      } else {
        std::cerr << "bad --workload value: " << *vw << " (open|closed|bursty)\n";
        return 2;
      }
    } else if (auto vc = flag_value(arg, "--clients")) {
      const auto n = parse_count(*vc);
      if (!n || *n == 0) {
        std::cerr << "bad --clients value: " << *vc << "\n";
        return 2;
      }
      opts.workload.clients = *n;
    } else if (auto vt = flag_value(arg, "--think")) {
      const auto n = parse_count(*vt);
      if (!n) {
        std::cerr << "bad --think value: " << *vt << "\n";
        return 2;
      }
      opts.workload.think = static_cast<sim::Duration>(*n);
    } else if (auto vb = flag_value(arg, "--burst")) {
      const auto slash = vb->find('/');
      const auto on = parse_count(vb->substr(0, slash));
      std::optional<std::size_t> off;
      if (slash != std::string::npos) off = parse_count(vb->substr(slash + 1));
      if (!on || !off) {
        std::cerr << "bad --burst value: " << *vb << " (expected ON/OFF ticks)\n";
        return 2;
      }
      opts.workload.burst_on = static_cast<sim::Duration>(*on);
      opts.workload.burst_off = static_cast<sim::Duration>(*off);
    } else if (auto vd = flag_value(arg, "--op-deadline")) {
      const auto n = parse_count(*vd);
      if (!n) {
        std::cerr << "bad --op-deadline value: " << *vd << "\n";
        return 2;
      }
      opts.workload.op_deadline = static_cast<sim::Duration>(*n);
    } else if (auto va = flag_value(arg, "--retry-attempts")) {
      const auto n = parse_count(*va);
      if (!n || *n == 0) {
        std::cerr << "bad --retry-attempts value: " << *va << "\n";
        return 2;
      }
      opts.workload.retry_attempts = static_cast<std::uint32_t>(*n);
    } else if (auto vr = flag_value(arg, "--retry-backoff")) {
      // "--retry-backoff=10" = fixed 10-tick gap between attempts;
      // "--retry-backoff=exp:10" = 10 * 2^k with deterministic jitter.
      std::string spec = *vr;
      bool exponential = false;
      if (spec.rfind("exp:", 0) == 0) {
        exponential = true;
        spec = spec.substr(4);
      }
      const auto n = parse_count(spec);
      if (!n) {
        std::cerr << "bad --retry-backoff value: " << *vr
                  << " (expected N or exp:N ticks)\n";
        return 2;
      }
      opts.workload.retry_backoff = static_cast<sim::Duration>(*n);
      opts.workload.retry_exponential = exponential;
    } else if (auto vsh = flag_value(arg, "--shards")) {
      const auto n = parse_count(*vsh);
      if (!n || *n == 0) {
        std::cerr << "bad --shards value: " << *vsh << "\n";
        return 2;
      }
      opts.workload.shards = *n;
    } else if (auto vz = flag_value(arg, "--zipf")) {
      const auto f = parse_fraction(*vz);
      if (!f) {
        std::cerr << "bad --zipf value: " << *vz << "\n";
        return 2;
      }
      opts.workload.zipf = *f;
    } else if (auto vrf = flag_value(arg, "--read-frac")) {
      const auto f = parse_fraction(*vrf);
      if (!f || *f > 1.0) {
        std::cerr << "bad --read-frac value: " << *vrf << " (expected [0, 1])\n";
        return 2;
      }
      opts.workload.read_frac = *f;
    } else if (auto vm = flag_value(arg, "--max-n")) {
      const auto n = parse_count(*vm);
      if (!n || *n == 0) {
        std::cerr << "bad --max-n value: " << *vm << "\n";
        return 2;
      }
      opts.max_n = *n;
    } else if (auto vo = flag_value(arg, "--out")) {
      out_dir = *vo;
    } else if (arg == "--all") {
      all = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      names.push_back(arg);
    }
  }

  std::vector<const Experiment*> todo;
  if (all) {
    todo = ExperimentRegistry::instance().list();
  } else {
    if (names.empty()) return usage(std::cerr, 2);
    for (const std::string& name : names) {
      const Experiment* e = ExperimentRegistry::instance().find(name);
      if (e == nullptr) {
        std::cerr << "unknown experiment: " << name << " (see `dynreg_exp list`)\n";
        return 1;
      }
      todo.push_back(e);
    }
  }

  if (out_dir) std::filesystem::create_directories(*out_dir);

  // Multiple JSON documents on one stdout stream would not parse as a
  // whole; wrap them in a top-level array.
  const bool wrap_json = format == Format::kJson && !out_dir && todo.size() > 1;
  if (wrap_json) std::cout << "[\n";
  bool first = true;

  for (const Experiment* e : todo) {
    const std::size_t seeds = bench::effective_seeds(*e, opts);
    const bench::ExperimentResult result = bench::run_resolved(*e, opts);

    std::string payload;
    std::string extension;
    switch (format) {
      case Format::kTable: {
        if (!out_dir) {
          print_console(*e, result, std::cout);
          continue;
        }
        std::ostringstream os;
        print_console(*e, result, os);
        payload = os.str();
        extension = ".txt";
        break;
      }
      case Format::kJson:
        payload = bench::to_json(*e, seeds, result);
        extension = ".json";
        break;
      case Format::kCsv:
        payload = bench::to_csv(result);
        extension = ".csv";
        break;
    }
    if (out_dir) {
      const std::filesystem::path path =
          std::filesystem::path(*out_dir) / (e->name + extension);
      std::ofstream file(path, std::ios::binary);
      if (!file) {
        std::cerr << "cannot write " << path.string() << "\n";
        return 1;
      }
      file << payload;
      std::cerr << "wrote " << path.string() << "\n";
    } else {
      if (wrap_json) {
        if (!first) std::cout << ",\n";
        while (!payload.empty() && payload.back() == '\n') payload.pop_back();
      }
      std::cout << payload;
      if (wrap_json) std::cout << "\n";
      first = false;
    }
  }
  if (wrap_json) std::cout << "]\n";
  return 0;
}

/// Looks an experiment up by CLI name or paper id ("E4").
const Experiment* resolve_experiment(const std::string& key) {
  if (const Experiment* e = ExperimentRegistry::instance().find(key)) return e;
  for (const Experiment* e : ExperimentRegistry::instance().list()) {
    if (e->id == key) return e;
  }
  return nullptr;
}

std::size_t total_decisions(const std::vector<replay::Trace>& traces) {
  std::size_t total = 0;
  for (const replay::Trace& t : traces) total += t.size();
  return total;
}

int cmd_record(const std::vector<std::string>& args) {
  RunOptions opts;
  opts.jobs = 0;
  std::optional<std::string> out;
  std::vector<std::string> names;
  for (const std::string& arg : args) {
    if (auto v = flag_value(arg, "--seeds")) {
      const auto n = parse_count(*v);
      if (!n) return std::cerr << "bad --seeds value: " << *v << "\n", 2;
      opts.seeds = *n;
    } else if (auto vj = flag_value(arg, "--jobs")) {
      const auto n = parse_count(*vj);
      if (!n) return std::cerr << "bad --jobs value: " << *vj << "\n", 2;
      opts.jobs = *n;
    } else if (auto vo = flag_value(arg, "--out")) {
      out = *vo;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      names.push_back(arg);
    }
  }
  if (names.size() != 1 || !out) return usage(std::cerr, 2);
  const Experiment* e = resolve_experiment(names[0]);
  if (e == nullptr) {
    std::cerr << "unknown experiment: " << names[0] << " (see `dynreg_exp list`)\n";
    return 1;
  }

  replay::Session& session = replay::Session::instance();
  session.begin_record();
  const std::size_t seeds = bench::effective_seeds(*e, opts);
  const bench::ExperimentResult result = bench::run_resolved(*e, opts);
  replay::TraceFile file;
  file.experiment = e->name;
  file.seeds = {seeds};
  file.traces = session.collected();
  session.end();

  try {
    replay::write_file(*out, file);
  } catch (const replay::TraceError& err) {
    std::cerr << "record: " << err.what() << "\n";
    return 1;
  }
  std::cerr << "recorded " << file.traces.size() << " trace(s), "
            << total_decisions(file.traces) << " decision(s) -> " << *out << "\n";
  std::cout << bench::to_json(*e, seeds, result);
  return 0;
}

int cmd_replay(const std::vector<std::string>& args) {
  RunOptions opts;
  opts.jobs = 0;
  std::vector<std::string> paths;
  for (const std::string& arg : args) {
    if (auto vj = flag_value(arg, "--jobs")) {
      const auto n = parse_count(*vj);
      if (!n) return std::cerr << "bad --jobs value: " << *vj << "\n", 2;
      opts.jobs = *n;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 1) return usage(std::cerr, 2);

  replay::TraceFile file;
  try {
    file = replay::read_file(paths[0]);
  } catch (const replay::TraceError& err) {
    std::cerr << "replay: " << err.what() << "\n";
    return 1;
  }
  const Experiment* e = resolve_experiment(file.experiment);
  if (e == nullptr) {
    std::cerr << "replay: trace file records unknown experiment '" << file.experiment
              << "'\n";
    return 1;
  }
  if (file.seeds.size() != 1) {
    std::cerr << "replay: trace file is a scenario artifact, not an experiment "
                 "recording (use `dynreg_exp search`/`minimize` on it)\n";
    return 1;
  }
  opts.seeds = static_cast<std::size_t>(file.seeds[0]);

  replay::Session& session = replay::Session::instance();
  session.begin_replay(std::move(file.traces));
  bench::ExperimentResult result;
  try {
    result = bench::run_resolved(*e, opts);
  } catch (const replay::TraceError& err) {
    session.end();
    std::cerr << "replay: " << err.what() << "\n";
    return 1;
  }
  const std::size_t replays = session.replays();
  const std::size_t mismatches = session.hash_mismatches();
  session.end();

  std::cerr << "replayed " << replays << " run(s), " << mismatches
            << " audit-hash mismatch(es)\n";
  std::cout << bench::to_json(*e, opts.seeds, result);
  return mismatches == 0 ? 0 : 1;
}

int cmd_search(const std::vector<std::string>& args) {
  replay::SearchOptions sopt;
  sopt.jobs = 0;
  std::optional<std::string> out;
  std::vector<std::string> targets;
  for (const std::string& arg : args) {
    if (auto v = flag_value(arg, "--budget")) {
      const auto n = parse_count(*v);
      if (!n || *n == 0) return std::cerr << "bad --budget value: " << *v << "\n", 2;
      sopt.budget = *n;
    } else if (auto vs = flag_value(arg, "--seed")) {
      const auto n = parse_count(*vs);
      if (!n) return std::cerr << "bad --seed value: " << *vs << "\n", 2;
      sopt.seed = static_cast<std::uint64_t>(*n);
    } else if (auto vj = flag_value(arg, "--jobs")) {
      const auto n = parse_count(*vj);
      if (!n) return std::cerr << "bad --jobs value: " << *vj << "\n", 2;
      sopt.jobs = *n;
    } else if (auto vk = flag_value(arg, "--slack")) {
      const auto n = parse_count(*vk);
      if (!n) return std::cerr << "bad --slack value: " << *vk << "\n", 2;
      sopt.delay_slack = static_cast<sim::Duration>(*n);
    } else if (auto vo = flag_value(arg, "--out")) {
      out = *vo;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.size() != 1) return usage(std::cerr, 2);

  // The target is an experiment (search its scenario config) or a scenario
  // trace file written by an earlier `search --out`.
  harness::ExperimentConfig cfg;
  std::optional<replay::Trace> base;
  if (const Experiment* e = resolve_experiment(targets[0])) {
    if (!e->scenario) {
      std::cerr << "search: experiment " << e->name
                << " has no scenario config to perturb\n";
      return 1;
    }
    cfg = e->scenario();
  } else {
    replay::TraceFile file;
    try {
      file = replay::read_file(targets[0]);
    } catch (const replay::TraceError& err) {
      std::cerr << "search: '" << targets[0]
                << "' is neither a known experiment nor a readable trace file ("
                << err.what() << ")\n";
      return 1;
    }
    if (!file.config || file.traces.empty()) {
      std::cerr << "search: " << targets[0]
                << " has no embedded scenario config (record one with "
                   "`dynreg_exp search <experiment> --out=FILE`)\n";
      return 1;
    }
    cfg = *file.config;
    base = std::move(file.traces[0]);
  }
  if (!base) base = replay::record_base(cfg);

  const auto t0 = std::chrono::steady_clock::now();  // dynreg-lint: allow(wall-clock): throughput report only; search results are jobs- and time-independent
  const replay::SearchResult res = replay::search(cfg, *base, sopt);
  const auto t1 = std::chrono::steady_clock::now();  // dynreg-lint: allow(wall-clock): throughput report only
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  std::cout << "searched " << res.executed << " perturbed schedule(s): "
            << res.violating << " violating, " << res.inverted
            << " with new/old inversions, " << res.distinct_schedules
            << " distinct schedule(s)\n";
  if (secs > 0.0) {
    std::cout << "throughput: "
              << static_cast<std::size_t>(static_cast<double>(res.executed) / secs)
              << " schedules/s\n";
  }
  if (res.first_violation) {
    std::cout << "first violating variant: #" << *res.first_violation << " ("
              << res.counterexample.size() << " recorded decisions, "
              << res.counterexample_report.regularity.violations.size()
              << " stale read(s))\n";
    if (out) {
      replay::TraceFile file;
      file.config = cfg;
      file.traces = {res.counterexample};
      try {
        replay::write_file(*out, file);
      } catch (const replay::TraceError& err) {
        std::cerr << "search: " << err.what() << "\n";
        return 1;
      }
      std::cerr << "wrote counterexample -> " << *out << "\n";
    }
  } else {
    std::cout << "no violating schedule found within the budget\n";
    if (out) std::cerr << "nothing to write to " << *out << "\n";
  }
  return 0;
}

int cmd_minimize(const std::vector<std::string>& args) {
  replay::MinimizeOptions mopt;
  std::optional<std::string> out;
  std::vector<std::string> paths;
  for (const std::string& arg : args) {
    if (auto v = flag_value(arg, "--max-tests")) {
      const auto n = parse_count(*v);
      if (!n || *n == 0) return std::cerr << "bad --max-tests value: " << *v << "\n", 2;
      mopt.max_tests = *n;
    } else if (auto vo = flag_value(arg, "--out")) {
      out = *vo;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 1) return usage(std::cerr, 2);

  replay::TraceFile file;
  try {
    file = replay::read_file(paths[0]);
  } catch (const replay::TraceError& err) {
    std::cerr << "minimize: " << err.what() << "\n";
    return 1;
  }
  if (!file.config || file.traces.empty()) {
    std::cerr << "minimize: " << paths[0]
              << " has no embedded scenario config; minimize expects a "
                 "counterexample written by `dynreg_exp search --out`\n";
    return 1;
  }

  const replay::MinimizeResult res =
      replay::minimize(*file.config, file.traces[0], mopt);
  std::cout << res.narrative;
  std::cerr << "minimized " << res.atoms << " atom(s) to " << res.essential
            << " essential decision(s) in " << res.tests << " replay(s)\n";
  if (!res.violating) {
    std::cerr << "minimize: input trace does not violate regularity on replay\n";
    return 1;
  }
  if (out) {
    replay::TraceFile min_file;
    min_file.config = *file.config;
    min_file.traces = {res.trace};
    try {
      replay::write_file(*out, min_file);
    } catch (const replay::TraceError& err) {
      std::cerr << "minimize: " << err.what() << "\n";
      return 1;
    }
    std::cerr << "wrote minimized trace -> " << *out << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage(std::cerr, 2);
  const std::vector<std::string> rest{args.begin() + 1, args.end()};
  if (args[0] == "list") return cmd_list();
  if (args[0] == "run") return cmd_run(rest);
  if (args[0] == "record") return cmd_record(rest);
  if (args[0] == "replay") return cmd_replay(rest);
  if (args[0] == "search") return cmd_search(rest);
  if (args[0] == "minimize") return cmd_minimize(rest);
  if (args[0] == "--help" || args[0] == "-h" || args[0] == "help") {
    return usage(std::cout, 0);
  }
  std::cerr << "unknown command: " << args[0] << "\n";
  return usage(std::cerr, 2);
}
