#include "registry.h"

#include <algorithm>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "emit.h"
#include "harness/experiment.h"

namespace dynreg::bench {

ExperimentRegistry& ExperimentRegistry::instance() {
  static ExperimentRegistry registry;
  return registry;
}

void ExperimentRegistry::add(Experiment e) {
  const std::string name = e.name;
  const bool inserted = by_name_.emplace(name, std::move(e)).second;
  if (!inserted) {
    // Loudly reject the collision: emplace would otherwise silently keep
    // the first registration and drop this one.
    throw std::logic_error("duplicate experiment registration: " + name);
  }
}

const Experiment* ExperimentRegistry::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &it->second;
}

std::vector<const Experiment*> ExperimentRegistry::list() const {
  std::vector<const Experiment*> all;
  all.reserve(by_name_.size());
  for (const auto& [name, e] : by_name_) all.push_back(&e);
  std::sort(all.begin(), all.end(), [](const Experiment* a, const Experiment* b) {
    // "E2" < "E10" numerically: compare by length first, then lexically.
    if (a->id.size() != b->id.size()) return a->id.size() < b->id.size();
    if (a->id != b->id) return a->id < b->id;
    return a->name < b->name;
  });
  return all;
}

Registrar::Registrar(Experiment e) { ExperimentRegistry::instance().add(std::move(e)); }

std::size_t effective_seeds(const Experiment& e, const RunOptions& opts) {
  return opts.seeds == 0 ? e.default_seeds : opts.seeds;
}

void apply_workload(const RunOptions& opts, harness::ExperimentConfig& cfg) {
  const WorkloadOverrides& w = opts.workload;
  if (w.kind) cfg.workload.kind = *w.kind;
  if (w.clients) cfg.workload.clients = *w.clients;
  if (w.think) cfg.workload.think_time = *w.think;
  if (w.burst_on) cfg.workload.burst_on = *w.burst_on;
  if (w.burst_off) cfg.workload.burst_off = *w.burst_off;
  if (w.op_deadline) cfg.workload.op_deadline = *w.op_deadline;
  if (w.retry_attempts) cfg.workload.retry_max_attempts = *w.retry_attempts;
  if (w.retry_backoff) cfg.workload.retry_backoff = *w.retry_backoff;
  if (w.retry_exponential) cfg.workload.retry_exponential = *w.retry_exponential;
  if (w.shards) cfg.shard_count = *w.shards;
  if (w.zipf) cfg.workload.zipf_s = *w.zipf;
  if (w.read_frac) cfg.workload.read_frac = *w.read_frac;
}

ExperimentResult run_resolved(const Experiment& e, RunOptions opts) {
  opts.seeds = effective_seeds(e, opts);
  return e.run(opts);
}

int run_standalone(const std::string& name) {
  const Experiment* e = ExperimentRegistry::instance().find(name);
  if (e == nullptr) {
    std::cerr << "unknown experiment: " << name << "\n";
    return 1;
  }
  RunOptions opts;
  opts.jobs = 0;  // parallel by default; output is jobs-independent
  const ExperimentResult result = run_resolved(*e, opts);
  print_console(*e, result, std::cout);
  return 0;
}

}  // namespace dynreg::bench
