// E17 — safety envelope under injected faults (docs/FAULTS.md).
//
// Runs each protocol against a ladder of fault classes — none, crash-recovery
// (volatile and durable restarts), an asymmetric partition, Byzantine message
// transforms, and (ES only) Byzantine transforms against the hardened
// protocol — and reports the violation counts the consistency checkers find.
//
// Expected envelope: crash/recovery and partitions are *within* the paper's
// fault model (they are churn plus message loss), so sync and ES stay
// violation-free while their churn assumptions hold; Byzantine transforms
// are *outside* every protocol's fault model, so violations appear — and the
// ES hardening guards recover only the forged-timestamp class, not
// plausibly-timestamped corruption (the paper's protocols authenticate
// nothing, Section 2).
#include "harness/sweep.h"
#include "registry.h"

namespace dynreg::bench {
namespace {

using harness::ExperimentConfig;
using stats::Cell;

constexpr std::size_t kDefaultSeeds = 3;

// The fault-class ladder. Crash rate 0.01/tick over n=15 is c ~ 0.00067 per
// process-tick — inside the ES constraint 1/(3*delta*n) ~ 0.00089 (and far
// inside sync's 1/(3*delta)), so crash scenarios stay within the churn
// envelope where the protocols promise safety.
enum Scenario : int {
  kNone = 0,
  kCrashVolatile = 1,
  kCrashDurable = 2,
  kPartition = 3,
  kByzantine = 4,
  kByzantineHardened = 5,  // ES only: validate_replies + envelope guard
};

const char* scenario_name(int s) {
  switch (s) {
    case kNone:
      return "none";
    case kCrashVolatile:
      return "crash (volatile)";
    case kCrashDurable:
      return "crash (durable)";
    case kPartition:
      return "partition (asym)";
    case kByzantine:
      return "byzantine";
    case kByzantineHardened:
      return "byzantine+guards";
  }
  return "?";
}

void apply_scenario(ExperimentConfig& cfg, double x) {
  switch (static_cast<int>(x)) {
    case kNone:
      break;
    case kCrashVolatile:
      cfg.fault.crash.rate = 0.01;
      cfg.fault.crash.recover_fraction = 1.0;
      cfg.fault.crash.recovery_delay = 20;
      cfg.fault.crash.restart = fault::RestartState::kVolatile;
      break;
    case kCrashDurable:
      cfg.fault.crash.rate = 0.01;
      cfg.fault.crash.recover_fraction = 1.0;
      cfg.fault.crash.recovery_delay = 20;
      cfg.fault.crash.restart = fault::RestartState::kDurable;
      break;
    case kPartition:
      cfg.fault.partition.rate = 0.002;
      cfg.fault.partition.duration = 150;
      cfg.fault.partition.fraction = 0.3;
      cfg.fault.partition.asymmetric = true;
      break;
    case kByzantineHardened:
      cfg.es_validate_replies = true;
      [[fallthrough]];
    case kByzantine:
      cfg.fault.byzantine.fraction = 0.25;
      cfg.fault.byzantine.transform_rate = 0.5;
      // Modest churn (inside every protocol's bound: 1/(3*delta*n) = 0.0044
      // here) keeps join traffic flowing, because the sync protocol's only
      // other value-carrying messages are the pinned honest writer's own
      // broadcasts — without joiners inquiring, its adversary has no surface.
      cfg.churn_rate = 0.003;
      break;
  }
}

ExperimentConfig base_config(harness::Protocol protocol) {
  ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.timing = protocol == harness::Protocol::kEventuallySync
                   ? harness::Timing::kEventuallySynchronous
                   : harness::Timing::kSynchronous;
  cfg.gst = 0;
  cfg.n = 15;
  cfg.delta = 5;
  cfg.duration = 2500;
  cfg.churn_rate = 0.0;  // membership dynamics come from the fault plan
  cfg.workload.read_interval = 10;
  cfg.workload.write_interval = 60;
  return cfg;
}

ExperimentResult run(const RunOptions& opts) {
  const std::size_t seeds = opts.seeds > 0 ? opts.seeds : 1;  // resolved by run_resolved()

  struct Row {
    harness::Protocol protocol;
    const char* label;
    std::vector<double> scenarios;
  };
  const std::vector<Row> rows{
      {harness::Protocol::kSync,
       "sync",
       {kNone, kCrashVolatile, kCrashDurable, kPartition, kByzantine}},
      {harness::Protocol::kEventuallySync,
       "es",
       {kNone, kCrashVolatile, kCrashDurable, kPartition, kByzantine,
        kByzantineHardened}},
      // ABD cannot readmit recovered processes (fixed replica set), so its
      // crash scenarios are crash-stop attrition — the Section 1 contrast.
      {harness::Protocol::kAbd, "abd", {kNone, kCrashDurable, kPartition, kByzantine}},
  };

  stats::DataTable table({"protocol", "fault class", "crashes", "recoveries",
                          "partitions", "msgs cut", "msgs transformed",
                          "read completion", "write completion",
                          "violations total", "violation rate"});
  for (const Row& row : rows) {
    ExperimentConfig base = base_config(row.protocol);
    apply_workload(opts, base);
    const auto points =
        harness::parallel_sweep(base, row.scenarios, apply_scenario, seeds, opts.jobs);
    for (const auto& p : points) {
      const auto agg = p.aggregate();
      const auto mean_of = [&p](auto fn) { return harness::mean_of(p.runs, fn); };
      table.add_row(
          {Cell::str(row.label), Cell::str(scenario_name(static_cast<int>(p.x))),
           Cell::num(mean_of([](const harness::MetricsReport& r) {
                       return r.faults_crashes;
                     }),
                     1),
           Cell::num(mean_of([](const harness::MetricsReport& r) {
                       return r.faults_recoveries;
                     }),
                     1),
           Cell::num(mean_of([](const harness::MetricsReport& r) {
                       return r.faults_partitions;
                     }),
                     1),
           Cell::num(mean_of([](const harness::MetricsReport& r) {
                       return r.msgs_dropped_partition;
                     }),
                     0),
           Cell::num(mean_of([](const harness::MetricsReport& r) {
                       return r.msgs_transformed;
                     }),
                     0),
           Cell::num(agg.read_completion.mean, 3),
           Cell::num(agg.write_completion.mean, 3),
           Cell::num(static_cast<double>(agg.violations_total), 0),
           Cell::num(agg.violation_rate.mean, 4)});
    }
  }

  ExperimentResult result;
  result.sections.push_back(
      {"fault_safety", "", std::move(table),
       "Expected shape: crash/recovery and asymmetric partitions stay inside\n"
       "the paper's fault model (churn + omission), so sync and ES report zero\n"
       "violations there — durable restarts merge their image as a floor and\n"
       "volatile restarts re-learn via the join path. Byzantine transforms sit\n"
       "outside every protocol's model: violations appear for all three, and\n"
       "the ES guards (byzantine+guards) remove only the forged-far-future\n"
       "timestamp class, not plausibly-timestamped corruption.\n"});
  return result;
}

Experiment make_experiment() {
  Experiment e;
  e.name = "fault_safety";
  e.id = "E17";
  e.title = "safety envelope under injected faults";
  e.paper_ref = "fault model of Section 2; Theorem 1 / Theorems 3-4 limits";
  e.grid =
      "protocol in {sync, es, abd} x fault class in {none, crash-volatile, "
      "crash-durable, partition, byzantine[, +guards]}; n=15, delta=5";
  e.default_seeds = kDefaultSeeds;
  e.run = run;
  e.scenario = [] {
    // Record/replay target: every fault class armed at once on ES — the
    // trace-v3 acceptance artifact (crashes + a partition + transforms in
    // one recorded fault stream).
    ExperimentConfig cfg = base_config(harness::Protocol::kEventuallySync);
    cfg.fault.crash.rate = 0.01;
    cfg.fault.crash.recover_fraction = 1.0;
    cfg.fault.crash.restart = fault::RestartState::kDurable;
    cfg.fault.partition.rate = 0.002;
    cfg.fault.partition.duration = 150;
    cfg.fault.partition.fraction = 0.3;
    cfg.fault.partition.asymmetric = true;
    cfg.fault.byzantine.fraction = 0.25;
    cfg.fault.byzantine.transform_rate = 0.5;
    return cfg;
  };
  return e;
}

const Registrar registrar{make_experiment()};

}  // namespace
}  // namespace dynreg::bench
