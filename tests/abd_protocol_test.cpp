// ABD baseline: two-phase quorum reads/writes over a static replica set,
// including the degenerate single-replica system and the timestamp
// advancement rule that keeps concurrent writers safe.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "churn/system.h"
#include "dynreg/abd_register.h"
#include "harness/experiment.h"
#include "net/delay_model.h"
#include "net/network.h"

namespace dynreg {
namespace {

churn::System make_abd_system(sim::Simulation& sim, net::Network& net, std::size_t n) {
  churn::SystemConfig sys_cfg;
  sys_cfg.initial_size = n;
  AbdConfig ac;
  ac.n = n;
  return churn::System(
      sim, net, sys_cfg, std::make_unique<churn::NoChurn>(),
      [ac](sim::ProcessId id, node::Context& ctx, bool initial) {
        return std::make_unique<AbdRegisterNode>(id, ctx, ac, initial);
      });
}

TEST(AbdProtocol, SingleReplicaSystemCompletesViaSelfQuorum) {
  sim::Simulation sim(1);
  net::Network net(sim, std::make_unique<net::FixedDelay>(1));
  auto system = make_abd_system(sim, net, 1);
  system.bootstrap();

  auto* reg = dynamic_cast<RegisterNode*>(system.find(0));
  ASSERT_NE(reg, nullptr);
  bool wrote = false;
  std::optional<Value> got;
  reg->write(OpContext{}, 9, [&wrote](OpOutcome o) { wrote = o == OpOutcome::kOk; });
  reg->read(OpContext{}, [&got](OpOutcome o, Value v) {
    if (o == OpOutcome::kOk) got = v;
  });
  sim.run_until(50);
  EXPECT_TRUE(wrote);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 9);
}

TEST(AbdProtocol, WriteTimestampsAdvancePastObservedOnes) {
  sim::Simulation sim(2);
  net::Network net(sim, std::make_unique<net::FixedDelay>(1));
  auto system = make_abd_system(sim, net, 5);
  system.bootstrap();

  auto* w0 = dynamic_cast<RegisterNode*>(system.find(0));
  auto* w1 = dynamic_cast<RegisterNode*>(system.find(1));
  ASSERT_NE(w0, nullptr);
  ASSERT_NE(w1, nullptr);

  // Writer 0 races ahead; writer 1's local counter lags but it has observed
  // writer 0's updates, so its next write must supersede them rather than
  // being acked-but-never-stored.
  for (Value v = 1; v <= 3; ++v) {
    w0->write(OpContext{}, v * 10, [](OpOutcome) {});
    sim.run_until(sim.now() + 10);
  }
  bool w1_done = false;
  w1->write(OpContext{}, 77,
            [&w1_done](OpOutcome o) { w1_done = o == OpOutcome::kOk; });
  sim.run_until(sim.now() + 20);
  ASSERT_TRUE(w1_done);

  std::optional<Value> got;
  auto* reader = dynamic_cast<RegisterNode*>(system.find(3));
  ASSERT_NE(reader, nullptr);
  reader->read(OpContext{}, [&got](OpOutcome o, Value v) {
    if (o == OpOutcome::kOk) got = v;
  });
  sim.run_until(sim.now() + 20);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 77);
}

TEST(AbdProtocol, RemainsAtomicInExperiment) {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kAbd;
  cfg.n = 9;
  cfg.delta = 8;
  cfg.duration = 1000;
  cfg.churn_kind = harness::ChurnKind::kNone;
  cfg.seed = 6;
  cfg.workload.read_interval = 3;
  cfg.workload.write_interval = 25;

  const auto r = harness::run_experiment(cfg);
  EXPECT_GT(r.atomicity.reads_checked, 100u);
  EXPECT_EQ(r.atomicity.inversion_count, 0u);
  EXPECT_TRUE(r.regularity.ok());
}

}  // namespace
}  // namespace dynreg
