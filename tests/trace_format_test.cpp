// Trace file format: encode/decode round-trips bit-exactly, and the decoder
// rejects every malformed input — truncations at all prefix lengths, a bad
// magic, a version from the future, and seeded single-bit corruptions — with
// a clean TraceError, never UB (the asan preset runs this file too).
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "harness/experiment.h"
#include "replay/trace_io.h"

namespace dynreg::replay {
namespace {

harness::ExperimentConfig sample_config() {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kEventuallySync;
  cfg.timing = harness::Timing::kEventuallySynchronous;
  cfg.n = 7;
  cfg.delta = 4;
  cfg.duration = 1234;
  cfg.seed = 99;
  cfg.churn_rate = 0.0125;
  cfg.leave_policy = churn::LeavePolicy::kOldestActiveFirst;
  cfg.gst = 250;
  cfg.pre_gst_max = 64;
  cfg.loss_rate = 0.05;
  cfg.es_atomic_reads = true;
  cfg.sync_delta_pp = 3;
  cfg.workload.read_interval = 7;
  cfg.workload.write_interval = 29;
  cfg.shard_count = 4;  // v4 appendix fields
  cfg.workload.key_count = 96;
  cfg.workload.zipf_s = 1.25;
  cfg.workload.read_frac = 0.75;
  cfg.workload.storm_every = 300;
  cfg.workload.storm_len = 40;
  return cfg;
}

TraceFile sample_file() {
  TraceFile f;
  f.experiment = "es_churn_sweep";
  f.seeds = {3};
  f.config = sample_config();

  Trace t;
  t.fingerprint = fingerprint(*f.config);
  t.seed = 42;
  t.recorded_hash = 0x1234567890abcdefULL;
  t.churn_loop = true;
  t.net.push_back(NetRecord{5, 0, 1, 2, false, 3});
  t.net.push_back(NetRecord{5, 0, 2, 2, true, 0});
  t.net.push_back(NetRecord{9, 1, 0, 4, false, 1});
  t.churn.push_back(ChurnRecord{7, true, 0, 0});
  t.churn.push_back(ChurnRecord{11, false, 3, 2});  // v4: shard-tagged
  t.picks.push_back(PickRecord{8, 2});
  f.traces.push_back(t);

  Trace empty;  // a trace with no decisions must survive the format too
  empty.fingerprint = 2;
  empty.seed = 1;
  f.traces.push_back(empty);
  return f;
}

TEST(TraceFormat, EncodeDecodeRoundTripsBitExactly) {
  const TraceFile f = sample_file();
  const auto bytes = encode(f);
  const TraceFile d = decode(bytes);

  EXPECT_EQ(d.experiment, f.experiment);
  EXPECT_EQ(d.seeds, f.seeds);
  ASSERT_TRUE(d.config.has_value());
  ASSERT_EQ(d.traces.size(), 2u);
  EXPECT_EQ(d.traces[0].fingerprint, f.traces[0].fingerprint);
  EXPECT_EQ(d.traces[0].seed, 42u);
  EXPECT_EQ(d.traces[0].recorded_hash, 0x1234567890abcdefULL);
  EXPECT_TRUE(d.traces[0].churn_loop);
  ASSERT_EQ(d.traces[0].net.size(), 3u);
  EXPECT_EQ(d.traces[0].net[1].time, 5u);
  EXPECT_TRUE(d.traces[0].net[1].lost);
  ASSERT_EQ(d.traces[0].churn.size(), 2u);
  EXPECT_FALSE(d.traces[0].churn[1].join);
  EXPECT_EQ(d.traces[0].churn[1].victim, 3u);
  EXPECT_EQ(d.traces[0].churn[0].shard, 0u);
  EXPECT_EQ(d.traces[0].churn[1].shard, 2u);
  ASSERT_EQ(d.traces[0].picks.size(), 1u);
  EXPECT_EQ(d.traces[0].picks[0].chosen, 2u);
  EXPECT_TRUE(d.traces[1].net.empty());

  // The decisive check: re-encoding the decoded file reproduces the bytes.
  EXPECT_EQ(encode(d), bytes);
}

TEST(TraceFormat, ConfigEncodingRoundTripsEveryField) {
  const harness::ExperimentConfig cfg = sample_config();
  std::vector<std::uint8_t> bytes;
  encode_config(cfg, bytes);
  std::size_t pos = 0;
  const harness::ExperimentConfig d = decode_config(bytes, pos);
  EXPECT_EQ(pos, bytes.size());

  std::vector<std::uint8_t> again;
  encode_config(d, again);
  EXPECT_EQ(again, bytes);
  EXPECT_EQ(d.protocol, cfg.protocol);
  EXPECT_EQ(d.n, cfg.n);
  EXPECT_EQ(d.seed, cfg.seed);
  EXPECT_EQ(d.churn_rate, cfg.churn_rate);
  ASSERT_TRUE(d.sync_delta_pp.has_value());
  EXPECT_EQ(*d.sync_delta_pp, 3u);
  EXPECT_FALSE(d.sync_refresh_interval.has_value());
  EXPECT_EQ(d.shard_count, 4u);  // v4 appendix
  EXPECT_EQ(d.workload.key_count, 96u);
  EXPECT_EQ(d.workload.zipf_s, 1.25);
  EXPECT_EQ(d.workload.read_frac, 0.75);
  EXPECT_EQ(d.workload.storm_every, 300u);
  EXPECT_EQ(d.workload.storm_len, 40u);
}

TEST(TraceFormat, FingerprintIgnoresSeedAndSeesEverythingElse) {
  harness::ExperimentConfig a = sample_config();
  harness::ExperimentConfig b = a;
  b.seed = a.seed + 17;
  EXPECT_EQ(fingerprint(a), fingerprint(b));  // seed is keyed separately
  b.churn_rate += 0.001;
  EXPECT_NE(fingerprint(a), fingerprint(b));
  EXPECT_NE(fingerprint(a), 0u);
  // v4 appendix fields are keyed too: two sharded configs differing only in
  // shard count or workload skew must never share a trace.
  b = a;
  b.shard_count = a.shard_count + 1;
  EXPECT_NE(fingerprint(a), fingerprint(b));
  b = a;
  b.workload.zipf_s += 0.01;
  EXPECT_NE(fingerprint(a), fingerprint(b));
  b = a;
  b.workload.read_frac -= 0.05;
  EXPECT_NE(fingerprint(a), fingerprint(b));
  b = a;
  b.workload.storm_every = 0;
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

TEST(TraceFormat, EveryTruncationThrowsCleanly) {
  const auto bytes = encode(sample_file());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    EXPECT_THROW(decode(prefix), TraceError) << "prefix length " << len;
  }
}

TEST(TraceFormat, BadMagicIsDiagnosed) {
  auto bytes = encode(sample_file());
  bytes[0] ^= 0xff;
  try {
    decode(bytes);
    FAIL() << "decode accepted a bad magic";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos) << e.what();
  }
}

TEST(TraceFormat, FutureVersionIsDiagnosed) {
  auto bytes = encode(sample_file());
  bytes[4] = static_cast<std::uint8_t>(kTraceVersion + 1);
  try {
    decode(bytes);
    FAIL() << "decode accepted a future version";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }
}

TEST(TraceFormat, CorruptedBodyFailsTheChecksum) {
  auto bytes = encode(sample_file());
  bytes[bytes.size() / 2] ^= 0x10;
  try {
    decode(bytes);
    FAIL() << "decode accepted a corrupted body";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos) << e.what();
  }
}

TEST(TraceFormat, SeededBitFlipFuzzAlwaysThrowsNeverCrashes) {
  const auto bytes = encode(sample_file());
  // Portable generator (mt19937's sequence is pinned by the standard), so
  // the fuzzed corpus is identical on every platform and run.
  std::mt19937 gen(20260808u);
  for (int i = 0; i < 500; ++i) {
    auto corrupt = bytes;
    const std::size_t byte = gen() % corrupt.size();
    corrupt[byte] ^= static_cast<std::uint8_t>(1u << (gen() % 8));
    // Every byte is covered by the magic, the version check, or the trailing
    // checksum, so any single-bit flip must be rejected — and must never
    // crash or read out of bounds (the asan preset enforces the latter).
    EXPECT_THROW(decode(corrupt), TraceError) << "flip in byte " << byte;
  }
}

/// Mirror of trace_io's trailing checksum (fold64 over 8-byte LE chunks,
/// zero-padded tail, length folded in last) — the test needs it to build a
/// structurally-lying file whose checksum is nonetheless valid.
std::uint64_t file_checksum(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 0x445254522d763101ULL;
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t chunk = 0;
    for (int b = 0; b < 8; ++b) chunk |= std::uint64_t{bytes[i + b]} << (8 * b);
    h = fold64(h, chunk);
  }
  if (i < bytes.size()) {
    std::uint64_t chunk = 0;
    for (std::size_t b = 0; i + b < bytes.size(); ++b) {
      chunk |= std::uint64_t{bytes[i + b]} << (8 * b);
    }
    h = fold64(h, chunk);
  }
  return fold64(h, bytes.size());
}

TEST(TraceFormat, LyingRecordCountsCannotBalloonAllocation) {
  // A hand-built file that claims 2^40 traces, with a *valid* checksum so
  // only the count-vs-remaining-bytes validation stands between the decoder
  // and a terabyte reserve. It must throw TraceError, not allocate.
  std::vector<std::uint8_t> bytes;
  const auto put_u32 = [&bytes](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  put_u32(kTraceMagic);
  put_u32(kTraceVersion);
  bytes.push_back(0);  // empty experiment name
  bytes.push_back(0);  // zero seeds
  bytes.push_back(0);  // no config
  // trace count 2^40 as LEB128: five continuation bytes then 0x10
  for (int i = 0; i < 5; ++i) bytes.push_back(0x80);
  bytes.push_back(0x10);
  const std::uint64_t sum = file_checksum(bytes);
  for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(sum >> (8 * i)));
  EXPECT_THROW(decode(bytes), TraceError);
}

TEST(TraceFormat, FileIoRoundTripsAndMissingFileThrows) {
  const TraceFile f = sample_file();
  const std::string path = testing::TempDir() + "/trace_format_test.trace";
  write_file(path, f);
  const TraceFile d = read_file(path);
  EXPECT_EQ(encode(d), encode(f));
  EXPECT_THROW(read_file(path + ".does-not-exist"), TraceError);
}

}  // namespace
}  // namespace dynreg::replay
