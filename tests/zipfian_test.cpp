// workload::ZipfianPicker: the keyed workload's private-stream sampler.
// Distributional correctness (chi-square against the analytic pmf at
// s = 0.99), determinism across instances (the cross-jobs property: two
// pickers with the same seed produce the same sequence), and the rank-0
// head carrying the expected traffic share.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "harness/zipfian.h"

namespace dynreg::workload {
namespace {

TEST(Zipfian, ProbabilitiesFormADistribution) {
  const ZipfianPicker p(64, 0.99, 1);
  double total = 0.0;
  for (std::size_t r = 0; r < p.keys(); ++r) {
    EXPECT_GT(p.probability(r), 0.0) << r;
    if (r > 0) EXPECT_LT(p.probability(r), p.probability(r - 1)) << r;
    total += p.probability(r);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipfian, ChiSquareAtS099MatchesAnalyticPmf) {
  constexpr std::size_t kKeys = 32;
  constexpr std::size_t kDraws = 200000;
  ZipfianPicker p(kKeys, 0.99, 42);
  std::vector<std::size_t> observed(kKeys, 0);
  for (std::size_t i = 0; i < kDraws; ++i) {
    const std::size_t r = p.next();
    ASSERT_LT(r, kKeys);
    ++observed[r];
  }
  double chi2 = 0.0;
  for (std::size_t r = 0; r < kKeys; ++r) {
    const double expected = p.probability(r) * static_cast<double>(kDraws);
    ASSERT_GT(expected, 5.0) << "cell too thin for chi-square at rank " << r;
    const double d = static_cast<double>(observed[r]) - expected;
    chi2 += d * d / expected;
  }
  // 31 degrees of freedom: the 99.9th percentile is ~61.1. A correct
  // sampler fails this with p < 0.001 (and the draw is deterministic, so
  // the test never flakes).
  EXPECT_LT(chi2, 61.1);
}

TEST(Zipfian, HeadRankDominatesUnderSkew) {
  ZipfianPicker p(64, 0.99, 7);
  std::size_t head = 0;
  constexpr std::size_t kDraws = 50000;
  for (std::size_t i = 0; i < kDraws; ++i) {
    if (p.next() == 0) ++head;
  }
  const double share = static_cast<double>(head) / kDraws;
  // P(0) ~ 0.21 for 64 keys at s = 0.99; uniform would give 0.0156.
  EXPECT_GT(share, 0.15);
  EXPECT_LT(share, 0.30);
}

TEST(Zipfian, SameSeedSameSequenceAcrossInstances) {
  // The cross-jobs determinism property: the picker's stream depends only
  // on its constructor arguments, never on global state or draw context.
  ZipfianPicker a(128, 0.99, 1234);
  ZipfianPicker b(128, 0.99, 1234);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << i;
    ASSERT_EQ(a.uniform01(), b.uniform01()) << i;
  }
}

TEST(Zipfian, DifferentSeedsDiverge) {
  ZipfianPicker a(128, 0.99, 1);
  ZipfianPicker b(128, 0.99, 2);
  bool diverged = false;
  for (int i = 0; i < 100 && !diverged; ++i) diverged = a.next() != b.next();
  EXPECT_TRUE(diverged);
}

TEST(Zipfian, ZeroExponentIsUniform) {
  const ZipfianPicker p(16, 0.0, 1);
  for (std::size_t r = 0; r < p.keys(); ++r) {
    EXPECT_NEAR(p.probability(r), 1.0 / 16.0, 1e-12) << r;
  }
}

TEST(Zipfian, DegenerateSingleKeySpace) {
  ZipfianPicker p(0, 0.99, 1);  // keys == 0 treated as 1
  EXPECT_EQ(p.keys(), 1u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(p.next(), 0u);
}

}  // namespace
}  // namespace dynreg::workload
