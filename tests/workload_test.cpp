// The pluggable workload engines: closed-loop sessions pace themselves by
// think time and produce monotone latency growth in the client count;
// bursty gates open-loop traffic by its on/off phases; every engine keeps
// the run deterministic per (config, seed).
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace dynreg {
namespace {

harness::ExperimentConfig closed_loop_base() {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kEventuallySync;
  cfg.timing = harness::Timing::kSynchronous;
  cfg.n = 8;
  cfg.delta = 5;
  cfg.duration = 2000;
  cfg.churn_kind = harness::ChurnKind::kNone;
  cfg.seed = 11;
  cfg.workload.kind = workload::Kind::kClosedLoop;
  cfg.workload.think_time = 2;
  cfg.workload.write_interval = 40;
  return cfg;
}

TEST(Workload, ClosedLoopLatencyGrowsWithClientCount) {
  auto cfg = closed_loop_base();
  cfg.workload.clients = 1;
  const auto one = harness::run_experiment(cfg);
  cfg.workload.clients = 8;
  const auto eight = harness::run_experiment(cfg);

  ASSERT_GT(one.reads_completed, 50u);
  ASSERT_GT(eight.reads_completed, one.reads_completed);
  // One client never queues; eight clients over eight processes collide and
  // wait — the closed-loop saturation shape E13 sweeps.
  EXPECT_GT(eight.read_latency_mean, one.read_latency_mean + 1.0);
  EXPECT_GE(eight.read_latency_p99, one.read_latency_p99);
}

TEST(Workload, ClosedLoopSessionPacesByThinkTime) {
  // Sync protocol: reads resolve instantly, so one session's cycle is
  // exactly one think interval — issue counts are duration/think, +-1.
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kSync;
  cfg.n = 5;
  cfg.delta = 5;
  cfg.duration = 1000;
  cfg.churn_kind = harness::ChurnKind::kNone;
  cfg.seed = 3;
  cfg.workload.kind = workload::Kind::kClosedLoop;
  cfg.workload.clients = 1;
  cfg.workload.think_time = 10;
  cfg.workload.writes_enabled = false;

  const auto r = harness::run_experiment(cfg);
  EXPECT_GE(r.reads_issued, 99u);
  EXPECT_LE(r.reads_issued, 101u);
  EXPECT_EQ(r.reads_completed, r.reads_issued);
  EXPECT_EQ(r.read_latency_mean, 0.0);  // fast reads, no contention
}

TEST(Workload, ClosedLoopThinkZeroOnInstantaneousReadsTerminates) {
  // Regression: sync reads resolve inside the invocation; with think 0 a
  // session must still advance the clock each cycle (think 0 behaves as 1)
  // instead of re-issuing at the same timestamp forever.
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kSync;
  cfg.n = 4;
  cfg.delta = 5;
  cfg.duration = 200;
  cfg.churn_kind = harness::ChurnKind::kNone;
  cfg.seed = 2;
  cfg.workload.kind = workload::Kind::kClosedLoop;
  cfg.workload.clients = 2;
  cfg.workload.think_time = 0;
  cfg.workload.writes_enabled = false;

  const auto r = harness::run_experiment(cfg);  // must return, not hang
  EXPECT_GE(r.reads_issued, 2u * 199u);  // one per tick per session
  EXPECT_LE(r.reads_issued, 2u * 200u);
  EXPECT_EQ(r.reads_completed, r.reads_issued);
}

TEST(Workload, BurstyIssuesReadsOnlyDuringOnPhases) {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kSync;
  cfg.n = 10;
  cfg.delta = 5;
  cfg.duration = 2000;
  cfg.churn_kind = harness::ChurnKind::kNone;
  cfg.seed = 5;
  cfg.workload.read_interval = 5;
  cfg.workload.write_interval = 50;

  cfg.workload.kind = workload::Kind::kOpenLoop;
  const auto open = harness::run_experiment(cfg);

  cfg.workload.kind = workload::Kind::kBursty;
  cfg.workload.burst_on = 100;
  cfg.workload.burst_off = 300;
  const auto bursty = harness::run_experiment(cfg);

  ASSERT_GT(open.reads_issued, 300u);
  // A quarter of the ticks are on-phase; allow slack for phase boundaries.
  EXPECT_LT(bursty.reads_issued, open.reads_issued / 2);
  EXPECT_GT(bursty.reads_issued, open.reads_issued / 8);
  // The writer stream is not gated by the bursts.
  EXPECT_EQ(bursty.writes_issued, open.writes_issued);
}

TEST(Workload, EnginesAreDeterministicPerSeed) {
  for (const workload::Kind kind :
       {workload::Kind::kOpenLoop, workload::Kind::kClosedLoop,
        workload::Kind::kBursty}) {
    auto cfg = closed_loop_base();
    cfg.workload.kind = kind;
    cfg.workload.clients = 4;
    cfg.duration = 800;
    cfg.churn_kind = harness::ChurnKind::kConstant;
    cfg.churn_rate = 0.01;
    const auto a = harness::run_experiment(cfg);
    const auto b = harness::run_experiment(cfg);
    EXPECT_EQ(a.reads_issued, b.reads_issued);
    EXPECT_EQ(a.reads_completed, b.reads_completed);
    EXPECT_EQ(a.reads_dropped, b.reads_dropped);
    EXPECT_EQ(a.read_latency_mean, b.read_latency_mean);
    EXPECT_EQ(a.read_latency_p99, b.read_latency_p99);
    EXPECT_EQ(a.msgs_by_type, b.msgs_by_type);
  }
}

}  // namespace
}  // namespace dynreg
