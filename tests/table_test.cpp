// stats::Table — formatting contract used by every bench's output.
#include <gtest/gtest.h>

#include "stats/table.h"

namespace dynreg::stats {
namespace {

TEST(Table, FmtFixedPrecision) {
  EXPECT_EQ(Table::fmt(1.0 / 3.0, 4), "0.3333");
  EXPECT_EQ(Table::fmt(2.5, 0), "2");    // rounds to even
  EXPECT_EQ(Table::fmt(3.5, 0), "4");
  EXPECT_EQ(Table::fmt(12.0, 2), "12.00");
  EXPECT_EQ(Table::fmt(0.0, 1), "0.0");
}

TEST(Table, ColumnsPadToWidestCell) {
  Table t({"a", "long header"});
  t.add_row({"wide cell value", "x"});
  t.add_row({"y", "z"});
  const std::string out = t.to_string();

  // header line: "a" padded to the widest cell in its column + 2 spaces.
  EXPECT_EQ(out.substr(0, out.find('\n')), "a                long header");
  // every row line has the second column starting at the same offset.
  EXPECT_NE(out.find("wide cell value  x"), std::string::npos);
  EXPECT_NE(out.find("y                z"), std::string::npos);
}

TEST(Table, RuleSpansAllColumns) {
  Table t({"ab", "cd"});
  t.add_row({"1", "2"});
  const std::string out = t.to_string();
  const auto first_nl = out.find('\n');
  const auto second_nl = out.find('\n', first_nl + 1);
  const std::string rule = out.substr(first_nl + 1, second_nl - first_nl - 1);
  EXPECT_EQ(rule, std::string(6, '-'));  // 2 + 2 gutter + 2
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, ShortRowsArePaddedToHeaderWidth) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.to_string().find("only"), std::string::npos);
}

}  // namespace
}  // namespace dynreg::stats
