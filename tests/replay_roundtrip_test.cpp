// The trace round-trip property: for EVERY registered experiment, a
// session-recorded run serialized through the trace file format and
// replayed back produces byte-identical emitter output and zero audit-hash
// mismatches — at any worker count. This is the end-to-end guarantee the
// `dynreg_exp record`/`replay` CLI (and the CI replay gate) stand on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>

#include "emit.h"
#include "harness/experiment.h"
#include "registry.h"
#include "replay/session.h"
#include "replay/trace_io.h"

namespace dynreg::bench {
namespace {

struct Recorded {
  std::string json;
  replay::TraceFile file;
};

Recorded record(const Experiment& e, std::size_t jobs) {
  RunOptions opts;
  opts.seeds = 1;  // one replica per point keeps the full sweep affordable
  opts.max_n = 100;  // caps the scaling experiments' (E15/E16) n grids too
  opts.jobs = jobs;
  replay::Session& session = replay::Session::instance();
  session.begin_record();
  const ExperimentResult result = e.run(opts);
  Recorded rec;
  rec.json = to_json(e, 1, result);
  rec.file.experiment = e.name;
  rec.file.seeds = {1};
  rec.file.traces = session.collected();
  session.end();
  return rec;
}

std::string replay_from(const Experiment& e, replay::TraceFile file, std::size_t jobs) {
  RunOptions opts;
  opts.seeds = 1;
  opts.max_n = 100;
  opts.jobs = jobs;
  replay::Session& session = replay::Session::instance();
  session.begin_replay(std::move(file.traces));
  const ExperimentResult result = e.run(opts);
  EXPECT_EQ(session.hash_mismatches(), 0u) << e.name;
  session.end();
  return to_json(e, 1, result);
}

TEST(ReplayRoundTrip, EveryExperimentRecordsAndReplaysByteIdentically) {
  for (const Experiment* e : ExperimentRegistry::instance().list()) {
    SCOPED_TRACE(e->name);
    Recorded rec = record(*e, /*jobs=*/0);

    // Serialize through the real file format — the replay consumes exactly
    // the bytes a `dynreg_exp record` artifact would hold.
    replay::TraceFile decoded = replay::decode(replay::encode(rec.file));
    // E14 drives its runs through the hooks overload (session-bypassing by
    // design: its searches must not pollute the recording); every other
    // experiment's runs must show up in the session.
    if (e->name != "threshold_search") {
      EXPECT_FALSE(decoded.traces.empty()) << e->name;
    }

    const std::string replayed = replay_from(*e, std::move(decoded), /*jobs=*/0);
    EXPECT_EQ(replayed, rec.json) << e->name;
  }
}

TEST(ReplayRoundTrip, ReplayIsJobsIndependent) {
  const Experiment* e = ExperimentRegistry::instance().find("es_churn_sweep");
  ASSERT_NE(e, nullptr);
  Recorded rec = record(*e, /*jobs=*/1);

  const auto bytes = replay::encode(rec.file);
  const std::string serial = replay_from(*e, replay::decode(bytes), /*jobs=*/1);
  const std::string pooled = replay_from(*e, replay::decode(bytes), /*jobs=*/8);
  EXPECT_EQ(serial, rec.json);
  EXPECT_EQ(pooled, rec.json);
}

TEST(ReplayRoundTrip, ScalingExperimentsReplayJobsIndependently) {
  // The scaling sweeps (E15 runs a tree-dissemination mode; E16 runs heavy
  // churn grids) must round-trip through the v2 trace format — which now
  // carries dissemination mode + fanout in the config key — and replay
  // byte-identically at any worker count. Grids capped via max_n (the
  // record/replay helpers) to keep the suite affordable.
  for (const char* name : {"scaling_messages", "scaling_churn"}) {
    SCOPED_TRACE(name);
    const Experiment* e = ExperimentRegistry::instance().find(name);
    ASSERT_NE(e, nullptr);
    Recorded rec = record(*e, /*jobs=*/1);
    EXPECT_FALSE(rec.file.traces.empty());

    const auto bytes = replay::encode(rec.file);
    const std::string serial = replay_from(*e, replay::decode(bytes), /*jobs=*/1);
    const std::string pooled = replay_from(*e, replay::decode(bytes), /*jobs=*/8);
    EXPECT_EQ(serial, rec.json);
    EXPECT_EQ(pooled, rec.json);
  }
}

TEST(ReplayRoundTrip, TreeDisseminationTracesCarryTheirMode) {
  // A recorded tree-mode run must not be conflated with a flat-mode run of
  // the same parameters: the trace key includes the dissemination fields,
  // so the E15 scenario (a tree cell) round-trips to a tree replay.
  const Experiment* e = ExperimentRegistry::instance().find("scaling_messages");
  ASSERT_NE(e, nullptr);
  ASSERT_TRUE(e->scenario);
  const harness::ExperimentConfig cfg = e->scenario();
  EXPECT_EQ(cfg.dissemination, harness::Dissemination::kTree);
  const std::uint64_t key = replay::fingerprint(cfg);
  harness::ExperimentConfig flat = cfg;
  flat.dissemination = harness::Dissemination::kFlat;
  EXPECT_NE(replay::fingerprint(flat), key);
  harness::ExperimentConfig fanout8 = cfg;
  fanout8.tree_fanout = 8;
  EXPECT_NE(replay::fingerprint(fanout8), key);
}

TEST(ReplayRoundTrip, ShardedExperimentsReplayJobsIndependently) {
  // E19/E20 run the sharded pipeline: every shard's net verdicts interleave
  // into one stream, churn records carry shard tags, and the whole thing
  // must still round-trip through real file bytes and replay byte-identically
  // at any worker count.
  for (const char* name : {"shard_throughput", "shard_tail_churn"}) {
    SCOPED_TRACE(name);
    const Experiment* e = ExperimentRegistry::instance().find(name);
    ASSERT_NE(e, nullptr);
    Recorded rec = record(*e, /*jobs=*/1);
    EXPECT_FALSE(rec.file.traces.empty());

    const auto bytes = replay::encode(rec.file);
    const std::string serial = replay_from(*e, replay::decode(bytes), /*jobs=*/1);
    const std::string pooled = replay_from(*e, replay::decode(bytes), /*jobs=*/8);
    EXPECT_EQ(serial, rec.json);
    EXPECT_EQ(pooled, rec.json);
  }
}

TEST(ReplayRoundTrip, ShardedTracesCarryTheirKeyspaceConfig) {
  // A recorded sharded run must never be conflated with a differently
  // partitioned or differently skewed run of the same base parameters: the
  // v4 config appendix (shard count, key count, zipf exponent, read mix,
  // storm phases) is part of the trace fingerprint.
  const Experiment* e = ExperimentRegistry::instance().find("shard_tail_churn");
  ASSERT_NE(e, nullptr);
  ASSERT_TRUE(e->scenario);
  const harness::ExperimentConfig cfg = e->scenario();
  EXPECT_GT(cfg.shard_count, 0u);
  const std::uint64_t key = replay::fingerprint(cfg);

  harness::ExperimentConfig other = cfg;
  other.shard_count = cfg.shard_count * 2;
  EXPECT_NE(replay::fingerprint(other), key);
  other = cfg;
  other.workload.zipf_s = 0.0;
  EXPECT_NE(replay::fingerprint(other), key);
  other = cfg;
  other.workload.read_frac = 0.5;
  EXPECT_NE(replay::fingerprint(other), key);
  other = cfg;
  other.workload.key_count *= 2;
  EXPECT_NE(replay::fingerprint(other), key);
  other = cfg;
  other.workload.storm_every = 0;
  other.workload.storm_len = 0;
  EXPECT_NE(replay::fingerprint(other), key);
}

TEST(ReplayRoundTrip, ScriptedScenarioExperimentsEnrollInTheSession) {
  // E1/E2/E5 build their world by hand (ScriptedCluster) rather than via
  // run_experiment; the scenario_key plumbing must still capture them.
  for (const char* name : {"fig3_join_wait", "lemma2_active_bound",
                           "impossibility_async"}) {
    SCOPED_TRACE(name);
    const Experiment* e = ExperimentRegistry::instance().find(name);
    ASSERT_NE(e, nullptr);
    Recorded rec = record(*e, /*jobs=*/1);
    EXPECT_FALSE(rec.file.traces.empty());
    const std::string replayed =
        replay_from(*e, replay::decode(replay::encode(rec.file)), /*jobs=*/1);
    EXPECT_EQ(replayed, rec.json);
  }
}

}  // namespace
}  // namespace dynreg::bench
