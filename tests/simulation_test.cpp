// sim::Simulation — clock advancement, run_until semantics, seeded RNG.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"

namespace dynreg::sim {
namespace {

TEST(Simulation, RunUntilExecutesEventsInHorizonAndAdvancesClock) {
  Simulation sim(1);
  std::vector<Time> fired;
  sim.schedule_at(10, [&] { fired.push_back(sim.now()); });
  sim.schedule_at(20, [&] { fired.push_back(sim.now()); });
  sim.schedule_at(31, [&] { fired.push_back(sim.now()); });

  sim.run_until(30);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(sim.now(), 30u);
  ASSERT_TRUE(sim.next_event_time().has_value());
  EXPECT_EQ(*sim.next_event_time(), 31u);

  sim.run_until(40);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_EQ(sim.now(), 40u);
  EXPECT_FALSE(sim.next_event_time().has_value());
}

TEST(Simulation, ScheduledEventsCanScheduleWithinHorizon) {
  Simulation sim(1);
  int chain = 0;
  std::function<void()> tick = [&] {
    ++chain;
    if (chain < 5) sim.schedule_after(2, tick);
  };
  sim.schedule_at(0, tick);
  sim.run_until(100);
  EXPECT_EQ(chain, 5);
}

TEST(Simulation, RngIsDeterministicPerSeed) {
  Simulation a(42), b(42), c(43);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.rng().next();
    EXPECT_EQ(va, b.rng().next());
    if (va != c.rng().next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Simulation, RngUniformIntStaysInRange) {
  Simulation sim(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = sim.rng().uniform_int(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
  }
}

}  // namespace
}  // namespace dynreg::sim
