// Pins the sort-once + sweep RegularityChecker to the original quadratic
// algorithm: the reference below is a line-for-line copy of the pre-rewrite
// checker, and both run over the same recorded histories — randomized
// multi-writer workloads with incomplete ops, duplicate values, boundary
// ties and bottom reads. Violation counts, per-violation fields, and the
// concurrent-pair count must be identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "consistency/history.h"
#include "consistency/regularity_checker.h"

namespace dynreg::consistency {
namespace {

/// The pre-optimization checker, kept verbatim as the semantic reference.
RegularityReport reference_check(const History& history) {
  RegularityReport report;
  const auto& writes = history.writes();
  const auto& reads = history.reads();

  for (std::size_t i = 1; i < writes.size(); ++i) {
    for (std::size_t j = i + 1; j < writes.size(); ++j) {
      const auto& a = writes[i];
      const auto& b = writes[j];
      const bool disjoint = (a.end && *a.end < b.begin) || (b.end && *b.end < a.begin);
      if (!disjoint) ++report.concurrent_write_pairs;
    }
  }

  for (std::size_t ri = 0; ri < reads.size(); ++ri) {
    const auto& r = reads[ri];
    if (!r.end) continue;
    ++report.reads_checked;

    sim::Time latest_begin = 0;
    for (const auto& w : writes) {
      if (w.end && *w.end < r.begin) latest_begin = std::max(latest_begin, w.begin);
    }

    std::set<Value> legal;
    for (const auto& w : writes) {
      const bool completed_before = w.end && *w.end < r.begin;
      const bool concurrent = !completed_before && w.begin <= *r.end;
      if (concurrent) {
        legal.insert(w.value);
      } else if (completed_before && *w.end >= latest_begin) {
        legal.insert(w.value);
      }
    }

    if (legal.count(r.value) == 0) {
      Violation v;
      v.read = ri;
      v.returned = r.value;
      v.detail = r.value == kBottom ? "read returned bottom" : "stale read";
      report.violations.push_back(v);
    }
  }
  return report;
}

void expect_reports_identical(const History& history) {
  const RegularityReport expected = reference_check(history);
  const RegularityReport actual = RegularityChecker{}.check(history);

  EXPECT_EQ(actual.reads_checked, expected.reads_checked);
  EXPECT_EQ(actual.concurrent_write_pairs, expected.concurrent_write_pairs);
  ASSERT_EQ(actual.violations.size(), expected.violations.size());
  for (std::size_t i = 0; i < expected.violations.size(); ++i) {
    EXPECT_EQ(actual.violations[i].read, expected.violations[i].read);
    EXPECT_EQ(actual.violations[i].returned, expected.violations[i].returned);
    EXPECT_EQ(actual.violations[i].detail, expected.violations[i].detail);
  }
}

/// Randomized history: overlapping multi-writer writes (some incomplete,
/// some with duplicate values), reads returning a mix of plausible, stale,
/// duplicate and bottom values, with frequent equal-tick boundaries.
History make_random_history(std::uint32_t seed, std::size_t n_writes, std::size_t n_reads) {
  std::mt19937 rng(seed);
  History history(0);
  std::vector<Value> issued{0};

  sim::Time t = 1;
  for (std::size_t i = 0; i < n_writes; ++i) {
    t += rng() % 4;  // frequent same-tick begins
    // Duplicate an earlier value 1 time in 8, otherwise a fresh one.
    const Value v = (rng() % 8 == 0 && !issued.empty())
                        ? issued[rng() % issued.size()]
                        : static_cast<Value>(100 + i);
    issued.push_back(v);
    const auto id = history.begin_write(rng() % 5, t, v);
    if (rng() % 6 != 0) {  // 1 in 6 writes never completes
      history.complete_write(id, t + rng() % 7);  // may end the tick it began
    }
  }

  const sim::Time horizon = t + 10;
  for (std::size_t i = 0; i < n_reads; ++i) {
    const sim::Time begin = rng() % horizon;
    const auto id = history.begin_read(5 + rng() % 5, begin);
    if (rng() % 8 == 0) continue;  // some reads never complete
    const sim::Time end = begin + rng() % 9;
    // Mostly some issued value (stale or fresh), occasionally bottom or a
    // value nobody wrote.
    Value v;
    switch (rng() % 10) {
      case 0:
        v = kBottom;
        break;
      case 1:
        v = static_cast<Value>(99999);
        break;
      default:
        v = issued[rng() % issued.size()];
        break;
    }
    history.complete_read(id, end, v);
  }
  return history;
}

TEST(RegularityEquivalence, EmptyAndTinyHistories) {
  expect_reports_identical(History(0));

  History one_write(0);
  const auto w = one_write.begin_write(0, 5, 1);
  one_write.complete_write(w, 7);
  expect_reports_identical(one_write);

  History read_only(0);
  const auto r = read_only.begin_read(1, 3);
  read_only.complete_read(r, 4, 0);
  expect_reports_identical(read_only);
}

TEST(RegularityEquivalence, RandomizedHistoriesMatchReference) {
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE(seed);
    expect_reports_identical(make_random_history(seed, 40, 120));
  }
}

TEST(RegularityEquivalence, LargeHistoryMatchesReference) {
  expect_reports_identical(make_random_history(424242, 200, 1000));
}

}  // namespace
}  // namespace dynreg::consistency
