// churn::System — bootstrap, join/leave orchestration, and the chronicle's
// active-set accounting that the Lemma 2 analyses trust.
#include <gtest/gtest.h>

#include <memory>

#include "churn/system.h"
#include "dynreg/sync_register.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace dynreg::churn {
namespace {

System::NodeFactory sync_factory(SyncConfig cfg) {
  return [cfg](sim::ProcessId id, node::Context& ctx, bool initial) {
    return std::make_unique<SyncRegisterNode>(id, ctx, cfg, initial);
  };
}

TEST(ChurnSystem, BootstrapCreatesActiveInitialMembers) {
  sim::Simulation sim(1);
  net::Network net(sim, std::make_unique<net::FixedDelay>(1));
  SystemConfig cfg;
  cfg.initial_size = 5;
  System system(sim, net, cfg, std::make_unique<NoChurn>(), sync_factory(SyncConfig{}));
  system.bootstrap();

  EXPECT_EQ(system.member_count(), 5u);
  EXPECT_EQ(system.active_count(), 5u);
  EXPECT_EQ(system.chronicle().active_at(0), 5u);
  EXPECT_NE(system.find(0), nullptr);
  EXPECT_EQ(system.find(99), nullptr);
}

TEST(ChurnSystem, SpawnedJoinerActivatesAfterJoinProtocol) {
  sim::Simulation sim(1);
  net::Network net(sim, std::make_unique<net::FixedDelay>(1));
  SystemConfig cfg;
  cfg.initial_size = 3;
  SyncConfig sync;
  sync.delta = 5;
  System system(sim, net, cfg, std::make_unique<NoChurn>(), sync_factory(sync));
  system.bootstrap();

  const sim::ProcessId joiner = system.spawn();
  EXPECT_EQ(system.joins_started(), 1u);
  EXPECT_EQ(system.active_count(), 3u);  // join still in progress

  sim.run_until(100);
  EXPECT_EQ(system.joins_completed(), 1u);
  EXPECT_EQ(system.active_count(), 4u);
  const auto& rec = system.chronicle().records().at(joiner);
  ASSERT_TRUE(rec.activated.has_value());
  // wait delta + collect 2*delta.
  EXPECT_EQ(*rec.activated, 3 * sync.delta);
}

TEST(ChurnSystem, LeaveRemovesMemberAndChroniclesIt) {
  sim::Simulation sim(1);
  net::Network net(sim, std::make_unique<net::FixedDelay>(1));
  SystemConfig cfg;
  cfg.initial_size = 4;
  System system(sim, net, cfg, std::make_unique<NoChurn>(), sync_factory(SyncConfig{}));
  system.bootstrap();

  sim.run_until(10);
  system.leave(2);
  EXPECT_EQ(system.member_count(), 3u);
  EXPECT_EQ(system.find(2), nullptr);
  EXPECT_FALSE(net.attached(2));

  const auto& rec = system.chronicle().records().at(2);
  ASSERT_TRUE(rec.left.has_value());
  EXPECT_EQ(*rec.left, 10u);
  EXPECT_EQ(system.chronicle().active_at(9), 4u);
  EXPECT_EQ(system.chronicle().active_at(10), 3u);
}

TEST(ChurnSystem, ConstantChurnKeepsSizeRoughlyConstantWhileComposingOver) {
  sim::Simulation sim(7);
  net::Network net(sim, std::make_unique<net::FixedDelay>(1));
  SystemConfig cfg;
  cfg.initial_size = 20;
  SyncConfig sync;
  sync.delta = 3;
  // c = 0.05: one join and one leave per tick on average.
  System system(sim, net, cfg, std::make_unique<ConstantChurn>(0.05), sync_factory(sync));
  system.bootstrap();
  sim.run_until(200);

  EXPECT_EQ(system.member_count(), 20u);  // paired joins/leaves keep n constant
  EXPECT_GT(system.joins_started(), 150u);
  EXPECT_GT(system.joins_completed(), 100u);
}

TEST(Chronicle, ActiveThroughCountsWholeWindowOnly) {
  Chronicle chron;
  chron.note_enter(0, 0, true);
  chron.note_activated(0, 0);
  chron.note_enter(1, 0, true);
  chron.note_activated(1, 0);
  chron.note_left(1, 15);
  chron.note_enter(2, 5, false);
  chron.note_activated(2, 12);

  // Window [0, 10]: process 0 throughout; 1 leaves at 15 > 10 so it counts;
  // 2 activates too late.
  EXPECT_EQ(chron.active_through(0, 10), 2u);
  // Window [10, 20]: 1 is gone by 15, 2 activated at 12 > 10.
  EXPECT_EQ(chron.active_through(10, 20), 1u);
  // Window [12, 20]: 2 qualifies now.
  EXPECT_EQ(chron.active_through(12, 20), 2u);

  // The sliding minimum agrees with direct evaluation.
  EXPECT_EQ(chron.min_active_through_window(10, 30),
            std::min({chron.active_through(5, 15), chron.active_through(10, 20),
                      chron.active_through(20, 30)}));
}

}  // namespace
}  // namespace dynreg::churn
