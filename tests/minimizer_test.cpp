// Counterexample minimizer: a searched Figure-3a-style violation shrinks to
// a locally-minimal handful of essential decisions that still violates on
// replay, the narrative is pinned against a golden file (regression for the
// whole record -> search -> minimize pipeline), and a non-violating input
// comes back unchanged.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "harness/experiment.h"
#include "replay/hooks.h"
#include "replay/minimize.h"
#include "replay/search.h"
#include "replay/trace_io.h"

namespace dynreg::replay {
namespace {

/// The seeded scenario the golden narrative is pinned to — E14's search
/// demo target: the no-wait ablation under legal churn, where search finds
/// a compact counterexample (a joiner misses the in-flight WRITE).
harness::ExperimentConfig golden_scenario() {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kSyncNoWait;
  cfg.n = 10;
  cfg.delta = 5;
  cfg.duration = 400;
  cfg.leave_policy = churn::LeavePolicy::kOldestActiveFirst;
  cfg.workload.read_interval = 3;
  cfg.workload.write_interval = 20;
  cfg.churn_rate = 0.4 * cfg.sync_churn_threshold();
  return cfg;
}

SearchResult golden_search(const harness::ExperimentConfig& cfg) {
  const Trace base = record_base(cfg);
  SearchOptions opt;  // defaults: seed 1, budget 400 below
  opt.budget = 400;
  opt.jobs = 4;
  return search(cfg, base, opt);
}

TEST(Minimizer, ShrinksASearchedViolationToEssentialDecisions) {
  const harness::ExperimentConfig cfg = golden_scenario();
  const SearchResult found = golden_search(cfg);
  ASSERT_TRUE(found.first_violation.has_value())
      << "search no longer finds the seeded violation";

  const MinimizeResult min = minimize(cfg, found.counterexample);
  EXPECT_TRUE(min.violating);
  EXPECT_GT(min.atoms, 0u);
  EXPECT_GE(min.essential, 1u);
  EXPECT_LE(min.essential, 30u) << "counterexample no longer human-sized";
  EXPECT_LT(min.essential, min.atoms / 10) << "ddmin barely reduced the trace";
  EXPECT_GT(min.tests, 0u);

  // The minimized trace itself still violates on replay.
  RunHooks hooks;
  hooks.replay = &min.trace;
  EXPECT_TRUE(violates(harness::run_experiment(cfg, hooks)));

  // Local minimality contract: the narrative lists exactly the essential
  // decisions.
  EXPECT_NE(min.narrative.find("counterexample: " + std::to_string(min.essential)),
            std::string::npos)
      << min.narrative;
  EXPECT_NE(min.narrative.find("stale read"), std::string::npos) << min.narrative;
}

TEST(Minimizer, NarrativeMatchesTheGoldenFile) {
  const harness::ExperimentConfig cfg = golden_scenario();
  const SearchResult found = golden_search(cfg);
  ASSERT_TRUE(found.first_violation.has_value());
  const MinimizeResult min = minimize(cfg, found.counterexample);

  const std::string path = std::string(DYNREG_TESTDATA_DIR) + "/minimized_narrative.txt";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path;
  std::ostringstream golden;
  golden << in.rdbuf();
  // Byte-for-byte: the whole pipeline (recorder, perturbation draws, ddmin
  // schedule, narrative rendering) feeds this string; any drift is a
  // determinism regression or an intentional format change — regenerate via
  // tests/testdata/README.md in the latter case.
  EXPECT_EQ(min.narrative, golden.str());
}

TEST(Minimizer, MinimizedTraceRoundTripsThroughTheFileFormat) {
  const harness::ExperimentConfig cfg = golden_scenario();
  const SearchResult found = golden_search(cfg);
  ASSERT_TRUE(found.first_violation.has_value());
  const MinimizeResult min = minimize(cfg, found.counterexample);

  TraceFile file;
  file.config = cfg;
  file.traces = {min.trace};
  const TraceFile back = decode(encode(file));
  ASSERT_EQ(back.traces.size(), 1u);
  RunHooks hooks;
  hooks.replay = &back.traces[0];
  EXPECT_TRUE(violates(harness::run_experiment(*back.config, hooks)));
}

TEST(Minimizer, NonViolatingInputComesBackUnchanged) {
  const harness::ExperimentConfig cfg = golden_scenario();
  const Trace base = record_base(cfg);  // the unperturbed schedule is clean
  const MinimizeResult min = minimize(cfg, base);
  EXPECT_FALSE(min.violating);
  TraceFile fa;
  fa.traces = {base};
  TraceFile fb;
  fb.traces = {min.trace};
  EXPECT_EQ(encode(fa), encode(fb));
}

}  // namespace
}  // namespace dynreg::replay
