// Consistency checkers — the guards the whole bench suite trusts. Negative
// tests: a hand-built stale read and a new/old inversion must be flagged; a
// valid regular history must pass.
#include <gtest/gtest.h>

#include "consistency/history.h"
#include "consistency/regularity_checker.h"

namespace dynreg::consistency {
namespace {

TEST(RegularityChecker, ValidRegularHistoryPasses) {
  History h(0);
  // w1: [10, 15] -> 1; w2: [30, 35] -> 2.
  const auto w1 = h.begin_write(0, 10, 1);
  h.complete_write(w1, 15);
  const auto w2 = h.begin_write(0, 30, 2);
  h.complete_write(w2, 35);

  // Read of the initial value before any write.
  auto r = h.begin_read(1, 5);
  h.complete_read(r, 5, 0);
  // Read concurrent with w1 may return old or new.
  r = h.begin_read(1, 12);
  h.complete_read(r, 13, 0);
  r = h.begin_read(2, 12);
  h.complete_read(r, 13, 1);
  // Read strictly after w1 must return 1.
  r = h.begin_read(1, 20);
  h.complete_read(r, 21, 1);
  // Read strictly after w2 must return 2.
  r = h.begin_read(1, 40);
  h.complete_read(r, 41, 2);

  const auto report = RegularityChecker{}.check(h);
  EXPECT_EQ(report.reads_checked, 5u);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.violation_rate(), 0.0);
  EXPECT_EQ(report.concurrent_write_pairs, 0u);
}

TEST(RegularityChecker, StaleReadIsFlagged) {
  History h(0);
  const auto w1 = h.begin_write(0, 10, 1);
  h.complete_write(w1, 15);

  // Begins at 20, strictly after w1 completed, yet returns the initial 0.
  const auto r = h.begin_read(1, 20);
  h.complete_read(r, 21, 0);

  const auto report = RegularityChecker{}.check(h);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].returned, 0);
  EXPECT_EQ(report.violations[0].detail, "stale read");
  EXPECT_FALSE(report.ok());
}

TEST(RegularityChecker, ReadOfBottomAfterAWriteIsFlagged) {
  History h(0);
  const auto r = h.begin_read(1, 20);
  h.complete_read(r, 21, kBottom);

  const auto report = RegularityChecker{}.check(h);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].detail, "read returned bottom");
}

TEST(RegularityChecker, IncompleteAndConcurrentWritesStayLegal) {
  History h(0);
  // w1 never completes: its value remains legal, and it supersedes nothing.
  h.begin_write(0, 10, 1);
  auto r = h.begin_read(1, 50);
  h.complete_read(r, 51, 1);
  r = h.begin_read(1, 50);
  h.complete_read(r, 51, 0);  // initial value also still legal

  // Two overlapping writes: both values legal after both complete.
  const auto w2 = h.begin_write(2, 60, 2);
  const auto w3 = h.begin_write(3, 62, 3);
  h.complete_write(w2, 70);
  h.complete_write(w3, 72);
  r = h.begin_read(1, 80);
  h.complete_read(r, 81, 2);
  r = h.begin_read(1, 80);
  h.complete_read(r, 81, 3);

  const auto report = RegularityChecker{}.check(h);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.concurrent_write_pairs, 3u);  // w1-w2, w1-w3 (w1 open), w2-w3
}

TEST(AtomicityChecker, NewOldInversionIsCounted) {
  History h(0);
  const auto w1 = h.begin_write(0, 10, 1);
  h.complete_write(w1, 20);

  // r1 (concurrent with w1) returns the new value and finishes; r2 starts
  // strictly later and returns the old value: a new/old inversion — legal
  // for a regular register, counted by the atomicity checker.
  auto r1 = h.begin_read(1, 12);
  h.complete_read(r1, 13, 1);
  auto r2 = h.begin_read(2, 15);
  h.complete_read(r2, 16, 0);

  const auto atom = AtomicityChecker{}.check(h);
  EXPECT_EQ(atom.reads_checked, 2u);
  EXPECT_EQ(atom.inversion_count, 1u);

  // The same history is perfectly regular.
  EXPECT_TRUE(RegularityChecker{}.check(h).ok());
}

TEST(AtomicityChecker, OrderedReadsShowNoInversion) {
  History h(0);
  const auto w1 = h.begin_write(0, 10, 1);
  h.complete_write(w1, 20);
  auto r1 = h.begin_read(1, 12);
  h.complete_read(r1, 13, 0);  // old first
  auto r2 = h.begin_read(2, 15);
  h.complete_read(r2, 16, 1);  // then new: fine

  EXPECT_EQ(AtomicityChecker{}.check(h).inversion_count, 0u);
}

}  // namespace
}  // namespace dynreg::consistency
