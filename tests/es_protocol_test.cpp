// Smoke tests for the eventually synchronous register: operations issued
// under pre-GST asynchrony block, then complete after stabilization; safety
// holds throughout (Theorems 3-4).
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "churn/system.h"
#include "dynreg/es_register.h"
#include "harness/experiment.h"
#include "net/delay_model.h"
#include "net/network.h"

namespace dynreg {
namespace {

TEST(EsProtocol, ReadBlockedBeforeGstCompletesAfterGst) {
  constexpr sim::Time kGst = 400;
  sim::Simulation sim(17);
  net::Network net(sim, std::make_unique<net::EventuallySynchronousDelay>(
                            kGst, /*pre_gst_max=*/100000, /*delta=*/5));
  churn::SystemConfig sys_cfg;
  sys_cfg.initial_size = 5;
  EsConfig ec;
  ec.n = 5;
  churn::System system(
      sim, net, sys_cfg, std::make_unique<churn::NoChurn>(),
      [ec](sim::ProcessId id, node::Context& ctx, bool initial) {
        return std::make_unique<EsRegisterNode>(id, ctx, ec, initial);
      });
  system.bootstrap();

  auto* reader = dynamic_cast<RegisterNode*>(system.find(2));
  ASSERT_NE(reader, nullptr);
  std::optional<Value> got;
  std::optional<sim::Time> completed_at;
  reader->read(OpContext{}, [&](OpOutcome o, Value v) {
    ASSERT_EQ(o, OpOutcome::kOk);
    got = v;
    completed_at = sim.now();
  });

  // Pre-GST the quorum cannot form (every delay is huge).
  sim.run_until(kGst);
  EXPECT_FALSE(got.has_value());

  // Shortly after GST the retransmitted read gathers its majority.
  sim.run_until(kGst + 200);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 0);  // the initial value: no write happened
  EXPECT_GT(*completed_at, kGst);
}

TEST(EsProtocol, SingleNodeSystemCompletesViaSelfQuorum) {
  // n == 1: the self-vote is the whole majority; reads, writes and the
  // atomic-read write-back must all complete without any network traffic.
  sim::Simulation sim(1);
  net::Network net(sim, std::make_unique<net::FixedDelay>(1));
  churn::SystemConfig sys_cfg;
  sys_cfg.initial_size = 1;
  EsConfig ec;
  ec.n = 1;
  ec.atomic_reads = true;
  churn::System system(
      sim, net, sys_cfg, std::make_unique<churn::NoChurn>(),
      [ec](sim::ProcessId id, node::Context& ctx, bool initial) {
        return std::make_unique<EsRegisterNode>(id, ctx, ec, initial);
      });
  system.bootstrap();

  auto* reg = dynamic_cast<RegisterNode*>(system.find(0));
  ASSERT_NE(reg, nullptr);
  bool wrote = false;
  std::optional<Value> got;
  reg->write(OpContext{}, 7, [&wrote](OpOutcome o) { wrote = o == OpOutcome::kOk; });
  reg->read(OpContext{}, [&got](OpOutcome o, Value v) {
    if (o == OpOutcome::kOk) got = v;
  });
  sim.run_until(50);
  EXPECT_TRUE(wrote);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);
}

TEST(EsProtocol, CompletesOperationsAndStaysRegularAtTheBound) {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kEventuallySync;
  cfg.timing = harness::Timing::kEventuallySynchronous;
  cfg.gst = 0;
  cfg.n = 11;
  cfg.delta = 5;
  cfg.duration = 1500;
  cfg.churn_rate = cfg.es_churn_threshold();
  cfg.seed = 21;
  cfg.workload.read_interval = 10;
  cfg.workload.write_interval = 60;

  const auto r = harness::run_experiment(cfg);
  EXPECT_GT(r.reads_completed, 100u);
  EXPECT_GT(r.writes_completed, 15u);
  EXPECT_GT(r.read_completion_rate(), 0.9);
  EXPECT_TRUE(r.regularity.ok());
  EXPECT_TRUE(r.majority_active_always);
}

TEST(EsProtocol, AtomicReadsRemoveInversionsRegularReadsMayNot) {
  // Statistical contrast at high read density: the write-back variant must
  // show exactly zero inversions; the regular variant is also *allowed*
  // zero, so only the atomic side is asserted.
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kEventuallySync;
  cfg.timing = harness::Timing::kEventuallySynchronous;
  cfg.gst = 0;
  cfg.es_atomic_reads = true;
  cfg.n = 9;
  cfg.delta = 8;
  cfg.duration = 1200;
  cfg.churn_kind = harness::ChurnKind::kNone;
  cfg.seed = 4;
  cfg.workload.read_interval = 2;
  cfg.workload.write_interval = 20;

  const auto r = harness::run_experiment(cfg);
  EXPECT_GT(r.atomicity.reads_checked, 200u);
  EXPECT_EQ(r.atomicity.inversion_count, 0u);
  EXPECT_TRUE(r.regularity.ok());
}

}  // namespace
}  // namespace dynreg
