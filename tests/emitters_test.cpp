// Golden tests for the machine-readable emitters: JSON writer formatting
// and escaping, DataTable JSON/CSV renderings.
#include <gtest/gtest.h>

#include "stats/data_table.h"
#include "stats/json_writer.h"

namespace dynreg::stats {
namespace {

TEST(JsonWriter, FormatDoubleIsShortestRoundTrip) {
  EXPECT_EQ(JsonWriter::format_double(0.2), "0.2");
  EXPECT_EQ(JsonWriter::format_double(3.0), "3");
  EXPECT_EQ(JsonWriter::format_double(-0.0), "0");
  EXPECT_EQ(JsonWriter::format_double(0.1 + 0.2), "0.30000000000000004");
  EXPECT_EQ(JsonWriter::format_double(1.0 / 3.0), "0.3333333333333333");
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonWriter::format_double(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonWriter::format_double(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, GoldenDocument) {
  JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value("e1");
  w.key("xs");
  w.begin_array();
  w.value(1.5);
  w.value(std::uint64_t{7});
  w.value(true);
  w.null();
  w.end_array();
  w.key("empty");
  w.begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"name\": \"e1\",\n"
            "  \"xs\": [\n"
            "    1.5,\n"
            "    7,\n"
            "    true,\n"
            "    null\n"
            "  ],\n"
            "  \"empty\": {}\n"
            "}");
}

DataTable sample_table() {
  DataTable t({"label", "value", "with,comma"});
  t.add_row({Cell::str("plain"), Cell::num(0.5, 2), Cell::str("quote\"inside")});
  t.add_row({Cell::str("second"), Cell::num(12.0), Cell::str("multi\nline")});
  return t;
}

TEST(DataTable, CsvQuotesSpecialFields) {
  EXPECT_EQ(sample_table().to_csv(),
            "label,value,\"with,comma\"\n"
            "plain,0.5,\"quote\"\"inside\"\n"
            "second,12,\"multi\nline\"\n");
}

TEST(DataTable, TextUsesDisplayPrecision) {
  const std::string text = sample_table().to_text();
  EXPECT_NE(text.find("0.50"), std::string::npos);  // precision 2
  EXPECT_NE(text.find("12"), std::string::npos);    // shortest form
}

TEST(DataTable, JsonKeepsNumbersTyped) {
  JsonWriter w;
  w.begin_object();
  sample_table().append_json(w);
  w.end_object();
  const std::string doc = w.str();
  // Numbers are emitted bare (full fidelity), strings quoted.
  EXPECT_NE(doc.find("\"plain\",\n      0.5,"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"columns\""), std::string::npos);
  EXPECT_NE(doc.find("\"rows\""), std::string::npos);
}

TEST(DataTable, RowCountAndColumnsAccessible)
{
  const DataTable t = sample_table();
  EXPECT_EQ(t.columns().size(), 3u);
  EXPECT_EQ(t.rows().size(), 2u);
}

}  // namespace
}  // namespace dynreg::stats
