// churn::System's SoA membership columns vs a naive map model.
//
// The SoA refactor (id-indexed columns + sorted id vectors) must be
// observably indistinguishable from the std::map<id, Member> it replaced:
// same member/active sets, same ascending iteration order (the RNG draw
// sequence depends on it), same join accounting — across long random
// interleavings of spawn / leave / time advancement, including leaves that
// land while a join is still pending. Run under ASan/UBSan this also sweeps
// the column-growth and erase-by-shift paths for memory errors.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <vector>

#include "churn/churn_model.h"
#include "churn/system.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "node/node.h"
#include "sim/simulation.h"

namespace dynreg::churn {
namespace {

/// Delay before a joiner of id `i` activates — varied so activations
/// interleave with spawns and leaves instead of clustering.
sim::Duration join_delay(sim::ProcessId id) { return 1 + id % 7; }

/// Minimal protocol stand-in: initial members are active at birth; joiners
/// activate join_delay(id) ticks later (unless churned out first — Context
/// invalidation must suppress the pending notify_active).
class StubNode final : public node::Node {
 public:
  StubNode(sim::ProcessId id, node::Context& ctx, bool initial) : Node(id) {
    if (initial) {
      ctx.notify_active();
    } else {
      ctx.schedule_after(join_delay(id), [&ctx] { ctx.notify_active(); });
    }
  }
  void on_message(sim::ProcessId, const net::Payload&) override {}
};

/// The naive model the columns are checked against: one map entry per
/// member, activation promoted by explicit time sweep.
struct Model {
  struct Rec {
    bool active = false;
    std::optional<sim::Time> activates_at;  // pending join
  };
  std::map<sim::ProcessId, Rec> members;
  std::uint64_t joins_started = 0;
  std::uint64_t joins_completed = 0;
  std::uint64_t joins_abandoned = 0;

  void spawn(sim::ProcessId id, sim::Time now) {
    ++joins_started;
    members[id] = Rec{false, now + join_delay(id)};
  }
  void leave(sim::ProcessId id) {
    const auto it = members.find(id);
    if (!it->second.active) ++joins_abandoned;
    members.erase(it);
  }
  void promote_through(sim::Time now) {
    for (auto& [id, rec] : members) {
      if (!rec.active && rec.activates_at && *rec.activates_at <= now) {
        rec.active = true;
        rec.activates_at.reset();
        ++joins_completed;
      }
    }
  }
  std::vector<sim::ProcessId> active_ids() const {
    std::vector<sim::ProcessId> out;
    for (const auto& [id, rec] : members) {
      if (rec.active) out.push_back(id);
    }
    return out;  // map iteration: ascending id — the order the seed had
  }
  std::vector<sim::ProcessId> member_ids() const {
    std::vector<sim::ProcessId> out;
    for (const auto& [id, rec] : members) out.push_back(id);
    return out;
  }
};

TEST(MembershipProperty, SoaColumnsMatchNaiveMapModel) {
  for (const std::uint32_t seed : {3u, 41u, 977u}) {
    SCOPED_TRACE(seed);
    sim::Simulation sim(seed);
    net::Network net(sim, std::make_unique<net::FixedDelay>(1));
    SystemConfig cfg;
    cfg.initial_size = 50;
    System system(sim, net, cfg, std::make_unique<NoChurn>(),
                  [](sim::ProcessId id, node::Context& ctx, bool initial) {
                    return std::make_unique<StubNode>(id, ctx, initial);
                  });
    system.bootstrap();

    Model model;
    for (sim::ProcessId id = 0; id < 50; ++id) {
      model.members[id] = Model::Rec{true, std::nullopt};
    }

    std::mt19937 rng(seed);
    sim::Time now = 0;
    for (int op = 0; op < 10000; ++op) {
      const std::uint32_t roll = rng() % 100;
      if (roll < 35) {
        const sim::ProcessId id = system.spawn();
        model.spawn(id, now);
      } else if (roll < 65 && !model.members.empty()) {
        // Pick the victim from the model so the test, not the subject,
        // decides who leaves. Pending joiners are fair game.
        const auto ids = model.member_ids();
        const sim::ProcessId victim = ids[rng() % ids.size()];
        system.leave(victim);
        model.leave(victim);
      } else {
        now += 1 + rng() % 3;
        sim.run_until(now);
        model.promote_through(now);
      }

      // Full-state comparison every step: sets, order, and counters.
      ASSERT_EQ(system.member_count(), model.members.size());
      ASSERT_EQ(system.active_ids(), model.active_ids());
      ASSERT_EQ(system.joins_started(), model.joins_started);
      ASSERT_EQ(system.joins_completed(), model.joins_completed);
      ASSERT_EQ(system.joins_abandoned(), model.joins_abandoned);
    }

    // find() agrees with the model on membership, including for every id
    // ever issued (exercises the null-column "not a member" encoding).
    for (sim::ProcessId id = 0; id < 50 + model.joins_started; ++id) {
      ASSERT_EQ(system.find(id) != nullptr, model.members.count(id) == 1)
          << "id " << id;
    }
    // Iteration order is ascending id — what the old map gave the RNG.
    const auto& active = system.active_ids();
    ASSERT_TRUE(std::is_sorted(active.begin(), active.end()));
  }
}

}  // namespace
}  // namespace dynreg::churn
