// The shard layer: key->shard mapping stability, the sharded run pipeline's
// determinism, per-shard metrics and consistency, write-throughput scaling
// with shard count, and shard-aware record/replay through the v4 trace.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "harness/experiment.h"
#include "replay/hooks.h"
#include "replay/trace.h"
#include "shard/keyspace.h"
#include "sim/event_queue.h"

namespace dynreg::shard {
namespace {

harness::ExperimentConfig sharded_config() {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kSync;
  cfg.n = 48;
  cfg.shard_count = 4;
  cfg.delta = 5;
  cfg.duration = 400;
  cfg.seed = 21;
  cfg.churn_kind = harness::ChurnKind::kNone;
  cfg.workload.clients = 24;
  cfg.workload.key_count = 64;
  cfg.workload.zipf_s = 0.99;
  cfg.workload.read_frac = 0.8;
  return cfg;
}

TEST(Keyspace, MappingIsPureAndInRange) {
  for (std::size_t count : {1u, 2u, 7u, 16u}) {
    for (Key k = 0; k < 500; ++k) {
      const ShardId s = shard_of(k, count);
      EXPECT_LT(s, count);
      EXPECT_EQ(s, shard_of(k, count));  // pure: same answer every time
    }
  }
  // count <= 1 collapses to shard 0.
  EXPECT_EQ(shard_of(123, 0), 0u);
  EXPECT_EQ(shard_of(123, 1), 0u);
}

TEST(Keyspace, HashPartitionSpreadsConsecutiveKeys) {
  constexpr std::size_t kShards = 8;
  std::vector<std::size_t> per_shard(kShards, 0);
  for (Key k = 0; k < 8000; ++k) ++per_shard[shard_of(k, kShards)];
  for (std::size_t s = 0; s < kShards; ++s) {
    // Mean 1000/shard; a splitmix-mixed assignment stays well within 20%.
    EXPECT_GT(per_shard[s], 800u) << s;
    EXPECT_LT(per_shard[s], 1200u) << s;
  }
}

TEST(ShardedRun, DeterministicAcrossRepeats) {
  const harness::ExperimentConfig cfg = sharded_config();
  const harness::MetricsReport a = harness::run_experiment(cfg, replay::RunHooks{});
  const harness::MetricsReport b = harness::run_experiment(cfg, replay::RunHooks{});
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.reads_completed, b.reads_completed);
  EXPECT_EQ(a.writes_completed, b.writes_completed);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].ops_completed, b.shards[s].ops_completed) << s;
    EXPECT_EQ(a.shards[s].latency_p50, b.shards[s].latency_p50) << s;
  }
}

TEST(ShardedRun, ServesKeyedTrafficOnEveryShard) {
  const harness::MetricsReport r =
      harness::run_experiment(sharded_config(), replay::RunHooks{});
  ASSERT_EQ(r.shards.size(), 4u);
  std::uint64_t total = 0;
  for (const harness::ShardMetrics& sm : r.shards) {
    EXPECT_GT(sm.reads_completed, 0u);
    EXPECT_GT(sm.writes_completed, 0u);
    EXPECT_EQ(sm.ops_completed, sm.reads_completed + sm.writes_completed);
    total += sm.ops_completed;
  }
  EXPECT_EQ(total, r.reads_completed + r.writes_completed);
  EXPECT_GT(r.ops_per_tick, 0.0);
  EXPECT_GE(r.shard_hot_p99, r.shard_cold_p99);
  EXPECT_GE(r.shard_skew, 1.0);
  // Every shard is an independent instance of the paper's protocol: the
  // combined history check must stay violation-free.
  EXPECT_TRUE(r.regularity.ok());
  EXPECT_GT(r.regularity.reads_checked, 0u);
  EXPECT_TRUE(r.majority_active_always);
}

TEST(ShardedRun, WriteThroughputScalesWithShardCount) {
  // Saturate the writers: write-heavy keyed traffic, many sessions. One
  // shard = one writer FIFO; four shards = four. The aggregate completed
  // write count must grow.
  harness::ExperimentConfig cfg = sharded_config();
  cfg.workload.read_frac = 0.2;
  cfg.workload.clients = 48;

  cfg.shard_count = 1;
  const harness::MetricsReport one = harness::run_experiment(cfg, replay::RunHooks{});
  cfg.shard_count = 4;
  const harness::MetricsReport four = harness::run_experiment(cfg, replay::RunHooks{});

  EXPECT_GT(four.writes_completed, one.writes_completed);
  EXPECT_GT(four.ops_per_tick, one.ops_per_tick);
}

TEST(ShardedRun, RecordsAndReplaysByteIdentically) {
  harness::ExperimentConfig cfg = sharded_config();
  cfg.churn_kind = harness::ChurnKind::kConstant;  // churn stream included
  cfg.churn_rate = 0.02;

  replay::Trace trace;
  trace.seed = cfg.seed;
  replay::RunHooks record;
  record.record = &trace;
  const harness::MetricsReport recorded = harness::run_experiment(cfg, record);

  EXPECT_FALSE(trace.net.empty());
  EXPECT_FALSE(trace.picks.empty());
  ASSERT_FALSE(trace.churn.empty());
  // Churn records must carry shard routing tags (v4): with 4 shards all
  // ticking, more than one shard appears in the stream.
  bool nonzero_shard = false;
  for (const replay::ChurnRecord& r : trace.churn) {
    if (r.shard != 0) nonzero_shard = true;
    EXPECT_LT(r.shard, 4u);
  }
  EXPECT_TRUE(nonzero_shard);

  replay::RunHooks replay_hooks;
  replay_hooks.replay = &trace;
  const harness::MetricsReport replayed = harness::run_experiment(cfg, replay_hooks);

  EXPECT_EQ(replayed.trace_hash, recorded.trace_hash);
  EXPECT_EQ(replayed.reads_completed, recorded.reads_completed);
  EXPECT_EQ(replayed.writes_completed, recorded.writes_completed);
  EXPECT_EQ(replayed.joins_completed, recorded.joins_completed);
  EXPECT_EQ(replayed.read_latency_p99, recorded.read_latency_p99);
  ASSERT_EQ(replayed.shards.size(), recorded.shards.size());
  for (std::size_t s = 0; s < recorded.shards.size(); ++s) {
    EXPECT_EQ(replayed.shards[s].ops_completed, recorded.shards[s].ops_completed) << s;
    EXPECT_EQ(replayed.shards[s].latency_p99, recorded.shards[s].latency_p99) << s;
  }
}

}  // namespace
}  // namespace dynreg::shard
