// Protocol property tests for the synchronous register (Theorem 1): below
// the churn threshold the protocol is regular — no stale reads, no reads of
// bottom — across seeds, even with adversarial departures.
#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "churn/system.h"
#include "dynreg/sync_register.h"

namespace dynreg {
namespace {

TEST(SyncProtocol, RegularAtHalfThresholdAcrossSeeds) {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kSync;
  cfg.n = 20;
  cfg.delta = 5;
  cfg.duration = 1500;
  cfg.leave_policy = churn::LeavePolicy::kOldestActiveFirst;
  cfg.churn_rate = 0.5 * cfg.sync_churn_threshold();
  cfg.workload.read_interval = 4;
  cfg.workload.write_interval = 30;

  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    cfg.seed = seed;
    const auto r = harness::run_experiment(cfg);
    EXPECT_GT(r.regularity.reads_checked, 100u) << "seed " << seed;
    EXPECT_TRUE(r.regularity.ok()) << "seed " << seed;
    EXPECT_EQ(r.reads_of_bottom, 0u) << "seed " << seed;
    EXPECT_GT(r.joins_completed, 0u) << "seed " << seed;
    // Lemma 2's bound is positive at c = threshold/2, so every 3-delta
    // window kept an active process.
    EXPECT_GT(r.min_active_3delta, 0.0) << "seed " << seed;
  }
}

TEST(SyncProtocol, ReadsAreLocalAndWritesTakeDelta) {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kSync;
  cfg.n = 10;
  cfg.delta = 7;
  cfg.duration = 500;
  cfg.churn_kind = harness::ChurnKind::kNone;
  cfg.workload.read_interval = 5;
  cfg.workload.write_interval = 40;
  cfg.seed = 5;

  const auto r = harness::run_experiment(cfg);
  EXPECT_EQ(r.read_latency_mean, 0.0);   // fast reads: local, zero ticks
  EXPECT_EQ(r.write_latency_mean, 7.0);  // exactly delta
  EXPECT_EQ(r.read_completion_rate(), 1.0);
}

TEST(SyncProtocol, JoinerAdoptsCurrentValue) {
  sim::Simulation sim(3);
  net::Network net(sim, std::make_unique<net::SynchronousDelay>(5));
  churn::SystemConfig sys_cfg;
  sys_cfg.initial_size = 3;
  SyncConfig sc;
  sc.delta = 5;
  churn::System system(
      sim, net, sys_cfg, std::make_unique<churn::NoChurn>(),
      [sc](sim::ProcessId id, node::Context& ctx, bool initial) {
        return std::make_unique<SyncRegisterNode>(id, ctx, sc, initial);
      });
  system.bootstrap();

  auto* writer = dynamic_cast<RegisterNode*>(system.find(0));
  ASSERT_NE(writer, nullptr);
  bool write_done = false;
  writer->write(OpContext{}, 42,
                [&write_done](OpOutcome o) { write_done = o == OpOutcome::kOk; });
  sim.run_until(20);
  ASSERT_TRUE(write_done);

  const sim::ProcessId joiner = system.spawn();
  sim.run_until(100);
  auto* joined = dynamic_cast<RegisterNode*>(system.find(joiner));
  ASSERT_NE(joined, nullptr);
  EXPECT_TRUE(joined->is_active());
  EXPECT_EQ(joined->local_value(), 42);
}

TEST(SyncProtocol, FastJoinVariantShortensJoinLatency) {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kSync;
  cfg.n = 20;
  cfg.delta = 10;
  cfg.duration = 1000;
  cfg.churn_rate = 0.01;
  cfg.seed = 9;
  cfg.workload.read_interval = 5;
  cfg.workload.write_interval = 50;

  const auto standard = harness::run_experiment(cfg);
  cfg.sync_delta_pp = 2;  // footnote 4: collect delta + delta' instead of 2*delta
  const auto fast = harness::run_experiment(cfg);

  EXPECT_EQ(standard.join_latency_mean, 30.0);  // delta + 2*delta
  EXPECT_EQ(fast.join_latency_mean, 22.0);      // delta + delta + delta'
  EXPECT_TRUE(fast.regularity.ok());
}

}  // namespace
}  // namespace dynreg
