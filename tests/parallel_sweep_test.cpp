// The seed-parallel sweep engine: worker-count independence (the
// determinism contract), the cross-seed aggregates, and the rule that
// violation counts are never silently averaged away.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "harness/aggregate.h"
#include "harness/sweep.h"
#include "harness/thread_pool.h"
#include "stats/json_writer.h"

namespace dynreg::harness {
namespace {

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 100;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for(/*jobs=*/4, kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  EXPECT_THROW(parallel_for(3, 8,
                            [](std::size_t i) {
                              if (i == 5) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForRunsAllBodiesDespiteExceptionAtAnyJobCount) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::atomic<int>> hits(8);
    EXPECT_THROW(parallel_for(jobs, hits.size(),
                              [&](std::size_t i) {
                                hits[i].fetch_add(1);
                                if (i == 2) throw std::runtime_error("boom");
                              }),
                 std::runtime_error);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
    }
  }
}

TEST(ThreadPool, ResolveJobsZeroMeansHardware) {
  EXPECT_GE(ThreadPool::resolve_jobs(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_jobs(3), 3u);
}

TEST(Aggregate, SummarizesKnownSamples) {
  const Aggregate a = aggregate({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(a.mean, 2.5);
  EXPECT_DOUBLE_EQ(a.stddev, std::sqrt(5.0 / 3.0));  // sample stddev
  EXPECT_DOUBLE_EQ(a.min, 1.0);
  EXPECT_DOUBLE_EQ(a.max, 4.0);
  EXPECT_DOUBLE_EQ(a.p50, 3.0);  // nearest-rank: sorted[floor(0.5*4)]
  EXPECT_DOUBLE_EQ(a.p99, 4.0);
}

TEST(Aggregate, EmptyAndSingletonAreDefined) {
  const Aggregate empty = aggregate({});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  const Aggregate one = aggregate({7.0});
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);  // not NaN
  EXPECT_DOUBLE_EQ(one.p99, 7.0);
}

TEST(Aggregate, ViolationsReportedAsTotalAndWorstSeedNotMean) {
  // Three seeds: clean, clean, catastrophic. A mean would say "1.67
  // violations"; the aggregate must preserve both the total and the max.
  std::vector<MetricsReport> runs(3);
  for (auto& r : runs) r.regularity.reads_checked = 100;
  runs[2].regularity.violations.resize(5);
  runs[2].atomicity.inversion_count = 4;
  runs[0].majority_active_always = runs[1].majority_active_always = true;
  runs[2].majority_active_always = false;

  const AggregatedMetrics m = aggregate_metrics(runs);
  EXPECT_EQ(m.seeds, 3u);
  EXPECT_EQ(m.violations_total, 5u);
  EXPECT_EQ(m.violations_max_seed, 5u);
  EXPECT_EQ(m.inversions_total, 4u);
  EXPECT_EQ(m.inversions_max_seed, 4u);
  EXPECT_NEAR(m.majority_active_fraction, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.violation_rate.mean, (0.05) / 3.0, 1e-12);
}

ExperimentConfig cheap_config() {
  ExperimentConfig cfg;
  cfg.protocol = Protocol::kSync;
  cfg.n = 6;
  cfg.delta = 3;
  cfg.duration = 300;
  cfg.workload.read_interval = 5;
  cfg.workload.write_interval = 20;
  return cfg;
}

/// Serializes every aggregate field of every point — any nondeterminism
/// (scheduling-dependent result placement, float accumulation order) shows
/// up as a byte difference.
std::string serialize(const std::vector<SweepPoint>& points) {
  stats::JsonWriter w;
  w.begin_array();
  for (const auto& p : points) {
    const AggregatedMetrics m = p.aggregate();
    w.begin_object();
    w.key("x");
    w.value(p.x);
    w.key("seeds");
    w.value(static_cast<std::uint64_t>(m.seeds));
    const std::vector<std::pair<const char*, Aggregate>> metrics{
        {"read_completion", m.read_completion},
        {"join_completion", m.join_completion},
        {"read_latency", m.read_latency},
        {"violation_rate", m.violation_rate},
        {"min_active_3delta", m.min_active_3delta}};
    for (const auto& [name, agg] : metrics) {
      w.key(name);
      w.begin_array();
      w.value(agg.mean);
      w.value(agg.stddev);
      w.value(agg.min);
      w.value(agg.max);
      w.value(agg.p50);
      w.value(agg.p99);
      w.end_array();
    }
    w.key("violations_total");
    w.value(m.violations_total);
    w.key("violations_max_seed");
    w.value(m.violations_max_seed);
    w.end_object();
  }
  w.end_array();
  return w.str();
}

TEST(ParallelSweep, OutputIndependentOfWorkerCount) {
  const ExperimentConfig base = cheap_config();
  const std::vector<double> xs{0.0, 0.01, 0.03};
  const auto configure = [](ExperimentConfig& cfg, double c) { cfg.churn_rate = c; };

  const auto serial = parallel_sweep(base, xs, configure, /*seeds=*/4, /*jobs=*/1);
  const auto parallel = parallel_sweep(base, xs, configure, /*seeds=*/4, /*jobs=*/8);
  EXPECT_EQ(serialize(serial), serialize(parallel));
}

TEST(ParallelSweep, MatchesLegacySerialSweep) {
  const ExperimentConfig base = cheap_config();
  const std::vector<double> xs{0.0, 0.02};
  const auto configure = [](ExperimentConfig& cfg, double c) { cfg.churn_rate = c; };

  const auto legacy = sweep(base, xs, configure, /*seeds=*/3);
  const auto pooled = parallel_sweep(base, xs, configure, /*seeds=*/3, /*jobs=*/4);
  EXPECT_EQ(serialize(legacy), serialize(pooled));
}

TEST(ParallelSweep, ReplicaSeedsMatchHistoricalDerivation) {
  EXPECT_EQ(replica_seed(1, 0), 1u + 1009u);
  EXPECT_EQ(replica_seed(1, 2), 1u + 3 * 1009u);
}

TEST(RunReplicas, SeedOrderIsStable) {
  const ExperimentConfig base = cheap_config();
  const auto serial = run_replicas(base, 4, /*jobs=*/1);
  const auto pooled = run_replicas(base, 4, /*jobs=*/4);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].reads_completed, pooled[i].reads_completed) << i;
    EXPECT_EQ(serial[i].writes_completed, pooled[i].writes_completed) << i;
    EXPECT_DOUBLE_EQ(serial[i].read_latency_mean, pooled[i].read_latency_mean) << i;
  }
}

}  // namespace
}  // namespace dynreg::harness
