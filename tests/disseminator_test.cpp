// The Disseminator seam: flat and tree fan-out must be interchangeable at
// the protocol's level of observation — every broadcast reaches exactly the
// processes attached at send time, exactly once each, with the LOGICAL
// broadcaster as the observed sender. The tree pays latency, never
// correctness. Also pins the byte-identity anchor: an explicit
// FlatDisseminator is draw-for-draw identical to the built-in direct path.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string_view>
#include <vector>

#include "net/delay_model.h"
#include "net/disseminator.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace dynreg::net {
namespace {

struct Ping final : Payload {
  std::string_view type_name() const override { return "test.ping"; }
};

struct Delivery {
  sim::ProcessId to;
  sim::ProcessId from;
  sim::Time at;
};

/// Runs one broadcast from `sender` over `n` attached processes and returns
/// every delivery observed, in delivery order.
std::vector<Delivery> run_broadcast(std::unique_ptr<Disseminator> d,
                                    std::size_t n, sim::ProcessId sender,
                                    std::uint32_t seed = 1,
                                    double loss_rate = 0.0) {
  sim::Simulation sim(seed);
  Network net(sim, std::make_unique<net::FixedDelay>(3));
  net.set_disseminator(std::move(d));
  net.set_loss_rate(loss_rate);
  std::vector<Delivery> log;
  for (sim::ProcessId id = 0; id < n; ++id) {
    net.attach(id, [&log, id, &sim](sim::ProcessId from, const Payload&) {
      log.push_back({id, from, sim.now()});
    });
  }
  net.broadcast(sender, make_payload<Ping>());
  sim.run();
  return log;
}

std::set<sim::ProcessId> recipients(const std::vector<Delivery>& log) {
  std::set<sim::ProcessId> out;
  for (const Delivery& d : log) out.insert(d.to);
  return out;
}

TEST(Disseminator, TreeDeliversExactlyOnceToTheFlatRecipientSet) {
  for (const std::uint32_t fanout : {1u, 2u, 3u, 4u, 8u}) {
    SCOPED_TRACE(fanout);
    const auto flat = run_broadcast(nullptr, 33, /*sender=*/7);
    const auto tree =
        run_broadcast(std::make_unique<TreeDisseminator>(fanout), 33, 7);

    // Same recipient set, and exactly one copy each — no duplicate reaches
    // any process however the tree partitions the forwarding.
    EXPECT_EQ(recipients(tree), recipients(flat));
    std::map<sim::ProcessId, int> copies;
    for (const Delivery& d : tree) ++copies[d.to];
    EXPECT_EQ(copies.size(), 32u);
    for (const auto& [id, count] : copies) {
      EXPECT_EQ(count, 1) << "process " << id;
      EXPECT_NE(id, 7u);  // no self-delivery
    }
  }
}

TEST(Disseminator, TreeHandlersObserveTheLogicalSender) {
  const auto tree = run_broadcast(std::make_unique<TreeDisseminator>(2), 20, 4);
  ASSERT_EQ(tree.size(), 19u);
  for (const Delivery& d : tree) {
    // Relays are transparent: replies must target the broadcaster, so every
    // handler sees process 4 — never the parent that physically forwarded.
    EXPECT_EQ(d.from, 4u) << "delivery to " << d.to;
  }
}

TEST(Disseminator, TreeAccumulatesLatencyByDepthFlatDoesNot) {
  const auto flat = run_broadcast(nullptr, 32, 0);
  for (const Delivery& d : flat) EXPECT_EQ(d.at, 3u);  // one hop for everyone

  const auto tree = run_broadcast(std::make_unique<TreeDisseminator>(2), 32, 0);
  sim::Time max_at = 0;
  for (const Delivery& d : tree) max_at = std::max(max_at, d.at);
  // Binary tree over 31 recipients: the deepest positions sit >= 4 hops down.
  EXPECT_GE(max_at, 4u * 3u);
}

TEST(Disseminator, ExplicitFlatIsDrawIdenticalToBuiltInPath) {
  // Same seed, loss on: if the explicit FlatDisseminator consumed the RNG
  // any differently from the built-in loop, the per-copy loss verdicts (and
  // so the delivery log) would diverge. This is the run --all byte-identity
  // anchor in miniature.
  const auto builtin =
      run_broadcast(nullptr, 40, 9, /*seed=*/5, /*loss_rate=*/0.35);
  const auto flat = run_broadcast(std::make_unique<FlatDisseminator>(), 40, 9,
                                  /*seed=*/5, /*loss_rate=*/0.35);
  ASSERT_EQ(flat.size(), builtin.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i].to, builtin[i].to);
    EXPECT_EQ(flat[i].from, builtin[i].from);
    EXPECT_EQ(flat[i].at, builtin[i].at);
  }
}

TEST(Disseminator, TreeLossDropsOnlyThatRecipientsCopy) {
  // With loss, a lost interior edge must not silence its subtree: across
  // many broadcasts the delivered+lost accounting stays per-copy Bernoulli,
  // i.e. every broadcast accounts for exactly n-1 copies.
  sim::Simulation sim(11);
  Network net(sim, std::make_unique<net::FixedDelay>(2));
  net.set_disseminator(std::make_unique<TreeDisseminator>(2));
  net.set_loss_rate(0.4);
  constexpr std::size_t kN = 25;
  std::map<sim::ProcessId, int> copies;
  for (sim::ProcessId id = 0; id < kN; ++id) {
    net.attach(id, [&copies, id](sim::ProcessId, const Payload&) { ++copies[id]; });
  }
  constexpr int kBroadcasts = 50;
  for (int i = 0; i < kBroadcasts; ++i) net.broadcast(0, make_payload<Ping>());
  sim.run();

  EXPECT_EQ(net.stats().delivered + net.stats().dropped_loss,
            kBroadcasts * (kN - 1));
  EXPECT_GT(net.stats().dropped_loss, 0u);
  EXPECT_EQ(copies.count(0), 0u);  // no self-delivery to the broadcaster
  for (sim::ProcessId id = 1; id < kN; ++id) {
    EXPECT_LE(copies[id], kBroadcasts) << "duplicate copies at " << id;
    // A permanently-silenced subtree would show a node with zero deliveries
    // across 50 independent 0.4-loss draws (p ~ 1e-20).
    EXPECT_GT(copies[id], 0) << "process " << id << " never reached";
  }
}

}  // namespace
}  // namespace dynreg::net
