// The client/operation API: typed outcomes for departures mid-operation on
// every protocol, exactly-once deadline expiry, retry re-issue with correct
// history intervals, and late-completion discard.
#include <gtest/gtest.h>

#include <memory>

#include "churn/system.h"
#include "client/client.h"
#include "consistency/history.h"
#include "dynreg/abd_register.h"
#include "dynreg/es_register.h"
#include "dynreg/sync_register.h"
#include "net/delay_model.h"
#include "net/network.h"

namespace dynreg {
namespace {

using client::Client;
using client::OpHandle;
using client::OpOptions;

/// A full deployment (sim, net, system, history, client) for one protocol.
struct Deployment {
  Deployment(churn::System::NodeFactory factory, std::size_t n,
             std::unique_ptr<net::DelayModel> delays, sim::Time horizon = 1000,
             std::uint64_t seed = 7)
      : sim(seed), net(sim, std::move(delays)), history(0) {
    churn::SystemConfig sys_cfg;
    sys_cfg.initial_size = n;
    system = std::make_unique<churn::System>(sim, net, sys_cfg,
                                             std::make_unique<churn::NoChurn>(),
                                             std::move(factory));
    client = std::make_unique<Client>(sim, *system, history, horizon);
    system->bootstrap();
  }

  sim::Simulation sim;
  net::Network net;
  consistency::History history;
  std::unique_ptr<churn::System> system;
  std::unique_ptr<Client> client;
};

churn::System::NodeFactory sync_factory(sim::Duration delta) {
  SyncConfig sc;
  sc.delta = delta;
  return [sc](sim::ProcessId id, node::Context& ctx, bool initial) {
    return std::make_unique<SyncRegisterNode>(id, ctx, sc, initial);
  };
}

churn::System::NodeFactory es_factory(std::size_t n) {
  EsConfig ec;
  ec.n = n;
  return [ec](sim::ProcessId id, node::Context& ctx, bool initial) {
    return std::make_unique<EsRegisterNode>(id, ctx, ec, initial);
  };
}

churn::System::NodeFactory abd_factory(std::size_t n) {
  AbdConfig ac;
  ac.n = n;
  return [ac](sim::ProcessId id, node::Context& ctx, bool initial) {
    return std::make_unique<AbdRegisterNode>(id, ctx, ac, initial);
  };
}

// --- departures mid-operation, per protocol ---------------------------------

TEST(ClientApi, SyncWriteDroppedOnDeparture) {
  Deployment d(sync_factory(5), 3, std::make_unique<net::SynchronousDelay>(5));
  const OpHandle h = d.client->write(1, 42);
  d.sim.schedule_at(2, [&] { d.system->leave(1); });  // mid-write: delta is 5
  d.sim.run_until(100);

  ASSERT_TRUE(h.resolved());
  EXPECT_EQ(h.outcome(), OpOutcome::kDroppedOnDeparture);
  EXPECT_EQ(d.client->stats().writes_issued, 1u);
  EXPECT_EQ(d.client->stats().writes_completed, 0u);
  EXPECT_EQ(d.client->stats().writes_dropped, 1u);
  // The history interval stays open (the write may have taken effect).
  ASSERT_EQ(d.history.writes().size(), 2u);  // initial pseudo-write + ours
  EXPECT_FALSE(d.history.writes()[1].end.has_value());
}

TEST(ClientApi, SyncReadIsInstantaneousAndCannotBeDropped) {
  // The sync protocol's fast reads resolve inside the invocation — a
  // departure can never catch one in flight.
  Deployment d(sync_factory(5), 3, std::make_unique<net::SynchronousDelay>(5));
  const OpHandle h = d.client->read(1);
  ASSERT_TRUE(h.resolved());
  EXPECT_EQ(h.outcome(), OpOutcome::kOk);
}

TEST(ClientApi, EsReadAndWriteDroppedOnDeparture) {
  Deployment d(es_factory(5), 5, std::make_unique<net::SynchronousDelay>(5));
  const OpHandle r = d.client->read(2);
  const OpHandle w = d.client->write(3, 7);
  d.sim.schedule_at(1, [&] {
    d.system->leave(2);  // before any reply can arrive (delays >= 1)
    d.system->leave(3);
  });
  d.sim.run_until(200);

  ASSERT_TRUE(r.resolved());
  EXPECT_EQ(r.outcome(), OpOutcome::kDroppedOnDeparture);
  ASSERT_TRUE(w.resolved());
  EXPECT_EQ(w.outcome(), OpOutcome::kDroppedOnDeparture);
  EXPECT_EQ(d.client->stats().reads_dropped, 1u);
  EXPECT_EQ(d.client->stats().writes_dropped, 1u);
  EXPECT_EQ(d.client->stats().reads_completed, 0u);
  EXPECT_EQ(d.client->stats().writes_completed, 0u);
}

TEST(ClientApi, AbdReadAndWriteDroppedOnDeparture) {
  Deployment d(abd_factory(5), 5, std::make_unique<net::SynchronousDelay>(5));
  const OpHandle r = d.client->read(2);
  const OpHandle w = d.client->write(3, 9);
  d.sim.schedule_at(1, [&] {
    d.system->leave(2);
    d.system->leave(3);
  });
  d.sim.run_until(200);

  ASSERT_TRUE(r.resolved());
  EXPECT_EQ(r.outcome(), OpOutcome::kDroppedOnDeparture);
  ASSERT_TRUE(w.resolved());
  EXPECT_EQ(w.outcome(), OpOutcome::kDroppedOnDeparture);
}

// --- deadlines ---------------------------------------------------------------

TEST(ClientApi, DeadlineFiresTimedOutExactlyOnce) {
  // Quorum of 3 in a 2-member deployment: the read can never complete. The
  // deadline must fire kTimedOut once — and only once, even when the node's
  // departure later tries to resolve the same operation as dropped.
  Deployment d(es_factory(5), 2, std::make_unique<net::SynchronousDelay>(5));
  int resolutions = 0;
  OpOptions opts;
  opts.deadline = 50;
  const OpHandle h =
      d.client->read(0, opts, [&resolutions](const OpHandle&) { ++resolutions; });
  d.sim.schedule_at(100, [&] { d.system->leave(0); });
  d.sim.run_until(500);

  ASSERT_TRUE(h.resolved());
  EXPECT_EQ(h.outcome(), OpOutcome::kTimedOut);
  EXPECT_EQ(h.responded_at(), 50u);
  EXPECT_EQ(resolutions, 1);
  EXPECT_EQ(d.client->stats().reads_timed_out, 1u);
  EXPECT_EQ(d.client->stats().reads_dropped, 0u);  // the late drop is discarded
}

TEST(ClientApi, LateCompletionAfterTimeoutIsDiscarded) {
  // Replies crawl (fixed delay 40); the deadline expires first. The
  // protocol-side read completes afterwards, but the record must stay
  // kTimedOut and the history read must stay open.
  Deployment d(es_factory(3), 3, std::make_unique<net::FixedDelay>(40));
  OpOptions opts;
  opts.deadline = 5;
  const OpHandle h = d.client->read(1, opts);
  d.sim.run_until(500);

  ASSERT_TRUE(h.resolved());
  EXPECT_EQ(h.outcome(), OpOutcome::kTimedOut);
  EXPECT_EQ(d.client->stats().reads_completed, 0u);
  ASSERT_EQ(d.history.reads().size(), 1u);
  EXPECT_FALSE(d.history.reads()[0].end.has_value());
}

// --- retries -----------------------------------------------------------------

TEST(ClientApi, RetryReissuesDroppedReadAndHistoryRecordsBothIntervals) {
  Deployment d(es_factory(5), 5, std::make_unique<net::SynchronousDelay>(5));
  OpOptions opts;
  opts.retry.max_attempts = 2;
  opts.retry.backoff = 3;
  const OpHandle h = d.client->read(2, opts);
  d.sim.schedule_at(1, [&] { d.system->leave(2); });
  d.sim.run_until(500);

  ASSERT_TRUE(h.resolved());
  EXPECT_EQ(h.outcome(), OpOutcome::kOk);
  EXPECT_EQ(h.attempts(), 2u);
  EXPECT_EQ(h.value(), 0);  // the initial value
  EXPECT_EQ(d.client->stats().retries, 1u);
  // Issued counts operations, not dispatches: the retry shows up in
  // `retries` (and in its own history interval), not in `reads_issued`,
  // so completion rates stay per-op under retry policies.
  EXPECT_EQ(d.client->stats().reads_issued, 1u);
  EXPECT_EQ(d.client->stats().reads_dropped, 1u);
  EXPECT_EQ(d.client->stats().reads_completed, 1u);
  // Two history intervals: the dropped attempt stays open, the retried one
  // begins at the re-issue time and completes.
  ASSERT_EQ(d.history.reads().size(), 2u);
  EXPECT_FALSE(d.history.reads()[0].end.has_value());
  EXPECT_GE(d.history.reads()[1].begin, 1u + opts.retry.backoff);
  ASSERT_TRUE(d.history.reads()[1].end.has_value());
  EXPECT_EQ(d.history.reads()[1].value, 0);
}

TEST(ClientApi, RetryExhaustionKeepsFinalOutcome) {
  // Every attempt fails: the final outcome is the last attempt's failure,
  // and attempts stop at max_attempts.
  OpOptions opts;
  opts.deadline = 10;
  opts.retry.max_attempts = 2;
  opts.retry.backoff = 0;
  // Target a 7-quorum system with only 3 members: reads always time out.
  Deployment starved(es_factory(7), 3, std::make_unique<net::SynchronousDelay>(5));
  const OpHandle h = starved.client->read(0, opts);
  starved.sim.run_until(500);

  ASSERT_TRUE(h.resolved());
  EXPECT_EQ(h.outcome(), OpOutcome::kTimedOut);
  EXPECT_EQ(h.attempts(), 2u);
  EXPECT_EQ(starved.client->stats().reads_timed_out, 2u);
  EXPECT_EQ(starved.client->stats().retries, 1u);
}

// --- handles -----------------------------------------------------------------

TEST(ClientApi, HandleCarriesIdentityAndTimes) {
  Deployment d(es_factory(3), 3, std::make_unique<net::SynchronousDelay>(4));
  const OpHandle r = d.client->read(1);
  const OpHandle w = d.client->write(0, 5);
  EXPECT_EQ(r.id(), 0u);
  EXPECT_EQ(w.id(), 1u);
  EXPECT_EQ(r.type(), OpType::kRead);
  EXPECT_EQ(w.type(), OpType::kWrite);
  EXPECT_EQ(r.invoked_at(), 0u);
  d.sim.run_until(200);
  ASSERT_TRUE(r.resolved());
  ASSERT_TRUE(w.resolved());
  EXPECT_EQ(r.outcome(), OpOutcome::kOk);
  EXPECT_EQ(w.outcome(), OpOutcome::kOk);
  EXPECT_GT(r.responded_at(), r.invoked_at());
  // Latency samples match the handles' intervals.
  ASSERT_EQ(d.client->stats().read_latencies.size(), 1u);
  EXPECT_EQ(d.client->stats().read_latencies[0],
            static_cast<double>(r.responded_at() - r.invoked_at()));
}

}  // namespace
}  // namespace dynreg
