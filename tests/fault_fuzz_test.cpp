// Fault-plan fuzz: randomly generated (often extreme) fault campaigns must
// never crash the simulator — no UB, no assertion failures, no unhandled
// exceptions — under any protocol, including degenerate system sizes. The
// CI sanitizer job runs this under ASan/UBSan, which is where the test
// earns its keep: a dangling node pointer after an injected crash, or a
// payload rebuild of the wrong type, dies loudly here.
//
// The generator seed is fixed: the "random" campaigns are the same every
// run, so a failure is reproducible by iteration index alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "fault/plan.h"
#include "harness/experiment.h"

namespace dynreg::fault {
namespace {

using harness::ExperimentConfig;
using harness::Protocol;

// std::mt19937_64 (not sim::Rng) on purpose: this drives *test-case
// generation*, not simulated behavior — each generated config is itself
// fully deterministic once built.
fault::Plan random_plan(std::mt19937_64& gen) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  Plan plan;
  if (unit(gen) < 0.7) {
    plan.crash.rate = unit(gen) * 0.2;  // up to one crash per 5 ticks
    plan.crash.recover_fraction = unit(gen);
    plan.crash.recovery_delay = static_cast<sim::Duration>(gen() % 60);
    plan.crash.restart =
        gen() % 2 == 0 ? RestartState::kDurable : RestartState::kVolatile;
  }
  if (unit(gen) < 0.7) {
    plan.partition.rate = unit(gen) * 0.05;
    plan.partition.duration = static_cast<sim::Duration>(gen() % 400);
    plan.partition.fraction = unit(gen);  // may exceed any sane minority
    plan.partition.asymmetric = gen() % 2 == 0;
  }
  if (unit(gen) < 0.7) {
    plan.byzantine.fraction = unit(gen);
    plan.byzantine.transform_rate = unit(gen);
    plan.byzantine.equivocate = gen() % 2 == 0;
    plan.byzantine.stale_replay = gen() % 2 == 0;
    plan.byzantine.forge = gen() % 2 == 0;
    plan.byzantine.corrupt = gen() % 2 == 0;
  }
  plan.tick = 1 + static_cast<sim::Duration>(gen() % 4);
  return plan;
}

TEST(FaultFuzz, RandomCampaignsNeverCrashTheSimulator) {
  std::mt19937_64 gen(0xfadefadeULL);
  const Protocol protocols[] = {Protocol::kSync, Protocol::kEventuallySync,
                                Protocol::kAbd};
  for (int i = 0; i < 24; ++i) {
    SCOPED_TRACE(i);
    ExperimentConfig cfg;
    cfg.protocol = protocols[i % 3];
    if (cfg.protocol == Protocol::kEventuallySync) {
      cfg.timing = harness::Timing::kEventuallySynchronous;
      cfg.gst = 0;
    }
    cfg.n = 1 + static_cast<std::size_t>(gen() % 12);
    cfg.delta = 1 + static_cast<sim::Duration>(gen() % 8);
    cfg.duration = 300;
    cfg.seed = gen();
    cfg.workload.read_interval = 5;
    cfg.workload.write_interval = 25;
    cfg.fault = random_plan(gen);

    const auto report = harness::run_experiment(cfg);

    // Structural invariants any campaign must respect, however extreme:
    EXPECT_LE(report.faults_recoveries, report.faults_crashes);
    EXPECT_LE(report.faults_heals, report.faults_partitions);
    if (!cfg.fault.byzantine_enabled()) {
      EXPECT_EQ(report.msgs_transformed, 0u);
    }
    if (!cfg.fault.partition_enabled()) {
      EXPECT_EQ(report.msgs_dropped_partition, 0u);
    }
  }
}

TEST(FaultFuzz, ExtremeRatesAreSurvivable) {
  // The worst corner deliberately: every class at maximum heat on a tiny
  // system. Everything may time out or die; nothing may crash the process.
  for (const auto protocol :
       {Protocol::kSync, Protocol::kEventuallySync, Protocol::kAbd}) {
    ExperimentConfig cfg;
    cfg.protocol = protocol;
    if (protocol == Protocol::kEventuallySync) {
      cfg.timing = harness::Timing::kEventuallySynchronous;
      cfg.gst = 0;
    }
    cfg.n = 3;
    cfg.delta = 2;
    cfg.duration = 200;
    cfg.fault.crash.rate = 1.0;  // a crash every tick, system size 3
    cfg.fault.crash.recover_fraction = 1.0;
    cfg.fault.crash.recovery_delay = 0;
    cfg.fault.partition.rate = 1.0;
    cfg.fault.partition.duration = 50;
    cfg.fault.partition.fraction = 0.99;
    cfg.fault.byzantine.fraction = 1.0;
    cfg.fault.byzantine.transform_rate = 1.0;
    const auto report = harness::run_experiment(cfg);
    EXPECT_GT(report.faults_crashes, 0u);
  }
}

}  // namespace
}  // namespace dynreg::fault
