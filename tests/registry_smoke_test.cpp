// The experiment registry: every paper experiment is registered, lookup
// works, a cheap experiment runs end to end through the registry, and its
// JSON serialization is independent of the worker count.
#include <gtest/gtest.h>

#include "emit.h"
#include "registry.h"

namespace dynreg::bench {
namespace {

TEST(Registry, AllTwentyExperimentsRegistered) {
  const auto all = ExperimentRegistry::instance().list();
  ASSERT_EQ(all.size(), 20u);
  // Ordered by paper-experiment id (numerically: E2 before E10).
  EXPECT_EQ(all.front()->id, "E1");
  EXPECT_EQ(all.back()->id, "E20");
  for (const Experiment* e : all) {
    EXPECT_FALSE(e->name.empty());
    EXPECT_FALSE(e->paper_ref.empty());
    EXPECT_FALSE(e->grid.empty());
    EXPECT_TRUE(static_cast<bool>(e->run)) << e->name;
  }
}

TEST(Registry, FindByName) {
  EXPECT_NE(ExperimentRegistry::instance().find("sync_churn_sweep"), nullptr);
  EXPECT_EQ(ExperimentRegistry::instance().find("no_such_experiment"), nullptr);
}

TEST(Registry, EffectiveSeedsDefaultsAndOverrides) {
  const Experiment* e = ExperimentRegistry::instance().find("sync_churn_sweep");
  ASSERT_NE(e, nullptr);
  RunOptions opts;
  EXPECT_EQ(effective_seeds(*e, opts), e->default_seeds);
  opts.seeds = 9;
  EXPECT_EQ(effective_seeds(*e, opts), 9u);
}

TEST(Registry, Fig3RunsEndToEndAndReproducesTheFigure) {
  const Experiment* e = ExperimentRegistry::instance().find("fig3_join_wait");
  ASSERT_NE(e, nullptr);
  RunOptions opts;
  opts.jobs = 2;
  const ExperimentResult result = e->run(opts);
  ASSERT_EQ(result.sections.size(), 1u);
  const auto& rows = result.sections[0].table.rows();
  ASSERT_EQ(rows.size(), 8u);
  // Rows 0-3: no-wait variant violates; rows 4-7: the paper's protocol is ok.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(rows[i].back().text, "VIOLATION") << i;
  for (std::size_t i = 4; i < 8; ++i) EXPECT_EQ(rows[i].back().text, "ok") << i;
}

TEST(Registry, JsonSerializationIndependentOfJobs) {
  const Experiment* e = ExperimentRegistry::instance().find("fig3_join_wait");
  ASSERT_NE(e, nullptr);
  RunOptions serial;
  serial.jobs = 1;
  RunOptions pooled;
  pooled.jobs = 4;
  const std::string a = to_json(*e, 1, e->run(serial));
  const std::string b = to_json(*e, 1, e->run(pooled));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find("jobs"), std::string::npos);  // execution detail: never emitted
}

}  // namespace
}  // namespace dynreg::bench
