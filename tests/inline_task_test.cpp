// sim::InlineTask — storage selection, move semantics, and destruction
// accounting. Runs under ASan in CI, so the destruction-count cases double
// as leak/double-free detectors for both the in-place and heap paths.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>

#include "sim/inline_task.h"

namespace dynreg::sim {
namespace {

TEST(InlineTask, SmallCaptureStoredInPlace) {
  int hits = 0;
  int* p = &hits;
  InlineTask t([p] { ++*p; });
  EXPECT_TRUE(t.is_inline());
  t();
  t();
  EXPECT_EQ(hits, 2);
}

TEST(InlineTask, CapacityBoundaryStoredInPlace) {
  struct Capture {
    unsigned char bytes[InlineTask::kInlineCapacity - sizeof(int*)] = {};
    int* counter;
  };
  static_assert(sizeof(Capture) == InlineTask::kInlineCapacity);
  int hits = 0;
  Capture c{{}, &hits};
  InlineTask t([c] { ++*c.counter; });
  EXPECT_TRUE(t.is_inline());
  t();
  EXPECT_EQ(hits, 1);
}

TEST(InlineTask, OversizedCaptureFallsBackToHeap) {
  struct Big {
    unsigned char bytes[InlineTask::kInlineCapacity + 1] = {};
    int* counter = nullptr;
  };
  int hits = 0;
  Big big;
  big.counter = &hits;
  InlineTask t([big] { ++*big.counter; });
  EXPECT_FALSE(t.is_inline());
  t();
  EXPECT_EQ(hits, 1);
}

TEST(InlineTask, MoveTransfersOwnership) {
  int hits = 0;
  int* p = &hits;
  InlineTask a([p] { ++*p; });
  InlineTask b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): contract under test
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  InlineTask c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(hits, 2);
}

// Counts constructions/destructions of a non-trivially-copyable capture so
// the tests can assert exact balance (no leaks, no double-destroy).
struct Counted {
  explicit Counted(int* live) : live_(live) { ++*live_; }
  Counted(const Counted& o) : live_(o.live_) { ++*live_; }
  Counted(Counted&& o) noexcept : live_(o.live_) { ++*live_; }
  ~Counted() { --*live_; }
  int* live_;
};

TEST(InlineTask, DestroysInPlaceCaptureExactlyOnce) {
  int live = 0;
  {
    Counted counted(&live);
    InlineTask t([counted] {});
    EXPECT_TRUE(t.is_inline());
    EXPECT_GE(live, 2);  // original + stored copy
  }
  EXPECT_EQ(live, 0);
}

TEST(InlineTask, DestroysHeapCaptureExactlyOnce) {
  int live = 0;
  {
    Counted counted(&live);
    unsigned char pad[InlineTask::kInlineCapacity] = {};
    InlineTask t([counted, pad] { (void)pad; });
    EXPECT_FALSE(t.is_inline());
    EXPECT_GE(live, 2);
  }
  EXPECT_EQ(live, 0);
}

TEST(InlineTask, MovedThroughChainDestroysExactlyOnce) {
  int live = 0;
  {
    Counted counted(&live);
    InlineTask a([counted] {});
    InlineTask b(std::move(a));
    InlineTask c;
    c = std::move(b);
    InlineTask d(std::move(c));
    EXPECT_EQ(live, 2);  // the original + exactly one stored copy survives the moves
  }
  EXPECT_EQ(live, 0);
}

TEST(InlineTask, AssignReplacesAndDestroysPrevious) {
  int live_a = 0;
  int live_b = 0;
  {
    Counted ca(&live_a);
    Counted cb(&live_b);
    InlineTask t([ca] {});
    EXPECT_EQ(live_a, 2);
    t.assign([cb] {});
    EXPECT_EQ(live_a, 1);  // previous capture destroyed by assign
    EXPECT_EQ(live_b, 2);
    t.reset();
    EXPECT_EQ(live_b, 1);
    EXPECT_FALSE(static_cast<bool>(t));
  }
  EXPECT_EQ(live_a, 0);
  EXPECT_EQ(live_b, 0);
}

TEST(InlineTask, SharedPtrCaptureKeepsReferenceCounts) {
  auto sp = std::make_shared<int>(7);
  {
    InlineTask t([sp] {});
    EXPECT_TRUE(t.is_inline());
    EXPECT_EQ(sp.use_count(), 2);
    InlineTask u(std::move(t));
    EXPECT_EQ(sp.use_count(), 2);
  }
  EXPECT_EQ(sp.use_count(), 1);
}

}  // namespace
}  // namespace dynreg::sim
