// fault::Injector determinism and envelope regressions:
//
//   - each fault class alone is (config, seed)-deterministic;
//   - a faulted run is jobs-independent (run_replicas at 1 vs 8 workers);
//   - the crash-recovery matrix behaves (recover_fraction 0/1, durable and
//     volatile restarts both stay inside the safety envelope);
//   - a run with all three classes armed records into a trace, replays
//     byte-identically through RunHooks AND through the v3 file format;
//   - the liveness regression: a symmetric partition heals and the ES
//     protocol (with client retries) recovers, with zero violations;
//   - Byzantine transforms actually break regularity (the checker sees the
//     never-written values) — the experiment's headline contrast.
#include <gtest/gtest.h>

#include <cstdint>

#include "fault/plan.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "replay/hooks.h"
#include "replay/trace_io.h"

namespace dynreg::fault {
namespace {

using harness::ExperimentConfig;
using harness::MetricsReport;
using harness::Protocol;

ExperimentConfig base_config(Protocol protocol) {
  ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.n = 15;
  cfg.delta = 5;
  cfg.duration = 1500;
  cfg.seed = 42;
  cfg.workload.read_interval = 10;
  cfg.workload.write_interval = 60;
  if (protocol == Protocol::kEventuallySync) {
    cfg.timing = harness::Timing::kEventuallySynchronous;
    cfg.gst = 0;
  }
  return cfg;
}

void expect_identical(const MetricsReport& a, const MetricsReport& b) {
  EXPECT_EQ(a.reads_issued, b.reads_issued);
  EXPECT_EQ(a.reads_completed, b.reads_completed);
  EXPECT_EQ(a.writes_completed, b.writes_completed);
  EXPECT_EQ(a.reads_timed_out, b.reads_timed_out);
  EXPECT_EQ(a.op_retries, b.op_retries);
  EXPECT_EQ(a.faults_crashes, b.faults_crashes);
  EXPECT_EQ(a.faults_recoveries, b.faults_recoveries);
  EXPECT_EQ(a.faults_partitions, b.faults_partitions);
  EXPECT_EQ(a.faults_heals, b.faults_heals);
  EXPECT_EQ(a.msgs_dropped_partition, b.msgs_dropped_partition);
  EXPECT_EQ(a.msgs_transformed, b.msgs_transformed);
  EXPECT_EQ(a.msgs_by_type, b.msgs_by_type);
  EXPECT_EQ(a.regularity.reads_checked, b.regularity.reads_checked);
  EXPECT_EQ(a.regularity.violations.size(), b.regularity.violations.size());
  EXPECT_EQ(a.trace_hash, b.trace_hash);
}

ExperimentConfig crash_config(Protocol p) {
  ExperimentConfig cfg = base_config(p);
  cfg.fault.crash.rate = 0.01;
  cfg.fault.crash.recover_fraction = 1.0;
  return cfg;
}

ExperimentConfig partition_config(Protocol p) {
  ExperimentConfig cfg = base_config(p);
  cfg.fault.partition.rate = 0.004;
  cfg.fault.partition.duration = 150;
  cfg.fault.partition.fraction = 0.3;
  return cfg;
}

ExperimentConfig byzantine_config(Protocol p) {
  ExperimentConfig cfg = base_config(p);
  cfg.fault.byzantine.fraction = 0.25;
  cfg.fault.byzantine.transform_rate = 0.5;
  return cfg;
}

/// All three classes armed at once — the trace-v3 acceptance shape.
ExperimentConfig everything_config() {
  ExperimentConfig cfg = base_config(Protocol::kEventuallySync);
  cfg.fault.crash.rate = 0.01;
  cfg.fault.crash.recover_fraction = 1.0;
  cfg.fault.partition.rate = 0.004;
  cfg.fault.partition.duration = 150;
  cfg.fault.partition.fraction = 0.3;
  cfg.fault.partition.asymmetric = true;
  cfg.fault.byzantine.fraction = 0.25;
  cfg.fault.byzantine.transform_rate = 0.5;
  return cfg;
}

TEST(FaultPlan, CrashClassIsDeterministic) {
  const auto cfg = crash_config(Protocol::kEventuallySync);
  const auto a = harness::run_experiment(cfg);
  const auto b = harness::run_experiment(cfg);
  EXPECT_GT(a.faults_crashes, 0u);
  expect_identical(a, b);
}

TEST(FaultPlan, PartitionClassIsDeterministic) {
  const auto cfg = partition_config(Protocol::kSync);
  const auto a = harness::run_experiment(cfg);
  const auto b = harness::run_experiment(cfg);
  EXPECT_GT(a.faults_partitions, 0u);
  EXPECT_GT(a.msgs_dropped_partition, 0u);
  expect_identical(a, b);
}

TEST(FaultPlan, ByzantineClassIsDeterministic) {
  const auto cfg = byzantine_config(Protocol::kEventuallySync);
  const auto a = harness::run_experiment(cfg);
  const auto b = harness::run_experiment(cfg);
  EXPECT_GT(a.msgs_transformed, 0u);
  expect_identical(a, b);
}

TEST(FaultPlan, FaultedRunsAreJobsIndependent) {
  const auto cfg = everything_config();
  const auto serial = harness::run_replicas(cfg, 4, 1);
  const auto pooled = harness::run_replicas(cfg, 4, 8);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial[i], pooled[i]);
  }
}

TEST(FaultPlan, CrashStopNeverRecovers) {
  auto cfg = crash_config(Protocol::kEventuallySync);
  cfg.fault.crash.recover_fraction = 0.0;
  const auto report = harness::run_experiment(cfg);
  EXPECT_GT(report.faults_crashes, 0u);
  EXPECT_EQ(report.faults_recoveries, 0u);
}

TEST(FaultPlan, CrashRecoveryRestartsProcesses) {
  const auto cfg = crash_config(Protocol::kEventuallySync);  // recover = 1.0
  const auto report = harness::run_experiment(cfg);
  EXPECT_GT(report.faults_crashes, 0u);
  EXPECT_GT(report.faults_recoveries, 0u);
}

TEST(FaultPlan, CrashRecoveryStaysSafeDurableAndVolatile) {
  // Crash-recovery is inside the paper's fault model (it is churn), so both
  // restart disciplines must keep the register regular: durable restarts
  // apply their image as a floor, volatile restarts re-learn via the join
  // path. A regression here means restore() stopped being monotone or the
  // rejoin path broke.
  for (const auto protocol : {Protocol::kSync, Protocol::kEventuallySync}) {
    for (const auto restart : {RestartState::kDurable, RestartState::kVolatile}) {
      auto cfg = crash_config(protocol);
      cfg.fault.crash.restart = restart;
      const auto report = harness::run_experiment(cfg);
      SCOPED_TRACE(static_cast<int>(protocol) * 10 + static_cast<int>(restart));
      EXPECT_GT(report.faults_recoveries, 0u);
      EXPECT_TRUE(report.regularity.violations.empty());
    }
  }
}

TEST(FaultPlan, FaultedRunRecordsAndReplaysByteIdentically) {
  const auto cfg = everything_config();

  replay::Trace trace;
  trace.fingerprint = replay::fingerprint(cfg);
  trace.seed = cfg.seed;
  replay::RunHooks record;
  record.record = &trace;
  const auto recorded = harness::run_experiment(cfg, record);
  trace.recorded_hash = recorded.trace_hash;

  // The acceptance shape: all three classes actually fired, and their
  // decisions landed in the dedicated fault stream.
  EXPECT_GT(recorded.faults_crashes, 0u);
  EXPECT_GT(recorded.faults_partitions, 0u);
  EXPECT_GT(recorded.msgs_transformed, 0u);
  EXPECT_FALSE(trace.faults.empty());

  replay::RunHooks replay;
  replay.replay = &trace;
  expect_identical(recorded, harness::run_experiment(cfg, replay));
}

TEST(FaultPlan, FaultedTraceRoundTripsThroughTheV3FileFormat) {
  const auto cfg = everything_config();

  replay::Trace trace;
  trace.fingerprint = replay::fingerprint(cfg);
  trace.seed = cfg.seed;
  replay::RunHooks record;
  record.record = &trace;
  const auto recorded = harness::run_experiment(cfg, record);
  trace.recorded_hash = recorded.trace_hash;
  ASSERT_FALSE(trace.faults.empty());

  replay::TraceFile file;
  file.seeds = {cfg.seed};
  file.config = cfg;
  file.traces = {trace};
  const replay::TraceFile decoded = replay::decode(replay::encode(file));
  ASSERT_EQ(decoded.traces.size(), 1u);
  const replay::Trace& back = decoded.traces[0];
  ASSERT_EQ(back.faults.size(), trace.faults.size());
  for (std::size_t i = 0; i < back.faults.size(); ++i) {
    EXPECT_EQ(back.faults[i].time, trace.faults[i].time);
    EXPECT_EQ(back.faults[i].value, trace.faults[i].value);
  }
  // The embedded config must carry the fault plan — a decoded scenario that
  // silently dropped it would replay a fault-free run against a faulted
  // schedule and diverge.
  ASSERT_TRUE(decoded.config.has_value());
  EXPECT_EQ(replay::fingerprint(*decoded.config), replay::fingerprint(cfg));

  replay::RunHooks replay;
  replay.replay = &back;
  expect_identical(recorded, harness::run_experiment(*decoded.config, replay));
}

TEST(FaultPlan, PartitionHealsAndEsRecoversWithRetries) {
  // The E18 liveness regression in miniature: symmetric cuts with a client
  // deadline and exponential-backoff retries. Partitions must heal, retries
  // must fire, a majority of reads must still complete, and — partitions
  // being omission faults — safety must hold throughout.
  auto cfg = partition_config(Protocol::kEventuallySync);
  cfg.duration = 2000;
  cfg.workload.op_deadline = 40;
  cfg.workload.retry_max_attempts = 6;
  cfg.workload.retry_backoff = 10;
  cfg.workload.retry_exponential = true;
  const auto report = harness::run_experiment(cfg);
  EXPECT_GT(report.faults_partitions, 0u);
  EXPECT_GT(report.faults_heals, 0u);
  EXPECT_GE(report.faults_partitions, report.faults_heals);
  EXPECT_GT(report.op_retries, 0u);
  EXPECT_GT(report.read_completion_rate(), 0.5);
  EXPECT_TRUE(report.regularity.violations.empty());
}

TEST(FaultPlan, ByzantineTransformsBreakRegularity) {
  // The headline contrast of E17: Byzantine rewrites are outside every
  // protocol's fault model, and the regularity checker flags the
  // never-written values the transforms fabricate.
  const auto report =
      harness::run_experiment(byzantine_config(Protocol::kEventuallySync));
  EXPECT_GT(report.msgs_transformed, 0u);
  EXPECT_FALSE(report.regularity.violations.empty());
}

TEST(FaultPlan, DefaultPlanIsDisabled) {
  const Plan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_FALSE(plan.crash_enabled());
  EXPECT_FALSE(plan.partition_enabled());
  EXPECT_FALSE(plan.byzantine_enabled());
  // Arming a class without a rate keeps it off; kinds alone do not enable.
  Plan byz;
  byz.byzantine.fraction = 1.0;
  EXPECT_FALSE(byz.byzantine_enabled());
  byz.byzantine.transform_rate = 1.0;
  EXPECT_TRUE(byz.byzantine_enabled());
  byz.byzantine.equivocate = byz.byzantine.stale_replay = false;
  byz.byzantine.forge = byz.byzantine.corrupt = false;
  EXPECT_FALSE(byz.byzantine_enabled());
}

}  // namespace
}  // namespace dynreg::fault
