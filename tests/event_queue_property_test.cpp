// Property test: EventQueue against a naive sorted-vector reference model.
//
// The queue's contract is total order by (time, push order). The production
// structure is a two-tier timing wheel + far heap, so this test hammers the
// seams: duplicate times, pushes past the wheel window, pushes into the
// wheel's past after pops, and interleaved push/pop bursts. The reference
// model keeps a plain vector ordered by (time, insertion seq) — insertion
// order IS the tie-break, so any divergence is a stability bug.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/event_queue.h"

namespace dynreg::sim {
namespace {

class ReferenceModel {
 public:
  void push(Time time, int id) { events_.push_back({time, seq_++, id}); }

  int pop() {
    const auto it = min_it();
    const int id = it->id;
    events_.erase(it);
    return id;
  }

  Time next_time() const { return min_it()->time; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    int id;
  };

  std::vector<Entry>::const_iterator min_it() const {
    return std::min_element(events_.begin(), events_.end(),
                            [](const Entry& a, const Entry& b) {
                              return a.time != b.time ? a.time < b.time : a.seq < b.seq;
                            });
  }
  // erase needs a mutable iterator
  std::vector<Entry>::iterator min_it() {
    return std::min_element(events_.begin(), events_.end(),
                            [](const Entry& a, const Entry& b) {
                              return a.time != b.time ? a.time < b.time : a.seq < b.seq;
                            });
  }

  std::vector<Entry> events_;
  std::uint64_t seq_ = 0;
};

/// Runs one randomized trace; `max_jump` > EventQueue::kWindow exercises the
/// far tier and the wheel/heap tie-breaking, `use_run_top` switches between
/// the pop() and run_top() consumption paths.
void run_random_trace(std::uint32_t seed, Time max_jump, bool use_run_top) {
  std::mt19937 rng(seed);
  EventQueue queue;
  ReferenceModel model;
  std::vector<int> queue_order;
  std::vector<int> model_order;
  int next_id = 0;
  Time now = 0;  // mirrors a simulation clock: pushes land at now + delta

  const auto pop_one = [&] {
    ASSERT_EQ(queue.next_time(), model.next_time());
    const Time expected_time = model.next_time();
    now = std::max(now, expected_time);
    if (use_run_top) {
      queue.run_top();
    } else {
      Event e = queue.pop();
      EXPECT_EQ(e.time, expected_time);
      e.fn();
    }
    model_order.push_back(model.pop());
  };

  for (int step = 0; step < 4000; ++step) {
    const bool do_push = model.empty() || rng() % 10 < 6;
    if (do_push) {
      // Delay distribution with heavy duplication plus occasional jumps far
      // beyond the wheel window to force the far tier. A few pushes go
      // strictly into the wheel's past (allowed for the standalone queue).
      Time at = now;
      switch (rng() % 8) {
        case 0:
          break;  // same tick as the clock
        case 1:
          at = now + rng() % 4;
          break;
        case 6:
          at = now > 10 ? now - 1 - rng() % 10 : now;  // behind the wheel base
          break;
        case 7:
          at = now + rng() % max_jump;  // may exceed the wheel window
          break;
        default:
          at = now + 1 + rng() % 16;
          break;
      }
      const int id = next_id++;
      queue.push(at, [&queue_order, id] { queue_order.push_back(id); });
      model.push(at, id);
    } else {
      pop_one();
    }
    ASSERT_EQ(queue.size(), model.size());
    ASSERT_EQ(queue.empty(), model.empty());
  }

  while (!model.empty()) pop_one();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue_order, model_order);
  EXPECT_EQ(queue_order.size(), static_cast<std::size_t>(next_id));
}

TEST(EventQueueProperty, MatchesReferenceWithinWheelWindow) {
  run_random_trace(/*seed=*/1, /*max_jump=*/EventQueue::kWindow / 2, /*use_run_top=*/false);
  run_random_trace(/*seed=*/2, /*max_jump=*/EventQueue::kWindow / 2, /*use_run_top=*/true);
}

TEST(EventQueueProperty, MatchesReferenceAcrossFarTier) {
  // Jumps up to 4x the wheel span: events constantly cross between tiers.
  run_random_trace(/*seed=*/3, /*max_jump=*/4 * EventQueue::kWindow, /*use_run_top=*/false);
  run_random_trace(/*seed=*/4, /*max_jump=*/4 * EventQueue::kWindow, /*use_run_top=*/true);
}

TEST(EventQueueProperty, ManyDuplicateTimesStayFifo) {
  EventQueue queue;
  ReferenceModel model;
  std::vector<int> queue_order;
  std::vector<int> model_order;
  std::mt19937 rng(99);
  // 2000 events over just 5 distinct times, pushed in random time order.
  for (int id = 0; id < 2000; ++id) {
    const Time t = rng() % 5;
    queue.push(t, [&queue_order, id] { queue_order.push_back(id); });
    model.push(t, id);
  }
  while (!model.empty()) {
    queue.pop().fn();
    model_order.push_back(model.pop());
  }
  EXPECT_EQ(queue_order, model_order);
}

}  // namespace
}  // namespace dynreg::sim
