// Property test: EventQueue against a naive sorted-vector reference model.
//
// The queue's contract is total order by (time, push order). The production
// structure is a two-tier timing wheel + far heap, so this test hammers the
// seams: duplicate times, pushes past the wheel window, pushes into the
// wheel's past after pops, and interleaved push/pop bursts. The reference
// model keeps a plain vector ordered by (time, insertion seq) — insertion
// order IS the tie-break, so any divergence is a stability bug.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/event_queue.h"

namespace dynreg::sim {
namespace {

class ReferenceModel {
 public:
  void push(Time time, int id) { events_.push_back({time, seq_++, id}); }

  int pop() {
    const auto it = min_it();
    const int id = it->id;
    events_.erase(it);
    return id;
  }

  Time next_time() const { return min_it()->time; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    int id;
  };

  std::vector<Entry>::const_iterator min_it() const {
    return std::min_element(events_.begin(), events_.end(),
                            [](const Entry& a, const Entry& b) {
                              return a.time != b.time ? a.time < b.time : a.seq < b.seq;
                            });
  }
  // erase needs a mutable iterator
  std::vector<Entry>::iterator min_it() {
    return std::min_element(events_.begin(), events_.end(),
                            [](const Entry& a, const Entry& b) {
                              return a.time != b.time ? a.time < b.time : a.seq < b.seq;
                            });
  }

  std::vector<Entry> events_;
  std::uint64_t seq_ = 0;
};

/// Runs one randomized trace; `max_jump` > EventQueue::kWindow exercises the
/// far tier and the wheel/heap tie-breaking, `use_run_top` switches between
/// the pop() and run_top() consumption paths.
void run_random_trace(std::uint32_t seed, Time max_jump, bool use_run_top) {
  std::mt19937 rng(seed);
  EventQueue queue;
  ReferenceModel model;
  std::vector<int> queue_order;
  std::vector<int> model_order;
  int next_id = 0;
  Time now = 0;  // mirrors a simulation clock: pushes land at now + delta

  const auto pop_one = [&] {
    ASSERT_EQ(queue.next_time(), model.next_time());
    const Time expected_time = model.next_time();
    now = std::max(now, expected_time);
    if (use_run_top) {
      queue.run_top();
    } else {
      Event e = queue.pop();
      EXPECT_EQ(e.time, expected_time);
      e.fn();
    }
    model_order.push_back(model.pop());
  };

  for (int step = 0; step < 4000; ++step) {
    const bool do_push = model.empty() || rng() % 10 < 6;
    if (do_push) {
      // Delay distribution with heavy duplication plus occasional jumps far
      // beyond the wheel window to force the far tier. A few pushes go
      // strictly into the wheel's past (allowed for the standalone queue).
      Time at = now;
      switch (rng() % 8) {
        case 0:
          break;  // same tick as the clock
        case 1:
          at = now + rng() % 4;
          break;
        case 6:
          at = now > 10 ? now - 1 - rng() % 10 : now;  // behind the wheel base
          break;
        case 7:
          at = now + rng() % max_jump;  // may exceed the wheel window
          break;
        default:
          at = now + 1 + rng() % 16;
          break;
      }
      const int id = next_id++;
      queue.push(at, [&queue_order, id] { queue_order.push_back(id); });
      model.push(at, id);
    } else {
      pop_one();
    }
    ASSERT_EQ(queue.size(), model.size());
    ASSERT_EQ(queue.empty(), model.empty());
  }

  while (!model.empty()) pop_one();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue_order, model_order);
  EXPECT_EQ(queue_order.size(), static_cast<std::size_t>(next_id));
}

TEST(EventQueueProperty, MatchesReferenceWithinWheelWindow) {
  run_random_trace(/*seed=*/1, /*max_jump=*/EventQueue::kWindow / 2, /*use_run_top=*/false);
  run_random_trace(/*seed=*/2, /*max_jump=*/EventQueue::kWindow / 2, /*use_run_top=*/true);
}

TEST(EventQueueProperty, MatchesReferenceAcrossFarTier) {
  // Jumps up to 4x the wheel span: events constantly cross between tiers.
  run_random_trace(/*seed=*/3, /*max_jump=*/4 * EventQueue::kWindow, /*use_run_top=*/false);
  run_random_trace(/*seed=*/4, /*max_jump=*/4 * EventQueue::kWindow, /*use_run_top=*/true);
}

// The 1e6-entry regression pin for the timing-wheel scaling work: a
// million-event adversarial spread (hot duplicate ticks, dense near-window
// clusters, far-tier jumps, and a mid-stream drain/refill that lands new
// events across the survivors' times). The naive per-pop reference above is
// O(n) per operation, so at this size the model is a sorted snapshot
// instead: pop order must equal the (time, push-seq) sort exactly. This
// walks ~31 task slabs, so it also covers the lazy slab construction and
// drain-on-destroy paths at the scale the 8.6M items/s cliff appeared.
TEST(EventQueueProperty, MillionEntryAdversarialSpreadMatchesSortedModel) {
  struct Entry {
    Time time;
    std::uint64_t seq;
    int id;
  };
  const auto by_time_seq = [](const Entry& a, const Entry& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  };

  std::mt19937 rng(2026);
  EventQueue queue;
  std::vector<int> popped;
  popped.reserve(1'000'000);
  std::uint64_t seq = 0;
  int next_id = 0;
  Time now = 0;

  const auto adversarial_time = [&](Time base) -> Time {
    switch (rng() % 8) {
      case 0:
      case 1:
        return base + rng() % 16;  // hot duplicate ticks
      case 2:
      case 3:
        return base + rng() % 64;  // dense near cluster
      case 4:
        return base > 32 ? base - 1 - rng() % 32 : base;  // wheel's past
      case 5:
      case 6:
        return base + rng() % EventQueue::kWindow;  // spread across the wheel
      default:
        return base + EventQueue::kWindow + rng() % (8 * EventQueue::kWindow);
    }
  };
  const auto push_n = [&](std::size_t n, std::vector<Entry>& into) {
    for (std::size_t i = 0; i < n; ++i) {
      const Time at = adversarial_time(now);
      const int id = next_id++;
      queue.push(at, [&popped, id] { popped.push_back(id); });
      into.push_back({at, seq++, id});
    }
  };
  const auto pop_n = [&](std::size_t n, const std::vector<Entry>& sorted,
                         std::size_t offset) {
    for (std::size_t i = 0; i < n; ++i) {
      if (i % 10000 == 0) {
        ASSERT_EQ(queue.next_time(), sorted[offset + i].time);
      }
      now = std::max(now, sorted[offset + i].time);
      queue.run_top();
    }
  };

  std::vector<Entry> pending;
  pending.reserve(1'000'000);
  push_n(600'000, pending);
  ASSERT_EQ(queue.size(), 600'000u);
  std::sort(pending.begin(), pending.end(), by_time_seq);
  pop_n(300'000, pending, 0);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < 300'000; ++i) {
    if (popped[i] != pending[i].id) ++mismatches;
  }
  ASSERT_EQ(mismatches, 0u) << "pop order diverged in the first drain";

  // Refill while 300k survivors are still queued: the new events' times
  // interleave with the survivors', and ties must resolve by push order.
  pending.erase(pending.begin(), pending.begin() + 300'000);
  push_n(400'000, pending);
  ASSERT_EQ(queue.size(), 700'000u);
  std::sort(pending.begin(), pending.end(), by_time_seq);
  pop_n(pending.size(), pending, 0);

  ASSERT_TRUE(queue.empty());
  ASSERT_EQ(popped.size(), 1'000'000u);
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (popped[300'000 + i] != pending[i].id) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u) << "pop order diverged after the refill";
}

TEST(EventQueueProperty, ManyDuplicateTimesStayFifo) {
  EventQueue queue;
  ReferenceModel model;
  std::vector<int> queue_order;
  std::vector<int> model_order;
  std::mt19937 rng(99);
  // 2000 events over just 5 distinct times, pushed in random time order.
  for (int id = 0; id < 2000; ++id) {
    const Time t = rng() % 5;
    queue.push(t, [&queue_order, id] { queue_order.push_back(id); });
    model.push(t, id);
  }
  while (!model.empty()) {
    queue.pop().fn();
    model_order.push_back(model.pop());
  }
  EXPECT_EQ(queue_order, model_order);
}

}  // namespace
}  // namespace dynreg::sim
