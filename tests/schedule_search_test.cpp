// Schedule search: record_base captures a faithful schedule (replaying it
// is byte-identical), perturb is a pure function, search results are
// --jobs-independent, and the searcher actually finds the Figure 3a hazard
// (regularity violations for the no-wait join) that plain sampling misses.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "replay/hooks.h"
#include "replay/search.h"
#include "replay/trace_io.h"

namespace dynreg::replay {
namespace {

/// The E14 scenario family: small synchronous system under legal churn with
/// adversarial departures. kSyncNoWait is the Figure 3a ablation.
harness::ExperimentConfig scenario(harness::Protocol protocol) {
  harness::ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.n = 8;
  cfg.delta = 5;
  cfg.duration = 300;
  cfg.leave_policy = churn::LeavePolicy::kOldestActiveFirst;
  cfg.workload.read_interval = 3;
  cfg.workload.write_interval = 15;
  cfg.churn_rate = 0.5 * cfg.sync_churn_threshold();
  return cfg;
}

TEST(ScheduleSearch, RecordedBaseReplaysByteIdentically) {
  const harness::ExperimentConfig cfg = scenario(harness::Protocol::kSync);
  const Trace base = record_base(cfg);
  EXPECT_GT(base.size(), 0u);

  RunHooks hooks;
  hooks.replay = &base;
  const harness::MetricsReport replayed = harness::run_experiment(cfg, hooks);
  // Audit builds compare the full event stream; no-audit builds still check
  // the replay ran (hash 0 on both sides).
  EXPECT_EQ(replayed.trace_hash, base.recorded_hash);

  const harness::MetricsReport original = harness::run_experiment(cfg, RunHooks{});
  EXPECT_EQ(original.trace_hash, base.recorded_hash);
}

TEST(ScheduleSearch, RecordBaseIsDeterministic) {
  const harness::ExperimentConfig cfg = scenario(harness::Protocol::kSync);
  const Trace a = record_base(cfg);
  const Trace b = record_base(cfg);
  TraceFile fa;
  fa.traces = {a};
  TraceFile fb;
  fb.traces = {b};
  EXPECT_EQ(encode(fa), encode(fb));
}

TEST(ScheduleSearch, PerturbIsAPureFunction) {
  const harness::ExperimentConfig cfg = scenario(harness::Protocol::kSync);
  const Trace base = record_base(cfg);
  SearchOptions opt;
  const Trace v1 = perturb(base, 7, opt);
  const Trace v2 = perturb(base, 7, opt);
  TraceFile f1;
  f1.traces = {v1};
  TraceFile f2;
  f2.traces = {v2};
  EXPECT_EQ(encode(f1), encode(f2));
  EXPECT_EQ(v1.seed, 7u);
  EXPECT_EQ(v1.recorded_hash, 0u);  // a perturbed schedule has no recording
}

TEST(ScheduleSearch, PerturbVariesWithTheSeed) {
  const harness::ExperimentConfig cfg = scenario(harness::Protocol::kSync);
  const Trace base = record_base(cfg);
  SearchOptions opt;
  TraceFile fb;
  fb.traces = {base};
  const auto base_bytes = encode(fb);
  std::size_t distinct = 0;
  for (std::uint64_t s = 1; s <= 8; ++s) {
    Trace v = perturb(base, s, opt);
    v.seed = base.seed;  // compare the schedule body, not the seed stamp
    v.recorded_hash = base.recorded_hash;
    TraceFile fv;
    fv.traces = {v};
    if (encode(fv) != base_bytes) ++distinct;
  }
  EXPECT_GE(distinct, 7u);  // jitter/reorder/loss/shift nearly always bites
}

TEST(ScheduleSearch, ResultsAreJobsIndependent) {
  const harness::ExperimentConfig cfg = scenario(harness::Protocol::kSyncNoWait);
  const Trace base = record_base(cfg);
  SearchOptions serial;
  serial.seed = 100;
  serial.budget = 60;
  serial.jobs = 1;
  SearchOptions pooled = serial;
  pooled.jobs = 4;
  const SearchResult a = search(cfg, base, serial);
  const SearchResult b = search(cfg, base, pooled);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.violating, b.violating);
  EXPECT_EQ(a.inverted, b.inverted);
  EXPECT_EQ(a.distinct_schedules, b.distinct_schedules);
  EXPECT_EQ(a.first_violation, b.first_violation);
  TraceFile fa;
  fa.traces = {a.counterexample};
  TraceFile fb;
  fb.traces = {b.counterexample};
  EXPECT_EQ(encode(fa), encode(fb));
}

TEST(ScheduleSearch, FindsTheNoWaitViolationUnderLegalChurn) {
  // The base schedule is clean — E3-style sampling would report "safe".
  const harness::ExperimentConfig cfg = scenario(harness::Protocol::kSyncNoWait);
  const harness::MetricsReport base_report = harness::run_experiment(cfg, RunHooks{});
  EXPECT_FALSE(violates(base_report));

  const Trace base = record_base(cfg);
  SearchOptions opt;
  opt.seed = 100;
  opt.budget = 200;
  opt.jobs = 4;
  const SearchResult res = search(cfg, base, opt);
  EXPECT_EQ(res.executed, 200u);
  ASSERT_TRUE(res.first_violation.has_value());
  EXPECT_GE(res.violating, 1u);
  EXPECT_TRUE(violates(res.counterexample_report));
  EXPECT_GT(res.distinct_schedules, 100u);

  // The counterexample is replayable: re-running it reproduces the violation.
  RunHooks hooks;
  hooks.replay = &res.counterexample;
  const harness::MetricsReport again = harness::run_experiment(cfg, hooks);
  EXPECT_TRUE(violates(again));
  EXPECT_EQ(again.trace_hash, res.counterexample_report.trace_hash);
}

TEST(ScheduleSearch, LossGateKeepsSynchronousSchedulesLegal) {
  // With omission faults gated off, no perturbed schedule below the Theorem 1
  // threshold breaks the real protocol — the experiment E14 claim, in
  // miniature. (With the gate open the searcher can drop WRITE copies, which
  // the synchronous model forbids, so that mode is not asserted here.)
  const harness::ExperimentConfig cfg = scenario(harness::Protocol::kSync);
  const Trace base = record_base(cfg);
  SearchOptions opt;
  opt.seed = 100;
  opt.budget = 100;
  opt.jobs = 4;
  opt.toggle_loss = false;
  const SearchResult res = search(cfg, base, opt);
  EXPECT_EQ(res.violating, 0u);
  for (std::uint64_t s = 1; s <= 32; ++s) {
    const Trace v = perturb(base, s, opt);
    for (const NetRecord& r : v.net) EXPECT_FALSE(r.lost);
    for (const NetRecord& r : v.net) EXPECT_LE(r.delay, base.max_delay());
  }
}

}  // namespace
}  // namespace dynreg::replay
