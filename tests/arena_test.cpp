// sim::Arena — the epoch-reclaim lifetime contract the payload and
// pending-op storage stand on: canaries survive until deallocate, retired
// chunks poison-fill on reclaim (0xDD in plain builds, ASan poison under
// sanitizers), and recycled chunks are reused instead of re-reserved.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <random>
#include <vector>

#include "sim/arena.h"

#if defined(__SANITIZE_ADDRESS__)
#define DYNREG_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DYNREG_TEST_ASAN 1
#endif
#endif

namespace dynreg::sim {
namespace {

struct Canary {
  unsigned char* p;
  std::size_t size;
  unsigned char fill;
};

void check_canary(const Canary& c) {
  for (std::size_t i = 0; i < c.size; ++i) {
    ASSERT_EQ(c.p[i], c.fill) << "canary corrupted at byte " << i;
  }
}

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(/*chunk_bytes=*/256);
  auto* a = static_cast<unsigned char*>(arena.allocate(24, 8));
  auto* b = static_cast<unsigned char*>(arena.allocate(40, 16));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 16, 0u);
  std::memset(a, 0x11, 24);
  std::memset(b, 0x22, 40);
  for (std::size_t i = 0; i < 24; ++i) EXPECT_EQ(a[i], 0x11);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_EQ(b[i], 0x22);
  EXPECT_EQ(arena.live_allocations(), 2u);
  arena.deallocate(a);
  arena.deallocate(b);
  EXPECT_EQ(arena.live_allocations(), 0u);
}

TEST(Arena, OversizeRequestGetsDedicatedChunk) {
  Arena arena(/*chunk_bytes=*/128);
  auto* big = static_cast<unsigned char*>(arena.allocate(1000, 8));
  std::memset(big, 0x5A, 1000);
  // A normal-size allocation after the oversize one must not land inside it.
  auto* small = static_cast<unsigned char*>(arena.allocate(16, 8));
  std::memset(small, 0xA5, 16);
  for (std::size_t i = 0; i < 1000; ++i) ASSERT_EQ(big[i], 0x5A);
  arena.deallocate(big);
  arena.deallocate(small);
}

// The property/fuzz core: a random interleaving of allocate / deallocate /
// advance_epoch, with every live allocation carrying a distinct fill
// pattern. The arena may recycle chunks under our feet — the property is
// that no live canary is ever disturbed and the live-count bookkeeping
// matches a trivial model. Runs clean under ASan/UBSan too (live spans are
// unpoisoned by definition).
TEST(Arena, FuzzCanariesSurviveArbitraryInterleavings) {
  for (const std::uint32_t seed : {1u, 7u, 2026u}) {
    SCOPED_TRACE(seed);
    std::mt19937 rng(seed);
    Arena arena(/*chunk_bytes=*/512);  // small chunks: force frequent retire/reuse
    std::vector<Canary> live;
    unsigned char next_fill = 1;

    for (int op = 0; op < 10000; ++op) {
      const std::uint32_t roll = rng() % 100;
      if (roll < 45 || live.empty()) {
        const std::size_t size = 1 + rng() % 200;
        auto* p = static_cast<unsigned char*>(arena.allocate(size, 8));
        std::memset(p, next_fill, size);
        live.push_back({p, size, next_fill});
        next_fill = next_fill == 0xFF ? 1 : static_cast<unsigned char>(next_fill + 1);
      } else if (roll < 85) {
        const std::size_t idx = rng() % live.size();
        check_canary(live[idx]);
        arena.deallocate(live[idx].p);
        live[idx] = live.back();
        live.pop_back();
      } else {
        arena.advance_epoch();
        // Reclaim must never touch a chunk with live allocations.
        for (const Canary& c : live) check_canary(c);
      }
      ASSERT_EQ(arena.live_allocations(), live.size());
    }
    for (const Canary& c : live) {
      check_canary(c);
      arena.deallocate(c.p);
    }
    EXPECT_EQ(arena.live_allocations(), 0u);
    // With 512-byte chunks and ~4.5k allocations the arena must have cycled
    // storage rather than growing without bound.
    EXPECT_GT(arena.chunks_recycled(), 0u);
    EXPECT_LT(arena.bytes_reserved(), 10u * 200u * 10000u);
  }
}

TEST(Arena, RecycledChunksAreReusedNotReReserved) {
  Arena arena(/*chunk_bytes=*/256);
  // Steady-state churn: each round fills a few chunks, frees them, and lets
  // the epoch move. After warm-up, reserved bytes must stop growing.
  std::size_t reserved_after_warmup = 0;
  for (int round = 0; round < 50; ++round) {
    std::vector<void*> ptrs;
    for (int i = 0; i < 16; ++i) ptrs.push_back(arena.allocate(48, 8));
    for (void* p : ptrs) arena.deallocate(p);
    arena.advance_epoch();
    arena.advance_epoch();
    if (round == 4) reserved_after_warmup = arena.bytes_reserved();
  }
  EXPECT_GT(arena.chunks_recycled(), arena.chunks_created());
  EXPECT_EQ(arena.bytes_reserved(), reserved_after_warmup);
}

#ifndef DYNREG_TEST_ASAN
// Plain-build reclaim semantics: bytes of a dead allocation stay intact
// until the epoch moves past its chunk's retirement (the "same-tick
// dangler" guarantee), then the whole chunk is poison-filled with 0xDD so
// any use-after-reclaim reads deterministic garbage. (Under ASan the reads
// below would — correctly — trap; the sanitizer variant of this gate is
// DeallocatePoisonsSpanImmediately.)
TEST(Arena, ReclaimPoisonsRetiredChunksWithDdBytes) {
  Arena arena(/*chunk_bytes=*/256);
  // Fill chunk 1 and spill into chunk 2, sealing chunk 1 with live spans.
  std::vector<unsigned char*> first_chunk;
  for (int i = 0; i < 3; ++i) {
    auto* p = static_cast<unsigned char*>(arena.allocate(64, 8));
    std::memset(p, 0xAB, 64);
    first_chunk.push_back(p);
  }
  (void)arena.allocate(64, 8);  // opens chunk 2

  for (unsigned char* p : first_chunk) arena.deallocate(p);
  // Dead but not yet reclaimed: the dangler still sees its own bytes.
  for (unsigned char* p : first_chunk) {
    for (std::size_t i = 0; i < 64; ++i) ASSERT_EQ(p[i], 0xAB);
  }

  const std::size_t recycled_before = arena.chunks_recycled();
  arena.advance_epoch();
  ASSERT_GT(arena.chunks_recycled(), recycled_before);
  for (unsigned char* p : first_chunk) {
    for (std::size_t i = 0; i < 64; ++i) ASSERT_EQ(p[i], Arena::kPoisonByte);
  }
}
#endif  // !DYNREG_TEST_ASAN

#ifdef DYNREG_TEST_ASAN
// Sanitizer reclaim semantics: the span turns inaccessible at deallocate()
// time — ASan traps the earliest possible misuse instead of waiting for the
// epoch. This is the use-after-reclaim gate the issue pins: a read through
// a dead pointer in an ASan build is a hard test failure, not 0xDD garbage.
TEST(Arena, DeallocatePoisonsSpanImmediately) {
  Arena arena(/*chunk_bytes=*/256);
  auto* p = static_cast<unsigned char*>(arena.allocate(32, 8));
  EXPECT_FALSE(Arena::address_is_poisoned(p));
  arena.deallocate(p);
  EXPECT_TRUE(Arena::address_is_poisoned(p));
}
#endif  // DYNREG_TEST_ASAN

// ArenaAllocator round-trip: a node-based container running entirely on the
// arena behaves observably identically to one on the heap allocator across
// a long random insert/erase history (the ES pending-op maps in miniature).
TEST(ArenaAllocator, MapOverArenaMatchesHeapMap) {
  Arena arena;
  using AMap = std::map<int, int, std::less<int>,
                        ArenaAllocator<std::pair<const int, int>>>;
  AMap subject{ArenaAllocator<std::pair<const int, int>>(arena)};
  std::map<int, int> model;

  std::mt19937 rng(99);
  for (int op = 0; op < 10000; ++op) {
    const int key = static_cast<int>(rng() % 512);
    if (rng() % 3 != 0) {
      subject[key] = op;
      model[key] = op;
    } else {
      subject.erase(key);
      model.erase(key);
    }
    if (op % 64 == 0) arena.advance_epoch();
  }
  ASSERT_EQ(subject.size(), model.size());
  EXPECT_TRUE(std::equal(subject.begin(), subject.end(), model.begin()));

  subject.clear();
  EXPECT_EQ(arena.live_allocations(), 0u);
}

TEST(ArenaAllocator, InstancesOverSameArenaCompareEqual) {
  Arena a;
  Arena b;
  ArenaAllocator<int> a1(a);
  ArenaAllocator<double> a2(a);
  ArenaAllocator<int> b1(b);
  EXPECT_TRUE(a1 == a2);   // rebind preserves identity
  EXPECT_FALSE(a1 == b1);
  EXPECT_TRUE(a1 != b1);
}

}  // namespace
}  // namespace dynreg::sim
