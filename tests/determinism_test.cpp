// harness::run_experiment determinism: a (config, seed) pair fully
// determines the MetricsReport; different seeds diverge.
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace dynreg::harness {
namespace {

ExperimentConfig config_under_test(Protocol protocol) {
  ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.n = 15;
  cfg.delta = 5;
  cfg.duration = 800;
  cfg.churn_rate = 0.01;
  cfg.workload.read_interval = 5;
  cfg.workload.write_interval = 30;
  if (protocol == Protocol::kEventuallySync) {
    cfg.timing = Timing::kEventuallySynchronous;
    cfg.gst = 0;
  }
  return cfg;
}

void expect_identical(const MetricsReport& a, const MetricsReport& b) {
  EXPECT_EQ(a.reads_issued, b.reads_issued);
  EXPECT_EQ(a.reads_completed, b.reads_completed);
  EXPECT_EQ(a.reads_of_bottom, b.reads_of_bottom);
  EXPECT_EQ(a.writes_issued, b.writes_issued);
  EXPECT_EQ(a.writes_completed, b.writes_completed);
  EXPECT_EQ(a.joins_started, b.joins_started);
  EXPECT_EQ(a.joins_completed, b.joins_completed);
  EXPECT_EQ(a.joins_abandoned, b.joins_abandoned);
  EXPECT_EQ(a.read_latency_mean, b.read_latency_mean);
  EXPECT_EQ(a.read_latency_p99, b.read_latency_p99);
  EXPECT_EQ(a.write_latency_mean, b.write_latency_mean);
  EXPECT_EQ(a.join_latency_mean, b.join_latency_mean);
  EXPECT_EQ(a.majority_active_always, b.majority_active_always);
  EXPECT_EQ(a.min_active_3delta, b.min_active_3delta);
  EXPECT_EQ(a.msgs_by_type, b.msgs_by_type);
  EXPECT_EQ(a.regularity.reads_checked, b.regularity.reads_checked);
  EXPECT_EQ(a.regularity.violations.size(), b.regularity.violations.size());
  EXPECT_EQ(a.atomicity.inversion_count, b.atomicity.inversion_count);
}

TEST(Determinism, SameSeedSameReportSync) {
  auto cfg = config_under_test(Protocol::kSync);
  cfg.seed = 12345;
  expect_identical(run_experiment(cfg), run_experiment(cfg));
}

TEST(Determinism, SameSeedSameReportEventuallySync) {
  auto cfg = config_under_test(Protocol::kEventuallySync);
  cfg.seed = 999;
  expect_identical(run_experiment(cfg), run_experiment(cfg));
}

TEST(Determinism, DifferentSeedsDiverge) {
  auto cfg = config_under_test(Protocol::kSync);
  cfg.seed = 1;
  const auto a = run_experiment(cfg);
  cfg.seed = 2;
  const auto b = run_experiment(cfg);

  // The traffic pattern (message copies delivered, per type) is seed
  // dependent through churn membership and random delays; two seeds
  // producing an identical traffic map would mean the RNG is ignored.
  EXPECT_NE(a.msgs_by_type, b.msgs_by_type);
}

}  // namespace
}  // namespace dynreg::harness
