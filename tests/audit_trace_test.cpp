// The DYNREG_AUDIT event-stream hash (sim::Simulation::trace_hash): equal
// across same-(config, seed) runs, divergent across seeds, and — the real
// point — identical whether replicas run on 1 worker or 8. A determinism
// regression that happens to leave the aggregate counters intact still
// diverges the digest at the first reordered event.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "harness/experiment.h"
#include "harness/sweep.h"
#include "sim/simulation.h"

namespace dynreg::harness {
namespace {

// The registered es_churn_sweep experiment's base configuration (E4), at its
// c = churn-threshold point — the heaviest registered scenario: eventually
// synchronous timing, joins, quorum reads/writes, and churn all active.
ExperimentConfig es_churn_config() {
  ExperimentConfig base;
  base.protocol = Protocol::kEventuallySync;
  base.timing = Timing::kEventuallySynchronous;
  base.gst = 0;
  base.n = 21;
  base.delta = 5;
  base.duration = 5000;
  base.workload.read_interval = 10;
  base.workload.write_interval = 60;
  base.churn_rate = base.es_churn_threshold();
  return base;
}

TEST(AuditTrace, BuildCarriesAuditor) {
  // The tier-1 suite runs with DYNREG_AUDIT on (the CMake default); if the
  // auditor was configured out, the remaining tests would pass vacuously.
  ASSERT_TRUE(sim::Simulation::audit_enabled())
      << "configure with -DDYNREG_AUDIT=ON to test the trace auditor";
}

TEST(AuditTrace, EmptySimulationHashIsStableAndNonZero) {
  sim::Simulation a(1), b(1);
  EXPECT_NE(a.trace_hash(), 0u);
  EXPECT_EQ(a.trace_hash(), b.trace_hash());
}

TEST(AuditTrace, SameSeedSameHash) {
  auto cfg = es_churn_config();
  cfg.seed = 4242;
  const auto first = run_experiment(cfg);
  const auto second = run_experiment(cfg);
  EXPECT_NE(first.trace_hash, 0u);
  EXPECT_EQ(first.trace_hash, second.trace_hash);
}

TEST(AuditTrace, DifferentSeedsDiverge) {
  auto cfg = es_churn_config();
  cfg.seed = 1;
  const auto a = run_experiment(cfg);
  cfg.seed = 2;
  const auto b = run_experiment(cfg);
  EXPECT_NE(a.trace_hash, b.trace_hash);
}

TEST(AuditTrace, HashIndependentOfWorkerCount) {
  const auto cfg = es_churn_config();
  constexpr std::size_t kSeeds = 6;
  const auto serial = run_replicas(cfg, kSeeds, 1);
  const auto parallel = run_replicas(cfg, kSeeds, 8);
  ASSERT_EQ(serial.size(), kSeeds);
  ASSERT_EQ(parallel.size(), kSeeds);
  for (std::size_t i = 0; i < kSeeds; ++i) {
    EXPECT_NE(serial[i].trace_hash, 0u);
    EXPECT_EQ(serial[i].trace_hash, parallel[i].trace_hash) << "replica " << i;
  }
  // Replicas differ only in seed, so their traces must all differ too.
  for (std::size_t i = 1; i < kSeeds; ++i) {
    EXPECT_NE(serial[0].trace_hash, serial[i].trace_hash) << "replica " << i;
  }
}

TEST(AuditTrace, SweepHashesIndependentOfWorkerCount) {
  const auto base = es_churn_config();
  const std::vector<double> rates = {0.0, base.es_churn_threshold(),
                                     2 * base.es_churn_threshold()};
  const auto configure = [](ExperimentConfig& cfg, double rate) {
    cfg.churn_rate = rate;
  };
  const auto serial = parallel_sweep(base, rates, configure, 3, 1);
  const auto parallel = parallel_sweep(base, rates, configure, 3, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t p = 0; p < serial.size(); ++p) {
    ASSERT_EQ(serial[p].runs.size(), parallel[p].runs.size());
    for (std::size_t r = 0; r < serial[p].runs.size(); ++r) {
      EXPECT_EQ(serial[p].runs[r].trace_hash, parallel[p].runs[r].trace_hash)
          << "point " << p << " replica " << r;
    }
  }
}

}  // namespace
}  // namespace dynreg::harness
