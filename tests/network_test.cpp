// net::Network — delivery, broadcast membership semantics, and the
// drop-on-departure rule churn depends on.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "net/delay_model.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace dynreg::net {
namespace {

struct Ping final : Payload {
  std::string_view type_name() const override { return "test.ping"; }
};

TEST(Network, DeliversWithModelDelayAndRecordsType) {
  sim::Simulation sim(1);
  Network net(sim, std::make_unique<FixedDelay>(4));
  std::vector<sim::Time> arrivals;
  net.attach(1, [&](sim::ProcessId from, const Payload& p) {
    EXPECT_EQ(from, 0u);
    EXPECT_EQ(p.type_name(), "test.ping");
    arrivals.push_back(sim.now());
  });
  net.send(0, 1, make_payload<Ping>());
  sim.run();

  EXPECT_EQ(arrivals, (std::vector<sim::Time>{4}));
  EXPECT_EQ(net.stats().delivered, 1u);
  EXPECT_EQ(net.delivered_by_type().at("test.ping"), 1u);
}

TEST(Network, BroadcastReachesEveryoneAttachedExceptSender) {
  sim::Simulation sim(1);
  Network net(sim, std::make_unique<FixedDelay>(1));
  std::map<sim::ProcessId, int> received;
  for (sim::ProcessId id = 0; id < 4; ++id) {
    net.attach(id, [&received, id](sim::ProcessId, const Payload&) { ++received[id]; });
  }
  net.broadcast(2, make_payload<Ping>());
  sim.run();

  EXPECT_EQ(received[0], 1);
  EXPECT_EQ(received[1], 1);
  EXPECT_EQ(received[2], 0);  // no self-delivery
  EXPECT_EQ(received[3], 1);
}

TEST(Network, InFlightMessageToDepartedProcessIsDropped) {
  sim::Simulation sim(1);
  Network net(sim, std::make_unique<FixedDelay>(10));
  int delivered = 0;
  net.attach(1, [&delivered](sim::ProcessId, const Payload&) { ++delivered; });
  net.send(0, 1, make_payload<Ping>());
  sim.run_until(5);
  net.detach(1);  // leaves while the message is in flight
  sim.run();

  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.stats().dropped_departed, 1u);
  EXPECT_EQ(net.stats().delivered, 0u);
}

TEST(Network, LateJoinerDoesNotReceiveEarlierBroadcasts) {
  sim::Simulation sim(1);
  Network net(sim, std::make_unique<FixedDelay>(10));
  int delivered = 0;
  net.attach(0, [](sim::ProcessId, const Payload&) {});
  net.broadcast(0, make_payload<Ping>());  // nobody else attached yet
  net.attach(1, [&delivered](sim::ProcessId, const Payload&) { ++delivered; });
  sim.run();
  EXPECT_EQ(delivered, 0);
}

TEST(Network, GenerationDistinguishesIncarnationsOfAReusedId) {
  sim::Simulation sim(1);
  Network net(sim, std::make_unique<FixedDelay>(1));
  EXPECT_EQ(net.generation(7), 0u);  // never-seen id

  net.attach(7, [](sim::ProcessId, const Payload&) {});
  const auto first = net.generation(7);
  net.detach(7);
  net.attach(7, [](sim::ProcessId, const Payload&) {});
  EXPECT_GT(net.generation(7), first);  // re-attach is a new incarnation

  // Delivery deliberately ignores generations: whoever holds the id at
  // delivery time receives in-flight messages, as with the old map dispatch.
  int delivered = 0;
  net.attach(1, [](sim::ProcessId, const Payload&) { FAIL() << "old incarnation"; });
  net.send(0, 1, make_payload<Ping>());
  net.detach(1);
  net.attach(1, [&delivered](sim::ProcessId, const Payload&) { ++delivered; });
  sim.run();
  EXPECT_EQ(delivered, 1);
}

TEST(Network, SparseIdsAndReattachKeepBroadcastMembershipExact) {
  sim::Simulation sim(1);
  Network net(sim, std::make_unique<FixedDelay>(1));
  std::map<sim::ProcessId, int> received;
  const auto handler = [&received](sim::ProcessId id) {
    return [&received, id](sim::ProcessId, const Payload&) { ++received[id]; };
  };
  // Out-of-order, sparse attach pattern with a detach in the middle.
  for (const sim::ProcessId id : {9u, 2u, 40u, 5u}) net.attach(id, handler(id));
  net.detach(9);
  EXPECT_FALSE(net.attached(9));
  EXPECT_TRUE(net.attached(40));

  net.broadcast(5, make_payload<Ping>());
  sim.run();
  EXPECT_EQ(received[2], 1);
  EXPECT_EQ(received[40], 1);
  EXPECT_EQ(received[9], 0);  // detached
  EXPECT_EQ(received[5], 0);  // sender
  EXPECT_EQ(net.stats().delivered, 2u);
}

TEST(Network, LossRateDropsMessages) {
  sim::Simulation sim(1);
  Network net(sim, std::make_unique<FixedDelay>(1));
  int delivered = 0;
  net.attach(1, [&delivered](sim::ProcessId, const Payload&) { ++delivered; });
  net.set_loss_rate(1.0);
  for (int i = 0; i < 10; ++i) net.send(0, 1, make_payload<Ping>());
  sim.run();

  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.stats().dropped_loss, 10u);
}

}  // namespace
}  // namespace dynreg::net
