// ThreadPool/parallel_for stress: many threads submitting, waiting, and
// tearing pools down concurrently. The assertions are ordinary, but the
// real consumer is the TSan preset (cmake --preset tsan) — these tests
// deliberately provoke the orderings a data race would need: submit racing
// worker dequeue, wait_idle racing task completion, destruction racing the
// final tasks, and exception propagation under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/thread_pool.h"

namespace dynreg::harness {
namespace {

TEST(ThreadPoolStress, ConcurrentSubmitters) {
  // Several producer threads race submit() against the workers' dequeues.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 500;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &sum] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        pool.submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.wait_idle();
  constexpr std::uint64_t kPerProducerSum = kPerProducer * (kPerProducer - 1) / 2;
  EXPECT_EQ(sum.load(), kProducers * kPerProducerSum);
}

TEST(ThreadPoolStress, RepeatedWaitIdleUnderLoad) {
  // wait_idle() must observe a quiescent pool even when it races the last
  // task's completion; loop to hit many interleavings.
  ThreadPool pool(3);
  std::atomic<std::size_t> done{0};
  for (std::size_t round = 0; round < 100; ++round) {
    const std::size_t batch = 1 + round % 7;
    for (std::size_t i = 0; i < batch; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), [&] {
      std::size_t expect = 0;
      for (std::size_t r = 0; r <= round; ++r) expect += 1 + r % 7;
      return expect;
    }());
  }
}

TEST(ThreadPoolStress, ConstructDestroyChurn) {
  // The destructor drains in-flight tasks; racing it against still-running
  // tasks is where join/notify bugs live.
  for (std::size_t round = 0; round < 50; ++round) {
    std::atomic<std::size_t> ran{0};
    {
      ThreadPool pool(2 + round % 3);
      for (std::size_t i = 0; i < 20; ++i) {
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
      // No wait_idle: the destructor itself must account for every task.
    }
    EXPECT_EQ(ran.load(), 20u);
  }
}

TEST(ThreadPoolStress, ParallelForAllIndicesOnceUnderContention) {
  // Static index assignment: every slot written exactly once, any jobs.
  for (const std::size_t jobs : {1u, 2u, 8u}) {
    constexpr std::size_t kCount = 10'000;
    std::vector<unsigned char> hit(kCount, 0);
    parallel_for(jobs, kCount, [&hit](std::size_t i) { ++hit[i]; });
    EXPECT_EQ(std::accumulate(hit.begin(), hit.end(), std::size_t{0}), kCount)
        << "jobs=" << jobs;
  }
}

TEST(ThreadPoolStress, ParallelForPropagatesExceptionUnderContention) {
  // The first thrown exception must surface on the calling thread after all
  // bodies finish — the rethrow path synchronizes with every worker.
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(
      parallel_for(4, 1'000,
                   [&ran](std::size_t i) {
                     ran.fetch_add(1, std::memory_order_relaxed);
                     if (i % 250 == 100) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  EXPECT_EQ(ran.load(), 1'000u);
}

}  // namespace
}  // namespace dynreg::harness
