// sim::EventQueue — time ordering and FIFO stability at equal timestamps.
// Stability is part of the contract: the Figure 3 bench pins a race exactly
// at a window boundary and relies on insertion order breaking the tie.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace dynreg::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&order] { order.push_back(3); });
  q.push(10, [&order] { order.push_back(1); });
  q.push(20, [&order] { order.push_back(2); });

  ASSERT_EQ(q.size(), 3u);
  while (!q.empty()) {
    Event e = q.pop();
    e.fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    q.push(7, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();

  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(5, [&order] { order.push_back(1); });
  q.push(5, [&order] { order.push_back(2); });
  EXPECT_EQ(q.next_time(), 5u);
  q.pop().fn();                                // pops the first t=5 event
  q.push(5, [&order] { order.push_back(3); });  // later insertion, same time
  q.push(1, [&order] { order.push_back(0); });  // earlier time wins regardless
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 0, 2, 3}));
}

}  // namespace
}  // namespace dynreg::sim
