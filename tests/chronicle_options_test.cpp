// ChronicleOptions aggregate-only mode: the A(t) accounting must answer
// byte-identically to full mode while holding only live members. Synthetic
// histories compare every query both ways; the experiment-level regression
// pins the whole MetricsReport (accounting totals included) unchanged when
// the flag flips on a churn-heavy run.
#include <gtest/gtest.h>

#include <cstddef>

#include "churn/chronicle.h"
#include "harness/experiment.h"
#include "replay/hooks.h"

namespace dynreg::churn {
namespace {

constexpr sim::Duration kWindow = 10;
constexpr sim::Time kHorizon = 100;

/// Replays the same lifetime script into both chronicles.
struct Pair {
  Chronicle full;
  Chronicle aggregate{ChronicleOptions{true, kWindow, kHorizon}};

  void enter(sim::ProcessId id, sim::Time at, bool initial = false) {
    full.note_enter(id, at, initial);
    aggregate.note_enter(id, at, initial);
  }
  void activate(sim::ProcessId id, sim::Time at) {
    full.note_activated(id, at);
    aggregate.note_activated(id, at);
  }
  void leave(sim::ProcessId id, sim::Time at) {
    full.note_left(id, at);
    aggregate.note_left(id, at);
  }
};

/// A membership history exercising every interval shape: initial stayers,
/// joiners that leave, a member too short-lived to cover any window, a
/// late activation near the horizon, and a join that never completes.
Pair scripted_history() {
  Pair p;
  p.enter(0, 0, true);
  p.activate(0, 0);  // initial member, stays forever
  p.enter(1, 5);
  p.activate(1, 8);
  p.leave(1, 30);  // covers window starts [8, 19]
  p.enter(2, 10);
  p.activate(2, 12);
  p.leave(2, 18);  // active 6 ticks: never covers a 10-tick window
  p.enter(3, 90);
  p.activate(3, 95);  // activates near the horizon, stays
  p.enter(4, 20);
  p.leave(4, 40);  // join never completes: contributes nothing
  p.enter(5, 0, true);
  p.activate(5, 0);
  p.leave(5, 60);
  return p;
}

TEST(ChronicleOptions, ActiveAtMatchesFullModeEverywhere) {
  const Pair p = scripted_history();
  for (sim::Time t = 0; t <= kHorizon; ++t) {
    EXPECT_EQ(p.aggregate.active_at(t), p.full.active_at(t)) << "t=" << t;
  }
}

TEST(ChronicleOptions, RegisteredWindowMatchesFullModeAtEveryStart) {
  const Pair p = scripted_history();
  for (sim::Time t = 0; t + kWindow <= kHorizon; ++t) {
    EXPECT_EQ(p.aggregate.active_through(t, t + kWindow),
              p.full.active_through(t, t + kWindow))
        << "t=" << t;
  }
}

TEST(ChronicleOptions, MinQueriesMatchFullMode) {
  const Pair p = scripted_history();
  EXPECT_EQ(p.aggregate.min_active_at(kHorizon), p.full.min_active_at(kHorizon));
  EXPECT_EQ(p.aggregate.min_active_through_window(kWindow, kHorizon),
            p.full.min_active_through_window(kWindow, kHorizon));
}

TEST(ChronicleOptions, AggregateModeDropsDepartedRecords) {
  const Pair p = scripted_history();
  EXPECT_TRUE(p.aggregate.records().empty());
  EXPECT_EQ(p.aggregate.record(1), nullptr);   // departed: folded away
  ASSERT_NE(p.aggregate.record(0), nullptr);   // live: still queryable
  EXPECT_TRUE(p.aggregate.record(0)->initial);
  ASSERT_NE(p.full.record(1), nullptr);  // full mode keeps everything
}

TEST(ChronicleOptions, LiveMembersCountThroughTheHorizon) {
  Pair p;
  p.enter(0, 0, true);
  p.activate(0, 0);
  // Nobody ever leaves: the open-ended contribution must cover every
  // instant and every window start.
  EXPECT_EQ(p.aggregate.min_active_at(kHorizon), 1u);
  EXPECT_EQ(p.aggregate.min_active_through_window(kWindow, kHorizon), 1u);
}

// The experiment-level regression: the chronicle is pure observation, so
// flipping the flag must change NOTHING in the report — accounting totals,
// latencies, the min-active quantities, and the audited event-stream hash.
TEST(ChronicleOptions, ExperimentReportUnchangedByAggregateMode) {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kSync;
  cfg.n = 20;
  cfg.delta = 5;
  cfg.duration = 600;
  cfg.seed = 11;
  cfg.churn_kind = harness::ChurnKind::kConstant;
  cfg.churn_rate = 0.5 * cfg.sync_churn_threshold();
  cfg.workload.write_interval = 25;

  harness::ExperimentConfig flagged = cfg;
  flagged.chronicle_aggregate = true;

  const harness::MetricsReport a = harness::run_experiment(cfg, replay::RunHooks{});
  const harness::MetricsReport b =
      harness::run_experiment(flagged, replay::RunHooks{});

  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.reads_issued, b.reads_issued);
  EXPECT_EQ(a.reads_completed, b.reads_completed);
  EXPECT_EQ(a.writes_completed, b.writes_completed);
  EXPECT_EQ(a.joins_started, b.joins_started);
  EXPECT_EQ(a.joins_completed, b.joins_completed);
  EXPECT_EQ(a.joins_abandoned, b.joins_abandoned);
  EXPECT_EQ(a.join_latency_mean, b.join_latency_mean);
  EXPECT_EQ(a.majority_active_always, b.majority_active_always);
  EXPECT_EQ(a.min_active_3delta, b.min_active_3delta);
  EXPECT_EQ(a.read_latency_mean, b.read_latency_mean);
  EXPECT_EQ(a.read_latency_p99, b.read_latency_p99);
  EXPECT_EQ(a.regularity.reads_checked, b.regularity.reads_checked);
  EXPECT_EQ(a.regularity.violations.size(), b.regularity.violations.size());
  EXPECT_EQ(a.msgs_by_type, b.msgs_by_type);
}

// Same regression through the sharded pipeline (every shard gets the flag).
TEST(ChronicleOptions, ShardedReportUnchangedByAggregateMode) {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kSync;
  cfg.n = 60;
  cfg.shard_count = 4;
  cfg.delta = 5;
  cfg.duration = 300;
  cfg.seed = 3;
  cfg.churn_kind = harness::ChurnKind::kConstant;
  cfg.churn_rate = 0.02;
  cfg.workload.clients = 24;
  cfg.workload.key_count = 32;

  harness::ExperimentConfig flagged = cfg;
  flagged.chronicle_aggregate = true;

  const harness::MetricsReport a = harness::run_experiment(cfg, replay::RunHooks{});
  const harness::MetricsReport b =
      harness::run_experiment(flagged, replay::RunHooks{});

  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.reads_completed, b.reads_completed);
  EXPECT_EQ(a.writes_completed, b.writes_completed);
  EXPECT_EQ(a.majority_active_always, b.majority_active_always);
  EXPECT_EQ(a.min_active_3delta, b.min_active_3delta);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].ops_completed, b.shards[s].ops_completed) << s;
    EXPECT_EQ(a.shards[s].latency_p99, b.shards[s].latency_p99) << s;
  }
}

}  // namespace
}  // namespace dynreg::churn
